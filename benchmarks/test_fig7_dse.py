"""Benchmark: Fig. 7 — design-space exploration sweeps."""

from conftest import run_once

from repro.experiments import (
    run_fig7_buffer_sweep,
    run_fig7_pattern_sweep,
    run_fig7_tile_sweep,
)


def test_fig7a_b_tile_size_sweep(benchmark, scale):
    points = run_once(benchmark, run_fig7_tile_sweep, scale, tile_sizes=(4, 8, 16, 32))

    print("\n=== Fig. 7a/b: density and cycles vs K tile size ===")
    for p in points:
        print(
            f"  k={p.k_tile:<3} element={p.element_density:.4f} vector={p.vector_density:.4f} "
            f"total={p.total_density:.4f} phi_cycles={p.phi_cycles:.3f}"
        )

    for p in points:
        assert p.phi_cycles <= p.bit_cycles
        assert p.optimal_cycles <= p.phi_cycles + 1e-9
    # A mid-range tile size minimises total density (the paper picks 16).
    best = min(points, key=lambda p: p.total_density)
    assert best.k_tile in (8, 16, 32)


def test_fig7c_pattern_count_sweep(benchmark, scale):
    points = run_once(
        benchmark, run_fig7_pattern_sweep, scale, pattern_counts=(8, 16, 32, 64, 128)
    )

    print("\n=== Fig. 7c: cycles and PWP memory vs pattern count ===")
    for p in points:
        print(
            f"  q={p.num_patterns:<4} phi_cycles={p.phi_cycles:.3f} "
            f"pwp_bytes={p.pwp_memory_bytes:.0f}"
        )

    # More patterns monotonically reduce compute but increase memory access.
    cycles = [p.phi_cycles for p in points]
    memory = [p.pwp_memory_bytes for p in points]
    assert cycles[-1] <= cycles[0]
    assert memory[-1] >= memory[0]


def test_fig7d_buffer_size_sweep(benchmark, scale):
    points = run_once(
        benchmark, run_fig7_buffer_sweep, scale, buffer_scales=(0.5, 1.0, 2.0)
    )

    print("\n=== Fig. 7d: DRAM/buffer power and buffer area vs buffer size ===")
    for p in points:
        print(
            f"  buffer={p.buffer_kb:.0f}KB dram_power={p.dram_power:.4f}W "
            f"buffer_power={p.buffer_power:.1f}mW buffer_area={p.buffer_area:.3f}mm2"
        )

    # Larger buffers cost area and power but never increase DRAM power.
    assert points[-1].buffer_area > points[0].buffer_area
    assert points[-1].buffer_power > points[0].buffer_power
    assert points[-1].dram_power <= points[0].dram_power * 1.05
