"""Benchmark: Section 6.1 — preprocessing cost vs accumulation savings."""

import pytest

from conftest import run_once

pytestmark = pytest.mark.smoke

from repro.experiments import run_discussion

WORKLOADS = (
    ("vgg16", "cifar100"),
    ("resnet18", "cifar100"),
    ("spikformer", "cifar100"),
)


def test_discussion_preprocessing_overhead(benchmark, scale):
    result = run_once(benchmark, run_discussion, scale, workloads=WORKLOADS)

    print("\n=== Section 6.1: preprocessing benefit / cost ===")
    print(result.formatted())
    print(f"\n  average benefit/cost ratio: {result.average_ratio():.1f}x")

    # Preprocessing pays for itself many times over on every workload.
    for row in result.rows:
        assert row.benefit_cost_ratio > 1.0
    assert result.average_ratio() > 5.0
