"""Benchmark: Table 2 — Phi vs baseline accelerators on VGG-16 / CIFAR100."""

from conftest import run_once

from repro.experiments import run_table2


def test_table2_comparison(benchmark, scale):
    result = run_once(benchmark, run_table2, scale)

    print("\n=== Table 2: comparison of Phi with baselines (VGG16 / CIFAR100) ===")
    print(result.formatted())

    phi = result.row("phi")
    eyeriss = result.row("eyeriss")
    stellar = result.row("stellar")
    # Shape of the paper's result: Phi is the fastest and the most
    # area-efficient design, and clearly ahead of the dense baseline.
    assert phi.speedup_vs_eyeriss > 3.0
    assert phi.area_efficiency_gops_mm2 > stellar.area_efficiency_gops_mm2
    assert phi.energy_ratio_vs_eyeriss > 2.0
    assert eyeriss.speedup_vs_eyeriss == 1.0
