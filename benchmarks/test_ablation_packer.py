"""Ablation benchmark: packer window count and PAFT alignment strength.

These are the extra design-choice ablations DESIGN.md calls out beyond the
paper's own sweeps: how much the multi-window packer helps pack occupancy,
and how Level 2 density responds to the PAFT alignment strength.
"""

import numpy as np
from conftest import run_once

from repro.core import PhiCalibrator
from repro.experiments.common import get_workload
from repro.experiments.fig8 import apply_paft_to_workload
from repro.experiments.fig10 import element_density
from repro.hw import ArchConfig, Preprocessor


def _pack_utilization(workload, scale, windows: int) -> float:
    arch = ArchConfig(packer_windows=windows)
    preprocessor = Preprocessor(arch)
    calibrator = PhiCalibrator(scale.phi_config())
    layer = max(workload, key=lambda l: l.m * l.k)
    calibration = calibrator.calibrate_layer(layer.name, layer.activations)
    utilizations = []
    for p, (start, stop) in enumerate(
        zip(range(0, layer.k, 16), range(16, layer.k + 16, 16))
    ):
        tile = layer.activations[: arch.tile_m, start:stop]
        if tile.shape[1] == 0:
            continue
        result = preprocessor.process_tile(
            tile, calibration.pattern_sets[p], needs_psum=p > 0
        )
        if result.packer.packs:
            utilizations.append(result.packer.average_utilization)
    return float(np.mean(utilizations)) if utilizations else 0.0


def test_ablation_packer_windows(benchmark, scale):
    workload = get_workload("vgg16", "cifar100", scale)

    def sweep():
        return {w: _pack_utilization(workload, scale, w) for w in (1, 2, 4)}

    utilization = run_once(benchmark, sweep)
    print("\n=== Ablation: pack occupancy vs packer window count ===")
    for windows, value in utilization.items():
        print(f"  windows={windows}  avg pack occupancy={value:.3f}")
    # More windows never hurt occupancy (they give the packer more choices).
    assert utilization[4] >= utilization[1] * 0.95
    assert all(0.0 < v <= 1.0 for v in utilization.values())


def test_ablation_paft_strength(benchmark, scale):
    workload = get_workload("vgg16", "cifar10", scale)

    def sweep():
        densities = {}
        for strength in (0.0, 0.5, 1.0):
            if strength == 0.0:
                densities[strength] = element_density(workload, scale)
            else:
                aligned = apply_paft_to_workload(
                    workload, scale, alignment_strength=strength
                )
                densities[strength] = element_density(aligned, scale)
        return densities

    densities = run_once(benchmark, sweep)
    print("\n=== Ablation: Level 2 density vs PAFT alignment strength ===")
    for strength, density in densities.items():
        print(f"  strength={strength:.1f}  element density={density:.4f}")
    # Stronger alignment monotonically reduces the element density.
    assert densities[1.0] <= densities[0.5] <= densities[0.0]
