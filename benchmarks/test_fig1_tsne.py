"""Benchmark: Fig. 1 — activation distribution comparison (t-SNE)."""

import pytest

from conftest import run_once

pytestmark = pytest.mark.smoke

from repro.experiments import run_fig1


def test_fig1_activation_distributions(benchmark, scale):
    result = run_once(benchmark, run_fig1, scale, num_rows=160, tsne_iterations=120)

    print("\n=== Fig. 1: activation distribution cluster spread (lower = more clustered) ===")
    for name, spread in result.spreads().items():
        print(f"  {name:<8} spread={spread:.3f}")
    print(f"  SNN top-32-pattern coverage: {result.snn.pattern_coverage:.3f}")

    # SNN spike activations cluster more tightly than normally distributed
    # noise, and a sizeable share of rows reuse a small pattern set.
    assert result.snn.cluster_spread < result.normal.cluster_spread * 1.05
    assert result.snn.pattern_coverage > 0.1
