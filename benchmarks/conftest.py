"""Shared configuration for the benchmark harness.

Every benchmark reproduces one table or figure of the paper.  The
benchmark scale is kept modest so the whole suite runs in minutes on a
laptop; pass ``--phi-scale=paper`` to use the q=128 configuration.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import PAPER, ExperimentScale

#: Scale used by the benchmark suite: the default (SMALL) experiment scale,
#: which is large enough for the paper's qualitative results to emerge on
#: the scaled model zoo while keeping the whole suite in the minutes range.
BENCH = ExperimentScale()


def pytest_addoption(parser):
    parser.addoption(
        "--phi-scale",
        action="store",
        default="bench",
        choices=("bench", "paper"),
        help="Experiment scale used by the benchmark suite.",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "smoke: fast benchmark subset run in CI (pytest benchmarks -m smoke)",
    )


@pytest.fixture(scope="session")
def scale(request) -> ExperimentScale:
    """The experiment scale selected on the command line."""
    if request.config.getoption("--phi-scale") == "paper":
        return PAPER
    return BENCH


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
