"""Benchmark: Fig. 10 — element (Level 2) density with and without PAFT."""

from conftest import run_once

from repro.experiments import run_fig10

WORKLOADS = (
    ("spikformer", "cifar100"),
    ("sdt", "cifar100"),
    ("vgg16", "cifar10"),
    ("resnet18", "cifar100"),
)


def test_fig10_element_density(benchmark, scale):
    result = run_once(benchmark, run_fig10, scale, workloads=WORKLOADS)

    print("\n=== Fig. 10: element density with / without PAFT ===")
    print(result.formatted())

    for pair in result.pairs:
        assert pair.density_with_paft <= pair.density_without_paft
        # Densities stay in the few-percent range reported by the paper.
        assert pair.density_without_paft < 0.15
