"""Benchmark: Fig. 8 — speedup and energy across the model zoo."""

from conftest import run_once

from repro.experiments import run_fig8
from repro.experiments.fig8 import ACCELERATORS

WORKLOADS = (
    ("vgg16", "cifar100"),
    ("resnet18", "cifar10"),
    ("spikformer", "cifar10dvs"),
    ("sdt", "cifar100"),
    ("spikebert", "sst2"),
    ("spikingbert", "mnli"),
)


def test_fig8_speedup_and_energy(benchmark, scale):
    result = run_once(benchmark, run_fig8, scale, workloads=WORKLOADS)

    print("\n=== Fig. 8: speedup normalised to Spiking Eyeriss ===")
    print(result.formatted())
    print("\n=== Fig. 8: energy normalised to Phi (w/o PAFT) ===")
    for comparison in result.comparisons:
        energy = "  ".join(
            f"{name}={comparison.energy[name]:.2f}" for name in ACCELERATORS
        )
        print(f"  {comparison.key:<24} {energy}")
    geo_speed = result.geomean_speedup()
    geo_energy = result.geomean_energy()
    print("\n  geomean speedup:", {k: round(v, 2) for k, v in geo_speed.items()})
    print("  geomean energy :", {k: round(v, 2) for k, v in geo_energy.items()})

    # Shape of the paper's Fig. 8:
    # 1. every sparse accelerator beats the dense baseline;
    # 2. Phi clearly outperforms the dense / partially-sparse designs;
    # 3. on the vision workloads (whose GEMMs are large enough for the
    #    per-row pattern-scan cost to amortise, as in the paper's full-size
    #    models) Phi also beats the strongest baseline, Stellar;
    # 4. PAFT improves Phi further.
    for name in ("ptb", "sato", "spinalflow", "stellar", "phi", "phi_paft"):
        assert geo_speed[name] > 1.0
    assert geo_speed["phi"] > geo_speed["eyeriss"] * 3.0
    assert geo_speed["phi"] > geo_speed["ptb"]
    assert geo_speed["phi"] > geo_speed["sato"]
    assert geo_speed["phi_paft"] >= geo_speed["phi"] * 0.98

    vision = [c for c in result.comparisons if c.model == "vgg16"]
    assert vision, "expected at least one VGG workload"
    for comparison in vision:
        assert comparison.speedup["phi"] >= comparison.speedup["stellar"] * 0.95
        assert comparison.energy["stellar"] >= 0.85  # Phi matches or beats it

    # Energy: the dense baseline burns far more than Phi; PAFT reduces
    # Phi's energy further (or keeps it level).
    assert geo_energy["eyeriss"] > 2.0
    assert geo_energy["phi_paft"] <= 1.02
