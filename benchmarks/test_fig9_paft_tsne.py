"""Benchmark: Fig. 9 — PAFT's effect on activation clustering."""

from conftest import run_once

from repro.experiments import run_fig9


def test_fig9_paft_clustering(benchmark, scale):
    result = run_once(benchmark, run_fig9, scale)

    print("\n=== Fig. 9: train/test consistency and PAFT clustering effect ===")
    print(f"  train/test pattern overlap:        {result.train_test_overlap:.3f}")
    print(
        "  mean distance to cluster centre:   "
        f"{result.stats_without_paft.mean_distance_to_center:.3f} (w/o PAFT) -> "
        f"{result.stats_with_paft.mean_distance_to_center:.3f} (w/ PAFT)"
    )
    print(
        "  top-128-pattern coverage:          "
        f"{result.stats_without_paft.top_pattern_coverage:.3f} -> "
        f"{result.stats_with_paft.top_pattern_coverage:.3f}"
    )

    # Training activations represent the test distribution (Fig. 9a) and
    # PAFT tightens the clusters (Fig. 9c).
    assert result.train_test_overlap > 0.3
    assert result.clustering_improved
