"""Benchmark: Table 3 — Phi area and power breakdown."""

import pytest

from conftest import run_once

pytestmark = pytest.mark.smoke

from repro.experiments import run_table3


def test_table3_breakdown(benchmark):
    result = run_once(benchmark, run_table3)

    print("\n=== Table 3: Phi area and power breakdown ===")
    print(result.formatted())

    assert abs(result.total_area_mm2 - 0.663) < 0.01
    assert abs(result.total_power_mw - 346.5) < 1.0
    buffer_row = result.row("buffer")
    assert buffer_row.area_mm2 == max(r.area_mm2 for r in result.rows)
    assert buffer_row.power_mw == max(r.power_mw for r in result.rows)
