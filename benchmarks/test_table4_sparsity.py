"""Benchmark: Table 4 — Phi sparsity breakdown across models and random data."""

import pytest

from conftest import run_once

pytestmark = pytest.mark.smoke

from repro.experiments import run_table4


def test_table4_sparsity_breakdown(benchmark, scale):
    result = run_once(benchmark, run_table4, scale)

    print("\n=== Table 4: Phi sparsity breakdown ===")
    print(result.formatted())

    snn_rows = [r for r in result.rows if r.dataset != "random"]
    random_rows = [r for r in result.rows if r.dataset == "random"]
    assert snn_rows and random_rows

    for row in result.rows:
        # Level 2 is always sparser than the original bit sparsity and the
        # theoretical speedups follow.
        assert row.l2_density < row.bit_density
        assert row.speedup_over_bit >= 1.0
        assert row.speedup_over_dense > row.speedup_over_bit

    # Structured SNN activations benefit more than random matrices on
    # average (paper Section 5.6).
    snn_mean = sum(r.speedup_over_bit for r in snn_rows) / len(snn_rows)
    random_mean = sum(r.speedup_over_bit for r in random_rows) / len(random_rows)
    assert snn_mean > random_mean * 0.9
