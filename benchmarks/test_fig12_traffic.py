"""Benchmark: Fig. 12 — memory-traffic reduction (compression + prefetch)."""

from conftest import run_once

from repro.experiments import run_fig12

WORKLOADS = (
    ("vgg16", "cifar100"),
    ("resnet18", "cifar100"),
    ("spikformer", "cifar100"),
    ("spikebert", "sst2"),
)


def test_fig12_memory_traffic(benchmark, scale):
    result = run_once(benchmark, run_fig12, scale, workloads=WORKLOADS)

    print("\n=== Fig. 12: activation and weight DRAM traffic (bytes) ===")
    print(result.formatted())
    without, with_prefetch = result.geomean_weight_ratios()
    print(
        f"\n  geomean activation traffic vs dense: {result.geomean_activation_ratio():.2f}x"
    )
    print(f"  geomean weight traffic w/o prefetch: {without:.2f}x dense")
    print(f"  geomean weight traffic w/ prefetch:  {with_prefetch:.2f}x dense")

    # Shape of the paper's Fig. 12: the compact structure reduces activation
    # traffic below the uncompressed Phi representation, and the prefetcher
    # removes a large share of the PWP traffic.
    for row in result.rows:
        assert row.activation.phi_compressed < row.activation.phi_uncompressed
        # Tiny layers may use every calibrated pattern, in which case the
        # prefetcher cannot filter anything; it must never add traffic.
        assert row.weight.phi_with_prefetch <= row.weight.phi_without_prefetch
    assert with_prefetch < without
    assert result.geomean_activation_ratio() < 1.5
