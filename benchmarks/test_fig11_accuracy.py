"""Benchmark: Fig. 11 — accuracy of DNN / bit sparsity / Phi / Phi+PAFT."""

import math

from conftest import run_once

from repro.experiments import run_fig11


def test_fig11_accuracy(benchmark, scale):
    result = run_once(
        benchmark,
        run_fig11,
        scale,
        workloads=(("vgg16", "cifar10"),),
        train_epochs=2,
    )

    print("\n=== Fig. 11: accuracy comparison ===")
    print(result.formatted())

    for row in result.rows:
        # Phi without PAFT is lossless: verified exactly at the logit level.
        # This is the central accuracy claim of the paper (Fig. 11 shows the
        # "Bit Sparsity" and "Phi without PAFT" bars are identical).
        assert row.lossless_verified
        assert not math.isnan(row.phi_without_paft_accuracy)
        assert row.phi_without_paft_accuracy == row.bit_sparsity_accuracy
        # The DNN counterpart learns the synthetic task comfortably; the
        # briefly-trained scaled SNN at least produces valid accuracies.
        assert row.dnn_accuracy > 0.3
        assert 0.0 <= row.bit_sparsity_accuracy <= 1.0
        # PAFT costs at most a modest accuracy drop.
        assert row.phi_with_paft_accuracy >= row.bit_sparsity_accuracy - 0.25
