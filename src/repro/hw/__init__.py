"""Phi accelerator: unified model pipeline, cycle-level simulator, buffers, DRAM and energy model."""

from .buffers import Buffer, BufferSet
from .config import PAPER_ARCH, ArchConfig, BufferSizes
from .dram import DRAMModel, TrafficCounter
from .energy import (
    ACCUMULATE_ENERGY_PJ,
    BUFFER_ENERGY_PER_BYTE_PJ,
    DRAM_ENERGY_PER_BYTE_PJ,
    PHI_COMPONENTS,
    AreaReport,
    ComponentSpec,
    EnergyBreakdown,
    PhiEnergyModel,
)
from .l1_processor import L1Processor, L1Result
from .l2_processor import L2Processor, L2Result, ReconfigurableAdderTree
from .neuron_array import NeuronArrayResult, SpikingNeuronArray
from .pipeline import (
    AcceleratorModel,
    DerivedMetricsMixin,
    LayerContext,
    LayerResult,
    Pipeline,
    RunResult,
    Stage,
    StageRecord,
)
from .preprocessor import (
    LABEL_NONZERO,
    LABEL_PSUM,
    CompressedRow,
    Compressor,
    Pack,
    Packer,
    PackUnit,
    PatternMatcher,
    Preprocessor,
    PreprocessorResult,
)
from .simulator import LayerSimulation, PhiSimulator, SimulationResult

__all__ = [
    "ArchConfig",
    "BufferSizes",
    "PAPER_ARCH",
    "Buffer",
    "BufferSet",
    "DRAMModel",
    "TrafficCounter",
    "PhiEnergyModel",
    "EnergyBreakdown",
    "AreaReport",
    "ComponentSpec",
    "PHI_COMPONENTS",
    "ACCUMULATE_ENERGY_PJ",
    "BUFFER_ENERGY_PER_BYTE_PJ",
    "DRAM_ENERGY_PER_BYTE_PJ",
    "PatternMatcher",
    "Compressor",
    "Packer",
    "Preprocessor",
    "PreprocessorResult",
    "Pack",
    "PackUnit",
    "CompressedRow",
    "LABEL_NONZERO",
    "LABEL_PSUM",
    "L1Processor",
    "L1Result",
    "L2Processor",
    "L2Result",
    "ReconfigurableAdderTree",
    "SpikingNeuronArray",
    "NeuronArrayResult",
    "AcceleratorModel",
    "DerivedMetricsMixin",
    "LayerContext",
    "LayerResult",
    "Pipeline",
    "RunResult",
    "Stage",
    "StageRecord",
    "LayerSimulation",
    "SimulationResult",
    "PhiSimulator",
]
