"""L1 Processor: pattern-index driven PWP retrieval and accumulation.

The L1 processor (Section 4.4) reads the pattern-index matrix of an output
tile, skips zero entries (rows without an assigned pattern), fetches the
corresponding pre-computed Pattern-Weight Products (PWPs) through a
16-to-8 crossbar and reduces them in an adder tree.  Each cycle it
examines 16 consecutive pattern indices of a row; when more than 8 of
them are nonzero the surplus spills into the next cycle.

The module also models the **PWP prefetcher**: because the pattern-index
matrix of the *next* tile is produced while the current tile computes,
the prefetcher knows exactly which patterns will be used and loads only
those PWPs from DRAM, instead of all ``q`` patterns per partition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import ArchConfig


def distinct_nonzero_per_column(matrix: np.ndarray) -> int:
    """Total count of distinct nonzero values, per column, of an int matrix.

    Equivalent to ``sum(np.count_nonzero(np.unique(col)) for col in
    matrix.T)`` but computed with one scatter into a presence table instead
    of a Python loop over columns.
    """
    values = np.asarray(matrix)
    if values.size == 0:
        return 0
    vmin = int(values.min())
    vmax = int(values.max())
    columns = values.shape[1]
    present = np.zeros((vmax - vmin + 1, columns), dtype=bool)
    present[values - vmin, np.arange(columns)[None, :]] = True
    total = int(np.count_nonzero(present))
    if vmin <= 0 <= vmax:
        total -= int(np.count_nonzero(present[-vmin]))
    return total


@dataclass(frozen=True)
class L1Result:
    """Cycle and traffic accounting of the L1 processor for one tile.

    Attributes
    ----------
    cycles:
        Compute cycles spent retrieving and accumulating PWPs.
    pwp_accumulations:
        Number of PWP vector accumulations (one per assigned pattern).
    unique_patterns_used:
        Number of distinct (partition, pattern) pairs referenced.
    pwp_bytes_prefetched:
        DRAM bytes for PWPs when the prefetcher filters unused patterns.
    pwp_bytes_unfiltered:
        DRAM bytes if every calibrated PWP of the tile were loaded.
    index_bytes:
        Bytes of pattern-index metadata read from the on-chip buffer.
    """

    cycles: int
    pwp_accumulations: int
    unique_patterns_used: int
    pwp_bytes_prefetched: float
    pwp_bytes_unfiltered: float
    index_bytes: float

    @property
    def prefetch_saving_ratio(self) -> float:
        """Fraction of PWP traffic eliminated by the prefetcher."""
        if self.pwp_bytes_unfiltered == 0:
            return 0.0
        return 1.0 - self.pwp_bytes_prefetched / self.pwp_bytes_unfiltered


class L1Processor:
    """Cycle model of the Level 1 (vector sparsity) processor."""

    def __init__(self, config: ArchConfig) -> None:
        self.config = config

    def process_tile(
        self,
        pattern_index_matrix: np.ndarray,
        *,
        num_patterns_per_partition: int | None = None,
        output_width: int | None = None,
    ) -> L1Result:
        """Process the pattern-index matrix of one output tile.

        Parameters
        ----------
        pattern_index_matrix:
            Integer matrix of shape ``(rows, partitions)``; entry 0 means
            "no pattern assigned".
        num_patterns_per_partition:
            Calibrated pattern count ``q`` (defaults to the architecture
            configuration).
        output_width:
            N width of the output tile (defaults to ``tile_n``).
        """
        matrix = np.asarray(pattern_index_matrix)
        if matrix.ndim != 2:
            raise ValueError("pattern_index_matrix must be 2-D")
        # ``is None`` (not ``or``): an explicit 0 is a legal degenerate
        # width/count and must not fall back to the config default.
        q = (
            self.config.num_patterns
            if num_patterns_per_partition is None
            else num_patterns_per_partition
        )
        n = self.config.tile_n if output_width is None else output_width
        rows, partitions = matrix.shape
        group = 16  # indices examined per cycle
        lanes = self.config.num_channels  # PWPs forwarded to the adder tree per cycle

        # Nonzero indices per 16-wide examination group, reduced in one
        # vectorized pass: a zero group still burns its examination cycle
        # (simple skipping, Section 4.4), a nonzero group needs
        # ceil(nonzeros / lanes) dispatch cycles.
        if rows == 0 or partitions == 0:
            cycles = 0
        else:
            nonzero = matrix != 0
            pad = (-partitions) % group
            if pad:
                nonzero = np.concatenate(
                    [nonzero, np.zeros((rows, pad), dtype=bool)], axis=1
                )
            per_group = nonzero.reshape(rows, -1, group).sum(axis=2, dtype=np.int64)
            group_cycles = (per_group + lanes - 1) // lanes
            cycles = int(np.where(per_group == 0, 1, group_cycles).sum())

        accumulations = int(np.count_nonzero(matrix))
        # Unique (partition, pattern) pairs determine prefetched PWP rows.
        unique_pairs = distinct_nonzero_per_column(matrix)

        pwp_row_bytes = n * self.config.pwp_bytes
        prefetched = unique_pairs * pwp_row_bytes
        unfiltered = partitions * q * pwp_row_bytes
        index_bytes = matrix.size  # one byte per pattern index entry
        return L1Result(
            cycles=cycles,
            pwp_accumulations=accumulations,
            unique_patterns_used=unique_pairs,
            pwp_bytes_prefetched=float(prefetched),
            pwp_bytes_unfiltered=float(unfiltered),
            index_bytes=float(index_bytes),
        )
