"""Spiking Neuron Array: LIF updates on aggregated output tiles.

The array (Section 4.1) receives the summed L1 + L2 partial results of an
output tile, updates the membrane potential of every output neuron and
emits the spikes of the next layer.  It holds 32 parallel LIF units, so a
tile of ``m x n`` outputs takes ``ceil(m * n / 32)`` cycles; this is
almost always hidden behind the much longer L1/L2 processing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import ArchConfig


@dataclass(frozen=True)
class NeuronArrayResult:
    """Cycle/operation accounting of the spiking neuron array."""

    cycles: int
    neuron_updates: int
    spikes_emitted: int

    @property
    def firing_rate(self) -> float:
        """Fraction of neuron updates that produced a spike."""
        if self.neuron_updates == 0:
            return 0.0
        return self.spikes_emitted / self.neuron_updates


class SpikingNeuronArray:
    """Parallel array of LIF units applied to output tiles."""

    def __init__(self, config: ArchConfig, *, num_units: int = 32, threshold: float = 1.0) -> None:
        if num_units < 1:
            raise ValueError("num_units must be >= 1")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.config = config
        self.num_units = num_units
        self.threshold = threshold

    def process_tile(self, output_tile: np.ndarray) -> NeuronArrayResult:
        """Apply the LIF threshold to one aggregated output tile."""
        output_tile = np.asarray(output_tile, dtype=np.float64)
        updates = int(output_tile.size)
        spikes = int(np.count_nonzero(output_tile >= self.threshold))
        cycles = int(np.ceil(updates / self.num_units)) if updates else 0
        return NeuronArrayResult(
            cycles=cycles, neuron_updates=updates, spikes_emitted=spikes
        )

    def estimate(self, rows: int, cols: int, *, spike_fraction: float = 0.15) -> NeuronArrayResult:
        """Estimate the result for a tile shape without materialised data."""
        updates = rows * cols
        cycles = int(np.ceil(updates / self.num_units)) if updates else 0
        return NeuronArrayResult(
            cycles=cycles,
            neuron_updates=updates,
            spikes_emitted=int(updates * spike_fraction),
        )
