"""Phi accelerator architecture configuration (Table 1 of the paper).

The default values reproduce the paper's setup: 500 MHz in a 28 nm
process, an (m, k, n) = (256, 16, 32) tile, 8-channel x 32-wide SIMD adder
trees in both the L1 and the L2 processor, 240 KB of on-chip buffers and a
4-channel DDR4 interface at 64 GB/s.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping


@dataclass(frozen=True)
class BufferSizes:
    """On-chip buffer capacities in bytes (Table 1)."""

    pack: int = 4 * 1024
    weight: int = 16 * 1024
    pwp: int = 64 * 1024
    pattern_index: int = 28 * 1024
    partial_sum: int = 128 * 1024

    @property
    def total(self) -> int:
        """Total on-chip buffer capacity in bytes."""
        return self.pack + self.weight + self.pwp + self.pattern_index + self.partial_sum

    def scaled(self, factor: float) -> "BufferSizes":
        """Uniformly scale all buffers (used in the Fig. 7d sweep)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return BufferSizes(
            pack=int(self.pack * factor),
            weight=int(self.weight * factor),
            pwp=int(self.pwp * factor),
            pattern_index=int(self.pattern_index * factor),
            partial_sum=int(self.partial_sum * factor),
        )

    def to_dict(self) -> dict:
        """Serialise the buffer capacities to plain Python types."""
        return {
            "pack": self.pack,
            "weight": self.weight,
            "pwp": self.pwp,
            "pattern_index": self.pattern_index,
            "partial_sum": self.partial_sum,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BufferSizes":
        """Reconstruct buffer capacities from :meth:`to_dict` output."""
        return cls(**{key: int(value) for key, value in data.items()})


@dataclass(frozen=True)
class ArchConfig:
    """Phi accelerator configuration.

    Attributes
    ----------
    tile_m, tile_k, tile_n:
        GEMM tile sizes (rows, reduction partition width, output columns).
    num_channels:
        Parallel adder-tree channels in each of the L1 and L2 processors.
    simd_width:
        Vector width of every adder-tree node (elements per operation).
    pack_size:
        Units per Level-2 pack (compact data structure of Section 4.2.2).
    packer_windows:
        Number of concurrently open packer windows.
    num_patterns:
        Patterns per K partition (q); must match the calibration config.
    frequency_mhz:
        Clock frequency.
    technology_nm:
        Process node (only used for reporting).
    buffers:
        On-chip buffer capacities.
    dram_bandwidth_gbps:
        Peak DRAM bandwidth in GB/s.
    weight_bytes / psum_bytes / pwp_bytes:
        Storage size of a weight element, partial sum and PWP element.
    """

    tile_m: int = 256
    tile_k: int = 16
    tile_n: int = 32
    num_channels: int = 8
    simd_width: int = 32
    pack_size: int = 8
    packer_windows: int = 2
    num_patterns: int = 128
    frequency_mhz: float = 500.0
    technology_nm: int = 28
    buffers: BufferSizes = field(default_factory=BufferSizes)
    dram_bandwidth_gbps: float = 64.0
    weight_bytes: int = 2
    psum_bytes: int = 2
    pwp_bytes: int = 2

    def __post_init__(self) -> None:
        if min(self.tile_m, self.tile_k, self.tile_n) < 1:
            raise ValueError("tile sizes must be >= 1")
        if min(self.num_channels, self.simd_width, self.pack_size) < 1:
            raise ValueError("num_channels, simd_width and pack_size must be >= 1")
        if self.packer_windows < 1:
            raise ValueError("packer_windows must be >= 1")
        if self.frequency_mhz <= 0 or self.dram_bandwidth_gbps <= 0:
            raise ValueError("frequency and bandwidth must be positive")

    @property
    def frequency_hz(self) -> float:
        """Clock frequency in Hz."""
        return self.frequency_mhz * 1e6

    @property
    def cycle_time_ns(self) -> float:
        """Duration of one clock cycle in nanoseconds."""
        return 1e3 / self.frequency_mhz

    @property
    def dram_bytes_per_cycle(self) -> float:
        """DRAM bytes transferable per accelerator cycle."""
        return self.dram_bandwidth_gbps * 1e9 / self.frequency_hz

    def with_overrides(self, **kwargs: Any) -> "ArchConfig":
        """Copy of the configuration with the given fields replaced."""
        return replace(self, **kwargs)

    def to_dict(self) -> dict:
        """Serialise the configuration to plain Python types.

        The sweep engine hashes this dictionary to build cache keys, so it
        must cover every field that can influence a simulation result.
        """
        return {
            "tile_m": self.tile_m,
            "tile_k": self.tile_k,
            "tile_n": self.tile_n,
            "num_channels": self.num_channels,
            "simd_width": self.simd_width,
            "pack_size": self.pack_size,
            "packer_windows": self.packer_windows,
            "num_patterns": self.num_patterns,
            "frequency_mhz": self.frequency_mhz,
            "technology_nm": self.technology_nm,
            "buffers": self.buffers.to_dict(),
            "dram_bandwidth_gbps": self.dram_bandwidth_gbps,
            "weight_bytes": self.weight_bytes,
            "psum_bytes": self.psum_bytes,
            "pwp_bytes": self.pwp_bytes,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ArchConfig":
        """Reconstruct a configuration from :meth:`to_dict` output."""
        params = dict(data)
        buffers = params.pop("buffers", None)
        if buffers is not None:
            params["buffers"] = BufferSizes.from_dict(buffers)
        return cls(**params)


#: The configuration used in the paper's evaluation.
PAPER_ARCH = ArchConfig()
