"""End-to-end Phi accelerator simulator.

The simulator follows the methodology of the paper (Section 5.1): it takes
the recorded spike activations of a model together with the calibrated
patterns, models the behaviour of every architectural component at the
tile level, and reports cycles, memory traffic and energy.

Execution model per layer (K-first tiling, Section 4.1), expressed as a
:class:`~repro.hw.pipeline.Pipeline` of five stages:

* **tiling** — the activation matrix is split into ``tile_m``-row M
  tiles, ``tile_k`` wide K partitions and ``tile_n`` wide N tiles, and
  decomposed once into the two-level Phi representation,
* **preprocess** — the Preprocessor converts every (M tile, partition)
  into the Level 1 pattern-index column and the packed Level 2
  representation; this work is overlapped with the previous tile's
  compute, so it adds energy but no critical-path cycles,
* **compute** — per output tile (M tile, N tile) the L1 and L2
  processors run concurrently and synchronise at the tile boundary, so
  the tile's compute latency is the maximum of the two,
* **dram** — DRAM traffic (compressed activations, weights, prefetched
  PWPs, spilled partial sums) is bandwidth-limited and can bound the
  layer latency,
* **energy** — activity counters are folded into an energy breakdown.

Each stage emits a :class:`~repro.hw.pipeline.StageRecord`; the layer
outcome is the canonical :class:`~repro.hw.pipeline.LayerResult` and a
model run aggregates into :class:`~repro.hw.pipeline.RunResult` — the
same schema every baseline accelerator reports through.
``LayerSimulation`` and ``SimulationResult`` remain as aliases of those
two classes for existing callers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.calibration import LayerCalibration, ModelCalibration, PhiCalibrator
from ..core.config import PhiConfig
from ..core.metrics import operation_counts, sparsity_breakdown
from ..core.sparsity import decompose_matrix, partition_boundaries
from ..workloads.workload import LayerWorkload, ModelWorkload
from .config import ArchConfig
from .energy import EnergyBreakdown, PhiEnergyModel
from .l1_processor import L1Processor, distinct_nonzero_per_column
from .l2_processor import L2Processor
from .neuron_array import SpikingNeuronArray
from .pipeline import (
    AcceleratorModel,
    LayerContext,
    LayerResult,
    Pipeline,
    RunResult,
    StageRecord,
)
from .preprocessor import (
    EMPTY_PACK_COUNTS,
    CompressedCounts,
    PackCounts,
    Preprocessor,
    pack_counts_batch,
)

#: Compatibility aliases: the pre-pipeline result classes are the
#: canonical schema now (see ``repro.hw.pipeline``).
LayerSimulation = LayerResult
SimulationResult = RunResult


class PhiTilingStage:
    """Tiling + decomposition: split the layer and decompose it once.

    Rows decompose independently, so the per-tile views the later stages
    need are sliced out of this single decomposition instead of being
    re-matched from scratch.
    """

    name = "tiling"

    def __init__(self, simulator: "PhiSimulator") -> None:
        self.simulator = simulator

    def run(self, ctx: LayerContext) -> StageRecord:
        """Decompose the layer and record the tile grid in the context."""
        arch = self.simulator.arch
        layer = ctx.layer
        # A caller that already holds the layer's decomposition (e.g. the
        # sweep engine's artifact store) seeds it into the context; the
        # decomposition is a deterministic function of (activations,
        # patterns, tile_k), so the seeded object is bit-identical to
        # what this stage would compute.
        decomposition = ctx.scratch.get("decomposition")
        if decomposition is None:
            decomposition = decompose_matrix(
                layer.activations, ctx.calibration.pattern_sets, arch.tile_k
            )
        boundaries = partition_boundaries(layer.k, arch.tile_k)
        m_tiles = [
            (m_start, min(m_start + arch.tile_m, layer.m))
            for m_start in range(0, layer.m, arch.tile_m)
        ]
        # The density/op-count metrics and the pattern-index matrix are
        # pure functions of the decomposition; a batched caller that
        # shares one decomposition across many points seeds them so they
        # are computed once per decomposition instead of once per point.
        breakdown = ctx.scratch.get("breakdown")
        if breakdown is None:
            breakdown = sparsity_breakdown(decomposition)
        ops = ctx.scratch.get("ops")
        if ops is None:
            ops = operation_counts(decomposition)
        pattern_index_matrix = ctx.scratch.get("pattern_index_matrix")
        if pattern_index_matrix is None:
            pattern_index_matrix = decomposition.pattern_index_matrix()
        ctx.scratch.update(
            decomposition=decomposition,
            breakdown=breakdown,
            ops=ops,
            boundaries=boundaries,
            m_tiles=m_tiles,
            num_n_tiles=int(np.ceil(layer.n / arch.tile_n)),
            pattern_index_matrix=pattern_index_matrix,
        )
        return StageRecord(
            name=self.name,
            detail={
                "m_tiles": len(m_tiles),
                "k_partitions": len(boundaries),
                "n_tiles": ctx.scratch["num_n_tiles"],
            },
        )


@dataclass
class PreprocessPlan:
    """Per-layer preprocessing work, planned ahead of execution.

    Carries one :class:`~repro.hw.preprocessor.CompressedCounts` per
    (M tile, partition) pair — M-tile-major, partition-minor, the exact
    iteration order of :class:`PhiPreprocessStage` — plus the per-
    partition pattern counts the matcher-comparison counter needs.
    Planning is separated from execution so a batched caller
    (:func:`simulate_phi_many`) can pack the jobs of many layers and
    many configurations in a single lockstep pass.
    """

    m_tiles: list[tuple[int, int]]
    num_partitions: int
    pattern_counts: tuple[int, ...]
    compressed: list[CompressedCounts]


def plan_preprocess(
    arch: ArchConfig,
    calibration: LayerCalibration,
    decomposition,
    layer: LayerWorkload,
) -> PreprocessPlan:
    """Plan the preprocessor's compress/pack jobs for one layer.

    The per-(M tile, partition) compressed counts are sliced out of one
    whole-partition nonzero-count pass, bit-identical to running
    :meth:`~repro.hw.preprocessor.Compressor.compress_counts` on every
    tile slice (the row ids of a slice are tile-local either way).
    """
    boundaries = partition_boundaries(layer.k, arch.tile_k)
    m_tiles = [
        (m_start, min(m_start + arch.tile_m, layer.m))
        for m_start in range(0, layer.m, arch.tile_m)
    ]
    nnz_per_row = [
        np.count_nonzero(decomposition.tiles[p].level2, axis=1)
        for p in range(len(boundaries))
    ]
    compressed: list[CompressedCounts] = []
    for m_start, m_stop in m_tiles:
        rows = m_stop - m_start
        for p in range(len(boundaries)):
            counts = nnz_per_row[p][m_start:m_stop]
            kept = np.flatnonzero(counts)
            compressed.append(
                CompressedCounts(
                    row_ids=kept,
                    row_nonzeros=counts[kept],
                    needs_psum=p > 0,
                    cycles=rows,
                    filtered_rows=rows - int(kept.size),
                )
            )
    return PreprocessPlan(
        m_tiles=m_tiles,
        num_partitions=len(boundaries),
        pattern_counts=tuple(
            pattern_set.num_patterns for pattern_set in calibration.pattern_sets
        ),
        compressed=compressed,
    )


class PhiPreprocessStage:
    """Preprocessor pass: match, compress and pack every (M tile, partition).

    The preprocessor overlaps with the previous tile's compute, so its
    cycles are recorded (they burn energy) but never enter the layer's
    critical path.  All of a layer's (M tile, partition) pack machines
    are independent, so they run as one batched lockstep pass
    (:func:`~repro.hw.preprocessor.pack_counts_batch`); a cross-point
    caller seeds an even wider batch via ``preprocess_plan`` /
    ``preprocess_packed`` in the context scratch.
    """

    name = "preprocess"

    def __init__(self, simulator: "PhiSimulator") -> None:
        self.simulator = simulator

    def run(self, ctx: LayerContext) -> StageRecord:
        """Produce the per-M-tile pack counts and preprocessing counters."""
        sim = self.simulator
        plan = ctx.scratch.pop("preprocess_plan", None)
        packed = ctx.scratch.pop("preprocess_packed", None)
        if plan is None:
            plan = plan_preprocess(
                sim.arch, ctx.calibration, ctx.scratch["decomposition"], ctx.layer
            )
        if packed is None:
            packer = sim.preprocessor.packer
            packed = pack_counts_batch([(packer, c) for c in plan.compressed])

        packs_per_tile: list[PackCounts] = []
        preproc_cycles = 0.0
        match_comparisons = 0
        l2_nonzeros_total = 0
        job = 0
        for m_start, m_stop in plan.m_tiles:
            rows = m_stop - m_start
            tile_packs = EMPTY_PACK_COUNTS
            tile_preproc = 0.0
            for p in range(plan.num_partitions):
                counts = packed[job]
                job += 1
                tile_packs = tile_packs.merge(counts)
                # Matcher and compressor sustain one row per cycle and the
                # packer one kept row per cycle; the pipelined cost of the
                # tile is the max of the three (= its row count).
                tile_preproc += max(rows, counts.cycles)
                match_comparisons += rows * plan.pattern_counts[p]
                # Every weight unit is one Level 2 correction.
                l2_nonzeros_total += counts.weight_units
            packs_per_tile.append(tile_packs)
            preproc_cycles += tile_preproc

        ctx.scratch.update(
            packs_per_tile=packs_per_tile,
            preproc_cycles=preproc_cycles,
            match_comparisons=match_comparisons,
            l2_nonzeros_total=l2_nonzeros_total,
        )
        return StageRecord(
            name=self.name,
            cycles=preproc_cycles,
            detail={
                "match_comparisons": match_comparisons,
                "l2_nonzeros": l2_nonzeros_total,
                "packs": sum(counts.num_packs for counts in packs_per_tile),
            },
        )


class PhiComputeStage:
    """L1 ∥ L2 compute plus the neuron array, per output tile.

    Within an output tile the two processors run concurrently and
    synchronise at the tile boundary, so the tile's latency is the
    maximum of the two; the same work repeats for every N tile
    (different weight / PWP columns).
    """

    name = "compute"

    def __init__(self, simulator: "PhiSimulator") -> None:
        self.simulator = simulator

    def run(self, ctx: LayerContext) -> StageRecord:
        """Accumulate L1/L2/neuron cycles over the M×N tile grid."""
        sim = self.simulator
        layer = ctx.layer
        pattern_index_matrix = ctx.scratch["pattern_index_matrix"]
        num_n_tiles = ctx.scratch["num_n_tiles"]

        compute_cycles = 0.0
        l1_cycles_total = 0.0
        l2_cycles_total = 0.0
        neuron_cycles_total = 0.0
        per_tile_unique_rows = 0  # summed per-M-tile uniques (no cross-tile reuse)
        # One vectorized pack-accounting pass costs every tile's L2 side.
        l2_cycles_per_tile = sim.l2.pack_cycles_for(ctx.scratch["packs_per_tile"])
        for i, (m_start, m_stop) in enumerate(ctx.scratch["m_tiles"]):
            l1_result = sim.l1.process_tile(
                pattern_index_matrix[m_start:m_stop],
                num_patterns_per_partition=sim.phi_config.num_patterns,
                output_width=sim.arch.tile_n,
            )
            l2_cycles = int(l2_cycles_per_tile[i])
            tile_compute = max(l1_result.cycles, l2_cycles) * num_n_tiles
            compute_cycles += tile_compute
            l1_cycles_total += l1_result.cycles * num_n_tiles
            l2_cycles_total += l2_cycles * num_n_tiles

            neuron = sim.neuron_array.estimate(m_stop - m_start, layer.n)
            neuron_cycles_total += neuron.cycles
            per_tile_unique_rows += l1_result.unique_patterns_used

        ctx.scratch.update(
            compute_cycles=compute_cycles,
            l1_cycles=l1_cycles_total,
            l2_cycles=l2_cycles_total,
            neuron_cycles=neuron_cycles_total,
            per_tile_unique_rows=per_tile_unique_rows,
        )
        return StageRecord(
            name=self.name,
            cycles=compute_cycles,
            detail={
                "l1_cycles": l1_cycles_total,
                "l2_cycles": l2_cycles_total,
                "neuron_cycles": neuron_cycles_total,
            },
        )


class PhiDramStage:
    """DRAM traffic model; assembles the canonical :class:`LayerResult`."""

    name = "dram"

    def __init__(self, simulator: "PhiSimulator") -> None:
        self.simulator = simulator

    def run(self, ctx: LayerContext) -> StageRecord:
        """Account all off-chip traffic and build ``ctx.result``."""
        sim = self.simulator
        arch = sim.arch
        layer = ctx.layer
        decomposition = ctx.scratch["decomposition"]
        pattern_index_matrix = ctx.scratch["pattern_index_matrix"]
        num_partitions = len(ctx.scratch["boundaries"])
        ops = ctx.scratch["ops"]

        # Distinct (partition, pattern) pairs used anywhere in the layer —
        # the working set the PWP prefetcher must bring on chip at least once.
        unique_pattern_rows = distinct_nonzero_per_column(pattern_index_matrix)

        # --- PWP DRAM traffic (Section 4.4 prefetcher) -------------------
        # A PWP row spans the full N width of the layer.  Every PWP that is
        # used anywhere in the layer must be fetched at least once; when the
        # used working set exceeds the PWP buffer, a fraction of the
        # per-M-tile re-uses miss on chip and are fetched again.
        pwp_row_bytes = layer.n * arch.pwp_bytes
        pwp_working_set = unique_pattern_rows * pwp_row_bytes
        per_tile_total = ctx.scratch["per_tile_unique_rows"] * pwp_row_bytes
        if pwp_working_set <= arch.buffers.pwp:
            pwp_prefetched = float(pwp_working_set)
        else:
            miss_ratio = 1.0 - arch.buffers.pwp / pwp_working_set
            reload_candidates = max(per_tile_total - pwp_working_set, 0.0)
            pwp_prefetched = float(pwp_working_set + reload_candidates * miss_ratio)
        # Without the prefetcher every calibrated pattern of every partition
        # is streamed for every M tile (Fig. 12b "w/o Prefetch").
        num_m_tiles = int(np.ceil(layer.m / arch.tile_m))
        pwp_unfiltered = float(
            num_partitions * sim.phi_config.num_patterns * pwp_row_bytes * num_m_tiles
        )

        # Compressed activation representation: pattern-index matrix (one
        # byte per entry) plus 5 bits per Level 2 nonzero (4-bit column
        # index inside the k=16 partition plus a sign bit).
        pattern_index_bytes = float(layer.m * num_partitions)
        level2_nonzeros = sum(
            int(np.count_nonzero(t.level2)) for t in decomposition.tiles
        )
        activation_bytes = pattern_index_bytes + 0.625 * float(level2_nonzeros)
        # Uncompressed Phi representation: 2-bit element matrix + indices.
        activation_bytes_uncompressed = layer.m * layer.k / 4.0 + pattern_index_bytes

        weight_bytes = float(layer.k * layer.n * arch.weight_bytes)
        output_bytes = float(layer.m * layer.n / 8.0)  # spike outputs, 1 bit each

        # Partial sums spill to DRAM only when an M x N tile of psums
        # exceeds the partial-sum buffer.
        psum_tile_bytes = arch.tile_m * layer.n * arch.psum_bytes
        psum_spill = 0.0
        if psum_tile_bytes > arch.buffers.partial_sum:
            spill_per_tile = psum_tile_bytes - arch.buffers.partial_sum
            psum_spill = spill_per_tile * int(np.ceil(layer.m / arch.tile_m)) * 2.0

        dram_bytes = (
            activation_bytes + weight_bytes + pwp_prefetched + output_bytes + psum_spill
        )
        memory_cycles = dram_bytes / arch.dram_bytes_per_cycle

        ctx.result = LayerResult(
            layer_name=layer.name,
            m=layer.m,
            k=layer.k,
            n=layer.n,
            compute_cycles=ctx.scratch["compute_cycles"],
            memory_cycles=memory_cycles,
            operations=ops.bit_sparse_ops * layer.n,
            preprocessor_cycles=ctx.scratch["preproc_cycles"],
            l1_cycles=ctx.scratch["l1_cycles"],
            l2_cycles=ctx.scratch["l2_cycles"],
            neuron_cycles=ctx.scratch["neuron_cycles"],
            operation_counts=ops,
            breakdown=ctx.scratch["breakdown"],
            activation_bytes=activation_bytes,
            activation_bytes_uncompressed=activation_bytes_uncompressed,
            weight_bytes=weight_bytes,
            pwp_bytes_prefetched=pwp_prefetched,
            pwp_bytes_unfiltered=pwp_unfiltered,
            output_bytes=output_bytes,
            psum_spill_bytes=psum_spill,
            pattern_match_comparisons=ctx.scratch["match_comparisons"],
        )
        return StageRecord(
            name=self.name,
            cycles=memory_cycles,
            dram_bytes=dram_bytes,
            detail={
                "activation_bytes": activation_bytes,
                "weight_bytes": weight_bytes,
                "pwp_bytes_prefetched": pwp_prefetched,
                "output_bytes": output_bytes,
                "psum_spill_bytes": psum_spill,
            },
        )


class PhiEnergyStage:
    """Fold the layer's activity counters into an energy breakdown."""

    name = "energy"

    def __init__(self, simulator: "PhiSimulator") -> None:
        self.simulator = simulator

    def run(self, ctx: LayerContext) -> StageRecord:
        """Attach the per-layer :class:`EnergyBreakdown` to the result."""
        ctx.result.energy = self.simulator._layer_energy(ctx.result)
        return StageRecord(
            name=self.name,
            energy_joules=ctx.result.energy.total,
            detail=dict(ctx.result.energy.components),
        )


class PhiSimulator(AcceleratorModel):
    """Cycle-level simulator of the Phi accelerator.

    Parameters
    ----------
    arch_config:
        Architecture parameters (tile sizes, buffers, frequency).
    phi_config:
        Algorithm parameters (partition width, pattern count) used when the
        simulator has to calibrate patterns itself.
    energy_model:
        Optional custom energy model (defaults to the Table 3 constants).
    """

    name = "phi"
    #: Table 3 total area.
    area_mm2 = 0.662

    def __init__(
        self,
        arch_config: ArchConfig | None = None,
        phi_config: PhiConfig | None = None,
        *,
        energy_model: PhiEnergyModel | None = None,
    ) -> None:
        self.arch = arch_config or ArchConfig()
        self.phi_config = phi_config or PhiConfig(
            partition_size=self.arch.tile_k, num_patterns=self.arch.num_patterns
        )
        if self.phi_config.partition_size != self.arch.tile_k:
            raise ValueError(
                "phi_config.partition_size must equal arch_config.tile_k "
                f"({self.phi_config.partition_size} != {self.arch.tile_k})"
            )
        self.energy_model = energy_model or PhiEnergyModel(self.arch)
        self.preprocessor = Preprocessor(self.arch)
        self.l1 = L1Processor(self.arch)
        self.l2 = L2Processor(self.arch)
        self.neuron_array = SpikingNeuronArray(self.arch)
        self.pipeline = Pipeline(
            (
                PhiTilingStage(self),
                PhiPreprocessStage(self),
                PhiComputeStage(self),
                PhiDramStage(self),
                PhiEnergyStage(self),
            )
        )

    # ------------------------------------------------------------------ #
    def _calibration_for(
        self, layer: LayerWorkload, calibration: ModelCalibration | None
    ) -> LayerCalibration:
        if calibration is not None and layer.name in calibration:
            return calibration[layer.name]
        calibrator = PhiCalibrator(self.phi_config)
        return calibrator.calibrate_layer(layer.name, layer.activations)

    def simulate_layer(
        self,
        layer: LayerWorkload,
        *,
        layer_calibration: LayerCalibration | None = None,
        decomposition=None,
    ) -> LayerResult:
        """Simulate one spike GEMM on the Phi accelerator.

        Parameters
        ----------
        layer:
            The activation / weight matrices of the GEMM.
        layer_calibration:
            Calibrated patterns for the layer; self-calibrates when omitted.
        decomposition:
            Optional precomputed
            :class:`~repro.core.sparsity.MatrixDecomposition` of the
            layer under ``layer_calibration`` and ``arch.tile_k`` — the
            tiling stage then skips the (deterministic) re-decomposition.
        """
        if layer_calibration is None:
            layer_calibration = self._calibration_for(layer, None)
        ctx = self._layer_context(layer, layer_calibration, decomposition)
        return self.pipeline.run_layer(ctx)

    def _layer_context(
        self,
        layer: LayerWorkload,
        layer_calibration: LayerCalibration,
        decomposition,
    ) -> LayerContext:
        """Validated :class:`LayerContext` for one layer simulation."""
        if layer_calibration.total_width != layer.k:
            raise ValueError(
                f"calibration width {layer_calibration.total_width} does not match "
                f"layer K={layer.k}"
            )
        ctx = LayerContext(layer=layer, calibration=layer_calibration)
        if decomposition is not None:
            if (
                decomposition.num_rows != layer.m
                or decomposition.total_width != layer.k
            ):
                raise ValueError(
                    f"decomposition shape ({decomposition.num_rows}, "
                    f"{decomposition.total_width}) does not match layer "
                    f"({layer.m}, {layer.k})"
                )
            ctx.scratch["decomposition"] = decomposition
        return ctx

    def _layer_energy(self, sim: LayerResult) -> EnergyBreakdown:
        """Energy of one simulated layer from its activity counters."""
        n_scale = max(sim.n / self.arch.tile_n, 1.0)
        component_busy = {
            "preprocessor": sim.preprocessor_cycles,
            "l1_processor": sim.l1_cycles,
            "l2_processor": sim.l2_cycles,
            "lif_neuron": sim.neuron_cycles,
            # Buffers burn leakage/access power for the whole layer runtime.
            "buffer": sim.total_cycles,
        }
        # On-chip buffer traffic: weight + PWP reads for every reuse, psum
        # read/write per accumulation, pattern-index reads.
        ops = sim.operation_counts
        buffer_bytes = (
            ops.phi_level1_ops * self.arch.tile_n * self.arch.pwp_bytes * n_scale
            + ops.phi_level2_ops * self.arch.tile_n * self.arch.weight_bytes * n_scale
            + (ops.phi_level1_ops + ops.phi_level2_ops)
            * self.arch.tile_n
            * self.arch.psum_bytes
            * n_scale
        )
        return self.energy_model.energy_from_activity(
            component_busy_cycles=component_busy,
            buffer_bytes=buffer_bytes,
            dram_bytes=sim.dram_bytes,
        )

    # ------------------------------------------------------------------ #
    def run(
        self,
        workload: ModelWorkload,
        *,
        calibration: ModelCalibration | None = None,
        decompositions=None,
    ) -> RunResult:
        """Simulate every layer of a model workload.

        Parameters
        ----------
        workload:
            The per-layer activation / weight matrices.
        calibration:
            Patterns calibrated on a training subset.  When omitted, each
            layer is calibrated on its own activations (upper bound on
            pattern quality; Section 3.2 shows train-calibrated patterns
            generalise, so the difference is small).
        decompositions:
            Optional mapping of layer name to precomputed
            :class:`~repro.core.sparsity.MatrixDecomposition`; layers not
            in the mapping decompose as usual.
        """
        result = RunResult(
            accelerator=self.name,
            model_name=workload.model_name,
            dataset_name=workload.dataset_name,
            area_mm2=self.area_mm2,
            config=self.arch,
        )
        decompositions = decompositions or {}
        for layer in workload:
            layer_calibration = self._calibration_for(layer, calibration)
            result.layers.append(
                self.simulate_layer(
                    layer,
                    layer_calibration=layer_calibration,
                    decomposition=decompositions.get(layer.name),
                )
            )
        return result

    def simulate(
        self,
        workload: ModelWorkload,
        *,
        calibration: ModelCalibration | None = None,
        decompositions=None,
    ) -> RunResult:
        """Alias of :meth:`run` satisfying the :class:`AcceleratorModel` API."""
        return self.run(
            workload, calibration=calibration, decompositions=decompositions
        )

    def simulate_many(
        self,
        workloads: Sequence[ModelWorkload],
        *,
        calibrations: Sequence[ModelCalibration | None] | None = None,
        decompositions: Sequence[Mapping | None] | None = None,
        **kwargs,
    ) -> list[RunResult]:
        """Batched :meth:`simulate`: one stacked pass over many workloads.

        Overrides the :class:`~repro.hw.pipeline.AcceleratorModel`
        default loop: the compress/pack machines of *every* layer of
        *every* workload are advanced in one NumPy lockstep batch (see
        :func:`simulate_phi_many`), with per-workload results sliced
        back out bit-identically to sequential :meth:`simulate` calls.

        Parameters
        ----------
        workloads:
            The workloads to simulate under this configuration.
        calibrations, decompositions:
            Optional per-workload counterparts of the :meth:`run`
            keyword arguments (``None`` entries self-calibrate /
            self-decompose exactly as :meth:`run` would).
        """
        if calibrations is None:
            calibrations = [None] * len(workloads)
        if decompositions is None:
            decompositions = [None] * len(workloads)
        return simulate_phi_many(
            [
                (self, workload, calibration, decomposition)
                for workload, calibration, decomposition in zip(
                    workloads, calibrations, decompositions
                )
            ]
        )


def simulate_phi_many(
    tasks: Sequence[
        tuple[
            PhiSimulator,
            ModelWorkload,
            ModelCalibration | None,
            Mapping | None,
        ]
    ],
) -> list[RunResult]:
    """Simulate many (simulator, workload) tasks as one stacked batch.

    This is the cross-point batched execution path of the sweep engine:
    the preprocessing jobs of every layer of every task — potentially
    under *different* Phi/arch configurations — are planned first, packed
    in a single lockstep batch (:func:`~repro.hw.preprocessor.
    pack_counts_batch`), and the per-task pipelines then consume their
    slice of the batch.  Results are bit-identical to calling
    :meth:`PhiSimulator.run` per task, because every per-layer quantity
    is computed by the same (deterministic) code on the same inputs —
    only the loop structure changes (property-tested).

    Work shared across tasks is computed once per distinct input rather
    than once per task: layer decompositions (keyed by activation matrix,
    calibration and partition width) and the density/op-count metrics
    derived from them (keyed by decomposition identity).

    Parameters
    ----------
    tasks:
        ``(simulator, workload, calibration, decompositions)`` tuples —
        the last two may be ``None``, matching :meth:`PhiSimulator.run`.

    Returns
    -------
    list of RunResult
        One result per task, in input order.
    """
    prepared = []  # (simulator, RunResult, [(ctx, job_start, job_stop)])
    jobs: list[tuple] = []
    # Decompositions shared across tasks (same workload instance, same
    # calibration instance, same partition width) are computed once; the
    # metrics derived from a decomposition are memoised by its identity,
    # which also covers caller-provided shared decompositions.
    decomposition_memo: dict[tuple, object] = {}
    metrics_memo: dict[int, tuple] = {}
    for simulator, workload, calibration, decompositions in tasks:
        result = RunResult(
            accelerator=simulator.name,
            model_name=workload.model_name,
            dataset_name=workload.dataset_name,
            area_mm2=simulator.area_mm2,
            config=simulator.arch,
        )
        decompositions = decompositions or {}
        contexts = []
        for layer in workload:
            layer_calibration = simulator._calibration_for(layer, calibration)
            decomposition = decompositions.get(layer.name)
            if decomposition is None:
                memo_key = (
                    id(layer.activations),
                    id(layer_calibration),
                    simulator.arch.tile_k,
                )
                decomposition = decomposition_memo.get(memo_key)
                if decomposition is None:
                    decomposition = decompose_matrix(
                        layer.activations,
                        layer_calibration.pattern_sets,
                        simulator.arch.tile_k,
                    )
                    decomposition_memo[memo_key] = decomposition
            ctx = simulator._layer_context(layer, layer_calibration, decomposition)
            metrics = metrics_memo.get(id(decomposition))
            if metrics is None:
                metrics = (
                    sparsity_breakdown(decomposition),
                    operation_counts(decomposition),
                    decomposition.pattern_index_matrix(),
                )
                metrics_memo[id(decomposition)] = metrics
            ctx.scratch["breakdown"] = metrics[0]
            ctx.scratch["ops"] = metrics[1]
            ctx.scratch["pattern_index_matrix"] = metrics[2]
            plan = plan_preprocess(
                simulator.arch, layer_calibration, decomposition, layer
            )
            ctx.scratch["preprocess_plan"] = plan
            start = len(jobs)
            packer = simulator.preprocessor.packer
            jobs.extend((packer, compressed) for compressed in plan.compressed)
            contexts.append((ctx, start, len(jobs)))
        prepared.append((simulator, result, contexts))

    packed = pack_counts_batch(jobs)

    results = []
    for simulator, result, contexts in prepared:
        for ctx, start, stop in contexts:
            ctx.scratch["preprocess_packed"] = packed[start:stop]
            result.layers.append(simulator.pipeline.run_layer(ctx))
        results.append(result)
    return results
