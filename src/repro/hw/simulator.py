"""End-to-end Phi accelerator simulator.

The simulator follows the methodology of the paper (Section 5.1): it takes
the recorded spike activations of a model together with the calibrated
patterns, models the behaviour of every architectural component at the
tile level, and reports cycles, memory traffic and energy.

Execution model per layer (K-first tiling, Section 4.1):

* the activation matrix is split into ``tile_m``-row M tiles, ``tile_k``
  wide K partitions and ``tile_n`` wide N tiles,
* the Preprocessor converts every (M tile, partition) into the Level 1
  pattern-index column and the packed Level 2 representation; this work is
  overlapped with the previous tile's compute, so it adds energy but no
  critical-path cycles,
* per output tile (M tile, N tile) the L1 and L2 processors run
  concurrently and synchronise at the tile boundary, so the tile's compute
  latency is the maximum of the two,
* DRAM traffic (compressed activations, weights, prefetched PWPs, spilled
  partial sums) is bandwidth-limited and can bound the layer latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.calibration import LayerCalibration, ModelCalibration, PhiCalibrator
from ..core.config import PhiConfig
from ..core.metrics import (
    OperationCounts,
    SparsityBreakdown,
    aggregate_breakdowns,
    aggregate_operation_counts,
    operation_counts,
    sparsity_breakdown,
)
from ..core.sparsity import decompose_matrix, partition_boundaries
from ..workloads.workload import LayerWorkload, ModelWorkload
from .buffers import BufferSet
from .config import ArchConfig
from .dram import DRAMModel
from .energy import EnergyBreakdown, PhiEnergyModel
from .l1_processor import L1Processor, distinct_nonzero_per_column
from .l2_processor import L2Processor
from .neuron_array import SpikingNeuronArray
from .preprocessor import Preprocessor


@dataclass
class LayerSimulation:
    """Simulation outcome of a single layer."""

    layer_name: str
    m: int
    k: int
    n: int
    compute_cycles: float
    memory_cycles: float
    preprocessor_cycles: float
    l1_cycles: float
    l2_cycles: float
    neuron_cycles: float
    operation_counts: OperationCounts
    breakdown: SparsityBreakdown
    activation_bytes: float
    activation_bytes_uncompressed: float
    weight_bytes: float
    pwp_bytes_prefetched: float
    pwp_bytes_unfiltered: float
    output_bytes: float
    psum_spill_bytes: float
    pattern_match_comparisons: int
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)

    @property
    def total_cycles(self) -> float:
        """Layer latency: compute overlapped with (bounded by) memory."""
        return max(self.compute_cycles, self.memory_cycles)

    @property
    def dram_bytes(self) -> float:
        """Total DRAM traffic of the layer (prefetcher enabled)."""
        return (
            self.activation_bytes
            + self.weight_bytes
            + self.pwp_bytes_prefetched
            + self.output_bytes
            + self.psum_spill_bytes
        )


@dataclass
class SimulationResult:
    """Aggregated simulation outcome for a model workload."""

    model_name: str
    dataset_name: str
    config: ArchConfig
    layers: list[LayerSimulation] = field(default_factory=list)

    @property
    def key(self) -> str:
        """Canonical workload identifier."""
        return f"{self.model_name}/{self.dataset_name}"

    @property
    def total_cycles(self) -> float:
        """End-to-end cycles (layers execute back to back)."""
        return sum(layer.total_cycles for layer in self.layers)

    @property
    def runtime_seconds(self) -> float:
        """Wall-clock runtime at the configured frequency."""
        return self.total_cycles / self.config.frequency_hz

    @property
    def total_operations(self) -> int:
        """Paper-defined OP count (Section 5.1).

        One OP is the scalar accumulation triggered by a '1' element of the
        bit-sparse activation, so the total is (number of 1 bits) x N for
        every layer regardless of how the accelerator actually executes it.
        """
        return sum(
            layer.operation_counts.bit_sparse_ops * layer.n for layer in self.layers
        )

    @property
    def throughput_gops(self) -> float:
        """Effective throughput in GOP/s (OPs defined as in Section 5.1)."""
        if self.runtime_seconds == 0:
            return 0.0
        return self.total_operations / self.runtime_seconds / 1e9

    @property
    def energy(self) -> EnergyBreakdown:
        """Total energy across all layers."""
        total = EnergyBreakdown()
        for layer in self.layers:
            total = total + layer.energy
        return total

    @property
    def energy_joules(self) -> float:
        """Total energy in Joules."""
        return self.energy.total

    @property
    def energy_efficiency_gops_per_joule(self) -> float:
        """Energy efficiency in GOP/J."""
        if self.energy_joules == 0:
            return 0.0
        return self.total_operations / self.energy_joules / 1e9

    @property
    def total_dram_bytes(self) -> float:
        """Total DRAM traffic."""
        return sum(layer.dram_bytes for layer in self.layers)

    def aggregate_breakdown(self) -> SparsityBreakdown:
        """Element-weighted sparsity breakdown over all layers."""
        return aggregate_breakdowns(
            (layer.breakdown, layer.m * layer.k) for layer in self.layers
        )

    def aggregate_operations(self) -> OperationCounts:
        """Summed operation counts over all layers."""
        return aggregate_operation_counts(layer.operation_counts for layer in self.layers)


class PhiSimulator:
    """Cycle-level simulator of the Phi accelerator.

    Parameters
    ----------
    arch_config:
        Architecture parameters (tile sizes, buffers, frequency).
    phi_config:
        Algorithm parameters (partition width, pattern count) used when the
        simulator has to calibrate patterns itself.
    energy_model:
        Optional custom energy model (defaults to the Table 3 constants).
    """

    def __init__(
        self,
        arch_config: ArchConfig | None = None,
        phi_config: PhiConfig | None = None,
        *,
        energy_model: PhiEnergyModel | None = None,
    ) -> None:
        self.arch = arch_config or ArchConfig()
        self.phi_config = phi_config or PhiConfig(
            partition_size=self.arch.tile_k, num_patterns=self.arch.num_patterns
        )
        if self.phi_config.partition_size != self.arch.tile_k:
            raise ValueError(
                "phi_config.partition_size must equal arch_config.tile_k "
                f"({self.phi_config.partition_size} != {self.arch.tile_k})"
            )
        self.energy_model = energy_model or PhiEnergyModel(self.arch)
        self.preprocessor = Preprocessor(self.arch)
        self.l1 = L1Processor(self.arch)
        self.l2 = L2Processor(self.arch)
        self.neuron_array = SpikingNeuronArray(self.arch)

    # ------------------------------------------------------------------ #
    def _calibration_for(
        self, layer: LayerWorkload, calibration: ModelCalibration | None
    ) -> LayerCalibration:
        if calibration is not None and layer.name in calibration:
            return calibration[layer.name]
        calibrator = PhiCalibrator(self.phi_config)
        return calibrator.calibrate_layer(layer.name, layer.activations)

    def simulate_layer(
        self,
        layer: LayerWorkload,
        *,
        layer_calibration: LayerCalibration | None = None,
    ) -> LayerSimulation:
        """Simulate one spike GEMM on the Phi accelerator."""
        arch = self.arch
        if layer_calibration is None:
            layer_calibration = self._calibration_for(layer, None)
        if layer_calibration.total_width != layer.k:
            raise ValueError(
                f"calibration width {layer_calibration.total_width} does not match "
                f"layer K={layer.k}"
            )

        decomposition = decompose_matrix(
            layer.activations, layer_calibration.pattern_sets, arch.tile_k
        )
        breakdown = sparsity_breakdown(decomposition)
        ops = operation_counts(decomposition)

        boundaries = partition_boundaries(layer.k, arch.tile_k)
        num_partitions = len(boundaries)
        num_n_tiles = int(np.ceil(layer.n / arch.tile_n))
        pattern_index_matrix = decomposition.pattern_index_matrix()

        compute_cycles = 0.0
        preproc_cycles = 0.0
        l1_cycles_total = 0.0
        l2_cycles_total = 0.0
        neuron_cycles_total = 0.0
        match_comparisons = 0
        l2_nonzeros_total = 0
        per_tile_unique_rows = 0  # summed per-M-tile uniques (no cross-tile reuse)

        for m_start in range(0, layer.m, arch.tile_m):
            m_stop = min(m_start + arch.tile_m, layer.m)
            tile_rows = m_stop - m_start

            # --- Preprocessor: one pass per K partition of this M tile. ---
            # The layer was already decomposed above; rows decompose
            # independently, so each (M tile, partition) view is sliced out
            # of that decomposition instead of re-matched from scratch.
            tile_packs = []
            tile_preproc = 0.0
            for p, (k_start, k_stop) in enumerate(boundaries):
                sub_decomposition = decomposition.tiles[p].row_slice(m_start, m_stop)
                result = self.preprocessor.process_tile(
                    sub_decomposition.original,
                    layer_calibration.pattern_sets[p],
                    needs_psum=(p > 0),
                    decomposition=sub_decomposition,
                )
                tile_packs.extend(result.packs)
                tile_preproc += result.cycles
                match_comparisons += result.matcher.comparisons
                l2_nonzeros_total += result.compressor.total_nonzeros
            preproc_cycles += tile_preproc

            # --- L1 processor on the pattern-index sub-matrix. ---
            l1_result = self.l1.process_tile(
                pattern_index_matrix[m_start:m_stop],
                num_patterns_per_partition=self.phi_config.num_patterns,
                output_width=arch.tile_n,
            )
            # --- L2 processor on the packed Level 2 representation. ---
            l2_result = self.l2.process_packs(tile_packs, output_width=arch.tile_n)

            # The same L1/L2 work repeats for every N tile (different
            # weight / PWP columns), and within an output tile the two
            # processors run concurrently and synchronise at the end.
            tile_compute = max(l1_result.cycles, l2_result.cycles) * num_n_tiles
            compute_cycles += tile_compute
            l1_cycles_total += l1_result.cycles * num_n_tiles
            l2_cycles_total += l2_result.cycles * num_n_tiles

            neuron = self.neuron_array.estimate(tile_rows, layer.n)
            neuron_cycles_total += neuron.cycles
            per_tile_unique_rows += l1_result.unique_patterns_used

        # Distinct (partition, pattern) pairs used anywhere in the layer —
        # the working set the PWP prefetcher must bring on chip at least once.
        unique_pattern_rows = distinct_nonzero_per_column(pattern_index_matrix)

        # --- PWP DRAM traffic (Section 4.4 prefetcher) -------------------
        # A PWP row spans the full N width of the layer.  Every PWP that is
        # used anywhere in the layer must be fetched at least once; when the
        # used working set exceeds the PWP buffer, a fraction of the
        # per-M-tile re-uses miss on chip and are fetched again.
        pwp_row_bytes = layer.n * arch.pwp_bytes
        pwp_working_set = unique_pattern_rows * pwp_row_bytes
        per_tile_total = per_tile_unique_rows * pwp_row_bytes
        if pwp_working_set <= arch.buffers.pwp:
            pwp_prefetched = float(pwp_working_set)
        else:
            miss_ratio = 1.0 - arch.buffers.pwp / pwp_working_set
            reload_candidates = max(per_tile_total - pwp_working_set, 0.0)
            pwp_prefetched = float(pwp_working_set + reload_candidates * miss_ratio)
        # Without the prefetcher every calibrated pattern of every partition
        # is streamed for every M tile (Fig. 12b "w/o Prefetch").
        num_m_tiles = int(np.ceil(layer.m / arch.tile_m))
        pwp_unfiltered = float(
            num_partitions * self.phi_config.num_patterns * pwp_row_bytes * num_m_tiles
        )

        # ------------------------------------------------------------------
        # DRAM traffic
        # ------------------------------------------------------------------
        # Compressed activation representation: pattern-index matrix (one
        # byte per entry) plus 5 bits per Level 2 nonzero (4-bit column
        # index inside the k=16 partition plus a sign bit).
        pattern_index_bytes = float(layer.m * num_partitions)
        level2_nonzeros = sum(
            int(np.count_nonzero(t.level2)) for t in decomposition.tiles
        )
        activation_bytes = pattern_index_bytes + 0.625 * float(level2_nonzeros)
        # Uncompressed Phi representation: 2-bit element matrix + indices.
        activation_bytes_uncompressed = layer.m * layer.k / 4.0 + pattern_index_bytes

        weight_bytes = float(layer.k * layer.n * arch.weight_bytes)
        output_bytes = float(layer.m * layer.n / 8.0)  # spike outputs, 1 bit each

        # Partial sums spill to DRAM only when an M x N tile of psums
        # exceeds the partial-sum buffer.
        psum_tile_bytes = arch.tile_m * layer.n * arch.psum_bytes
        psum_spill = 0.0
        if psum_tile_bytes > arch.buffers.partial_sum:
            spill_per_tile = psum_tile_bytes - arch.buffers.partial_sum
            psum_spill = spill_per_tile * int(np.ceil(layer.m / arch.tile_m)) * 2.0

        dram_bytes = (
            activation_bytes + weight_bytes + pwp_prefetched + output_bytes + psum_spill
        )
        memory_cycles = dram_bytes / arch.dram_bytes_per_cycle

        layer_sim = LayerSimulation(
            layer_name=layer.name,
            m=layer.m,
            k=layer.k,
            n=layer.n,
            compute_cycles=compute_cycles,
            memory_cycles=memory_cycles,
            preprocessor_cycles=preproc_cycles,
            l1_cycles=l1_cycles_total,
            l2_cycles=l2_cycles_total,
            neuron_cycles=neuron_cycles_total,
            operation_counts=ops,
            breakdown=breakdown,
            activation_bytes=activation_bytes,
            activation_bytes_uncompressed=activation_bytes_uncompressed,
            weight_bytes=weight_bytes,
            pwp_bytes_prefetched=pwp_prefetched,
            pwp_bytes_unfiltered=pwp_unfiltered,
            output_bytes=output_bytes,
            psum_spill_bytes=psum_spill,
            pattern_match_comparisons=match_comparisons,
        )
        layer_sim.energy = self._layer_energy(layer_sim)
        return layer_sim

    def _layer_energy(self, sim: LayerSimulation) -> EnergyBreakdown:
        """Energy of one simulated layer from its activity counters."""
        n_scale = max(sim.n / self.arch.tile_n, 1.0)
        component_busy = {
            "preprocessor": sim.preprocessor_cycles,
            "l1_processor": sim.l1_cycles,
            "l2_processor": sim.l2_cycles,
            "lif_neuron": sim.neuron_cycles,
            # Buffers burn leakage/access power for the whole layer runtime.
            "buffer": sim.total_cycles,
        }
        # On-chip buffer traffic: weight + PWP reads for every reuse, psum
        # read/write per accumulation, pattern-index reads.
        ops = sim.operation_counts
        buffer_bytes = (
            ops.phi_level1_ops * self.arch.tile_n * self.arch.pwp_bytes * n_scale
            + ops.phi_level2_ops * self.arch.tile_n * self.arch.weight_bytes * n_scale
            + (ops.phi_level1_ops + ops.phi_level2_ops)
            * self.arch.tile_n
            * self.arch.psum_bytes
            * n_scale
        )
        return self.energy_model.energy_from_activity(
            component_busy_cycles=component_busy,
            buffer_bytes=buffer_bytes,
            dram_bytes=sim.dram_bytes,
        )

    # ------------------------------------------------------------------ #
    def run(
        self,
        workload: ModelWorkload,
        *,
        calibration: ModelCalibration | None = None,
    ) -> SimulationResult:
        """Simulate every layer of a model workload.

        Parameters
        ----------
        workload:
            The per-layer activation / weight matrices.
        calibration:
            Patterns calibrated on a training subset.  When omitted, each
            layer is calibrated on its own activations (upper bound on
            pattern quality; Section 3.2 shows train-calibrated patterns
            generalise, so the difference is small).
        """
        result = SimulationResult(
            model_name=workload.model_name,
            dataset_name=workload.dataset_name,
            config=self.arch,
        )
        for layer in workload:
            layer_calibration = self._calibration_for(layer, calibration)
            result.layers.append(
                self.simulate_layer(layer, layer_calibration=layer_calibration)
            )
        return result
