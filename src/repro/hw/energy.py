"""Area and power/energy model of the Phi accelerator.

The paper synthesises the RTL with Design Compiler in 28 nm and models
buffers with CACTI and DRAM with DRAMsim3.  We embed the resulting
component-level area and power figures (Table 3) as constants and derive
per-event energies from them, so the simulator can report energy without
the proprietary tool-chain.  Absolute numbers track the paper's setup;
relative comparisons (Fig. 8, Table 2) come out of the cycle/traffic
counts produced by the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from .config import ArchConfig


@dataclass(frozen=True)
class ComponentSpec:
    """Synthesis results of one hardware component."""

    area_mm2: float
    power_mw: float


#: Table 3: Phi area and power breakdown (28 nm, 500 MHz).
PHI_COMPONENTS: Mapping[str, ComponentSpec] = {
    "preprocessor": ComponentSpec(area_mm2=0.099, power_mw=22.5),
    "l1_processor": ComponentSpec(area_mm2=0.074, power_mw=68.2),
    "l2_processor": ComponentSpec(area_mm2=0.027, power_mw=25.6),
    "lif_neuron": ComponentSpec(area_mm2=0.011, power_mw=9.4),
    "buffer": ComponentSpec(area_mm2=0.452, power_mw=220.8),
}

#: Energy of one DRAM byte transfer (DDR4-2133, mostly-sequential streams
#: with high row-buffer locality).
DRAM_ENERGY_PER_BYTE_PJ = 60.0

#: Energy of one on-chip SRAM byte access (CACTI-style estimate).
BUFFER_ENERGY_PER_BYTE_PJ = 1.2

#: Energy of a single 8-bit accumulate operation in 28 nm.
ACCUMULATE_ENERGY_PJ = 0.03

#: Energy of one pattern-match comparison (XOR + popcount on 16 bits).
MATCH_ENERGY_PJ = 0.008

#: Energy of one LIF neuron update.
LIF_UPDATE_ENERGY_PJ = 0.05


@dataclass(frozen=True)
class AreaReport:
    """Per-component area breakdown in mm^2."""

    components: dict[str, float]

    @property
    def total(self) -> float:
        """Total accelerator area."""
        return sum(self.components.values())


@dataclass
class EnergyBreakdown:
    """Energy consumed by one simulation, split by source (in Joules)."""

    core: float = 0.0
    buffer: float = 0.0
    dram: float = 0.0
    components: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Total energy in Joules."""
        return self.core + self.buffer + self.dram

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        merged = dict(self.components)
        for key, value in other.components.items():
            merged[key] = merged.get(key, 0.0) + value
        return EnergyBreakdown(
            core=self.core + other.core,
            buffer=self.buffer + other.buffer,
            dram=self.dram + other.dram,
            components=merged,
        )


class PhiEnergyModel:
    """Translate cycle and traffic counts into energy and area figures."""

    def __init__(
        self,
        config: ArchConfig,
        *,
        components: Mapping[str, ComponentSpec] = PHI_COMPONENTS,
        buffer_scale: float = 1.0,
    ) -> None:
        self.config = config
        self.components = dict(components)
        # Buffer area/power scale roughly linearly with capacity; the
        # Fig. 7d sweep varies buffer_scale.
        self.buffer_scale = buffer_scale

    # ------------------------------------------------------------------ #
    # Area
    # ------------------------------------------------------------------ #
    def area_report(self) -> AreaReport:
        """Component-level area breakdown (Table 3)."""
        areas = {}
        for name, spec in self.components.items():
            area = spec.area_mm2
            if name == "buffer":
                area *= self.buffer_scale
            areas[name] = area
        return AreaReport(components=areas)

    def total_area_mm2(self) -> float:
        """Total accelerator area in mm^2."""
        return self.area_report().total

    # ------------------------------------------------------------------ #
    # Power
    # ------------------------------------------------------------------ #
    def power_report(self) -> dict[str, float]:
        """Component-level power breakdown in mW (Table 3)."""
        powers = {}
        for name, spec in self.components.items():
            power = spec.power_mw
            if name == "buffer":
                power *= self.buffer_scale
            powers[name] = power
        return powers

    def total_power_mw(self) -> float:
        """Total core + buffer power in mW."""
        return sum(self.power_report().values())

    # ------------------------------------------------------------------ #
    # Energy
    # ------------------------------------------------------------------ #
    def component_energy(
        self, component: str, busy_cycles: float
    ) -> float:
        """Energy (J) of one component busy for ``busy_cycles`` cycles."""
        spec = self.components[component]
        power_w = spec.power_mw * 1e-3
        if component == "buffer":
            power_w *= self.buffer_scale
        seconds = busy_cycles / self.config.frequency_hz
        return power_w * seconds

    def accumulate_energy(self, num_accumulations: int) -> float:
        """Energy (J) of scalar accumulate operations."""
        return num_accumulations * ACCUMULATE_ENERGY_PJ * 1e-12

    def match_energy(self, num_matches: int) -> float:
        """Energy (J) of pattern-match comparisons."""
        return num_matches * MATCH_ENERGY_PJ * 1e-12

    def lif_energy(self, num_updates: int) -> float:
        """Energy (J) of LIF membrane updates."""
        return num_updates * LIF_UPDATE_ENERGY_PJ * 1e-12

    def buffer_energy(self, bytes_accessed: float) -> float:
        """Energy (J) of on-chip buffer traffic."""
        return bytes_accessed * BUFFER_ENERGY_PER_BYTE_PJ * 1e-12

    def dram_energy(self, bytes_transferred: float) -> float:
        """Energy (J) of off-chip DRAM traffic."""
        return bytes_transferred * DRAM_ENERGY_PER_BYTE_PJ * 1e-12

    def energy_from_activity(
        self,
        *,
        component_busy_cycles: Mapping[str, float],
        buffer_bytes: float,
        dram_bytes: float,
    ) -> EnergyBreakdown:
        """Combine activity counters into a full energy breakdown."""
        per_component = {
            name: self.component_energy(name, cycles)
            for name, cycles in component_busy_cycles.items()
            if name in self.components and name != "buffer"
        }
        core = sum(per_component.values())
        buffer = self.buffer_energy(buffer_bytes)
        if "buffer" in component_busy_cycles:
            buffer += self.component_energy("buffer", component_busy_cycles["buffer"])
        dram = self.dram_energy(dram_bytes)
        per_component["buffer"] = buffer
        per_component["dram"] = dram
        return EnergyBreakdown(
            core=core, buffer=buffer, dram=dram, components=per_component
        )
