"""Phi Preprocessor: pattern matcher, compressor and packer (Section 4.2).

The Preprocessor converts a spike-activation tile into the two-level Phi
representation on the fly:

* the **pattern matcher** (a 1-D systolic array of matcher units) finds,
  for every activation row, the pre-loaded pattern with the minimum
  Hamming distance and emits the corresponding Level 2 sparse row,
* the **compressor** drops all-zero Level 2 rows and converts the rest to
  (column index, value) pairs, and
* the **packer** merges compressed rows into fixed-size *packs* of
  ``pack_size`` units, using multiple windows and per-window conflict
  detectors so partial-sum bank conflicts are avoided.

All three stages are modelled behaviourally and cycle-accurately at the
row granularity: the matcher and compressor sustain one row per cycle and
the packer one compressed row per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.patterns import NO_PATTERN, PatternSet
from ..core.sparsity import TileDecomposition, decompose_tile
from .config import ArchConfig

#: Unit label: a {+1,-1} correction element that accumulates a weight row.
LABEL_NONZERO = "nonzero"
#: Unit label: a partial sum carried from the previous K partition.
LABEL_PSUM = "psum"


@dataclass(frozen=True)
class PackUnit:
    """One unit of the compact Level 2 data structure.

    Attributes
    ----------
    label:
        Either :data:`LABEL_NONZERO` (weight accumulation) or
        :data:`LABEL_PSUM` (partial-sum accumulation).
    index:
        Column index of the weight row, or the partial-sum slot index.
    value:
        +1 or -1 for nonzeros; always +1 for partial sums.
    row_id:
        The output row this unit contributes to.
    """

    label: str
    index: int
    value: int
    row_id: int

    def __post_init__(self) -> None:
        if self.label not in (LABEL_NONZERO, LABEL_PSUM):
            raise ValueError(f"invalid unit label {self.label!r}")
        if self.value not in (-1, 1):
            raise ValueError("unit value must be +1 or -1")


def _make_unit(label: str, index: int, value: int, row_id: int) -> PackUnit:
    """Construct a :class:`PackUnit` bypassing dataclass validation.

    Internal fast path for unit streams whose labels and values the caller
    has already checked; the public ``PackUnit(...)`` constructor keeps its
    validation.
    """
    unit = object.__new__(PackUnit)
    object.__setattr__(unit, "label", label)
    object.__setattr__(unit, "index", index)
    object.__setattr__(unit, "value", value)
    object.__setattr__(unit, "row_id", row_id)
    return unit


@dataclass
class Pack:
    """A fixed-capacity group of units processed by the L2 processor."""

    capacity: int
    units: list[PackUnit] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.num_weight_units = sum(
            1 for u in self.units if u.label == LABEL_NONZERO
        )
        self.num_psum_units = sum(1 for u in self.units if u.label == LABEL_PSUM)

    @property
    def num_units(self) -> int:
        """Number of occupied units."""
        return len(self.units)

    @property
    def free_space(self) -> int:
        """Remaining unit slots."""
        return self.capacity - len(self.units)

    @property
    def row_ids(self) -> list[int]:
        """Distinct output rows contributing units, in insertion order."""
        seen: list[int] = []
        for unit in self.units:
            if unit.row_id not in seen:
                seen.append(unit.row_id)
        return seen

    def psum_banks(self, num_banks: int) -> set[int]:
        """Partial-sum buffer banks already referenced by this pack."""
        return {unit.row_id % num_banks for unit in self.units if unit.label == LABEL_PSUM}

    def add_row(self, units: list[PackUnit]) -> None:
        """Append all units of one compressed row."""
        if len(units) > self.free_space:
            raise ValueError("row does not fit into the pack")
        self.units.extend(units)
        for unit in units:
            if unit.label == LABEL_NONZERO:
                self.num_weight_units += 1
            else:
                self.num_psum_units += 1

    @property
    def utilization(self) -> float:
        """Fraction of occupied unit slots."""
        return self.num_units / self.capacity if self.capacity else 0.0


@dataclass(frozen=True)
class CompressedRow:
    """Column-index representation of one nonzero Level 2 row."""

    row_id: int
    columns: tuple[int, ...]
    values: tuple[int, ...]
    needs_psum: bool

    @property
    def num_nonzeros(self) -> int:
        """Number of {+1, -1} corrections in the row."""
        return len(self.columns)

    def units(self) -> list[PackUnit]:
        """Expand the row into pack units (corrections plus partial sum)."""
        row_id = self.row_id
        units = []
        for col, val in zip(self.columns, self.values):
            # Mirrors PackUnit.__post_init__'s value check; the labels are
            # the module constants, so the label check cannot fail here.
            if val != 1 and val != -1:
                raise ValueError("unit value must be +1 or -1")
            units.append(_make_unit(LABEL_NONZERO, col, val, row_id))
        if self.needs_psum:
            units.append(_make_unit(LABEL_PSUM, row_id, 1, row_id))
        return units


@dataclass
class MatcherResult:
    """Output of the pattern matcher for one activation tile."""

    decomposition: TileDecomposition
    cycles: int
    comparisons: int

    @property
    def pattern_indices(self) -> np.ndarray:
        """Assigned pattern index per row (0 = no pattern)."""
        return self.decomposition.pattern_indices

    @property
    def level2(self) -> np.ndarray:
        """The {+1, 0, -1} Level 2 correction matrix."""
        return self.decomposition.level2


class PatternMatcher:
    """1-D systolic array of matcher units (one per pattern).

    The array sustains one activation row per cycle; its pipeline-fill
    latency is hidden by overlapping with L1/L2 processing, so the cycle
    cost of a tile is its row count.
    """

    def __init__(self, config: ArchConfig) -> None:
        self.config = config

    def match_tile(
        self,
        tile: np.ndarray,
        patterns: PatternSet,
        *,
        decomposition: TileDecomposition | None = None,
    ) -> MatcherResult:
        """Match every row of a binary tile against the pattern set.

        When the caller already holds the tile's decomposition (the
        simulator decomposes the full layer once for its metrics), passing
        it via ``decomposition`` skips the redundant re-match; the cycle
        and comparison accounting is unchanged because the systolic array
        still streams every row past every matcher unit.
        """
        if decomposition is None:
            decomposition = decompose_tile(tile, patterns)
        rows = tile.shape[0]
        comparisons = rows * patterns.num_patterns
        return MatcherResult(
            decomposition=decomposition, cycles=rows, comparisons=comparisons
        )


@dataclass
class CompressorResult:
    """Output of the compressor for one Level 2 tile."""

    rows: list[CompressedRow]
    cycles: int
    filtered_rows: int

    @property
    def total_nonzeros(self) -> int:
        """Total corrections across all surviving rows."""
        return sum(row.num_nonzeros for row in self.rows)


class Compressor:
    """Filter all-zero Level 2 rows and extract column indices."""

    def __init__(self, config: ArchConfig) -> None:
        self.config = config

    def compress(
        self, level2: np.ndarray, *, needs_psum: bool = True
    ) -> CompressorResult:
        """Compress a ``(M, k)`` Level 2 matrix into sparse rows."""
        level2 = np.asarray(level2)
        num_rows = level2.shape[0]
        # One pass over the whole tile: np.nonzero walks the matrix in
        # row-major order, so slicing the flat index arrays by per-row
        # counts yields exactly the per-row ``flatnonzero`` results.
        row_idx, col_idx = np.nonzero(level2)
        counts = np.bincount(row_idx, minlength=num_rows)
        offsets = np.concatenate([[0], np.cumsum(counts)])
        columns = col_idx.tolist()
        values = level2[row_idx, col_idx].astype(int).tolist()

        rows: list[CompressedRow] = []
        filtered = 0
        for row_id in range(num_rows):
            start, stop = offsets[row_id], offsets[row_id + 1]
            if start == stop:
                filtered += 1
                continue
            rows.append(
                CompressedRow(
                    row_id=row_id,
                    columns=tuple(columns[start:stop]),
                    values=tuple(values[start:stop]),
                    needs_psum=needs_psum,
                )
            )
        # The compressor scans one matcher output row per cycle.
        return CompressorResult(rows=rows, cycles=num_rows, filtered_rows=filtered)

    def compress_counts(
        self, level2: np.ndarray, *, needs_psum: bool = True
    ) -> CompressedCounts:
        """Counter-level :meth:`compress`: per-row nonzero counts only.

        The simulator's cycle model never inspects column indices or
        values, so this fast path skips the per-row object construction
        entirely while agreeing with :meth:`compress` on every quantity
        both report (row ids, nonzero counts, cycles, filtered rows).
        """
        level2 = np.asarray(level2)
        num_rows = level2.shape[0]
        nonzeros = np.count_nonzero(level2, axis=1)
        kept = np.flatnonzero(nonzeros)
        return CompressedCounts(
            row_ids=kept,
            row_nonzeros=nonzeros[kept],
            needs_psum=needs_psum,
            cycles=num_rows,
            filtered_rows=num_rows - int(kept.size),
        )


@dataclass
class PackerResult:
    """Output of the packer for one tile."""

    packs: list[Pack]
    cycles: int
    evictions: int

    @property
    def average_utilization(self) -> float:
        """Mean pack occupancy (1.0 = every unit slot used)."""
        if not self.packs:
            return 0.0
        return float(np.mean([pack.utilization for pack in self.packs]))

    @property
    def total_units(self) -> int:
        """Total units across all packs."""
        return sum(pack.num_units for pack in self.packs)


class Packer:
    """Pack compressed rows into fixed-size packs with conflict avoidance.

    The packer keeps ``packer_windows`` open packs.  An incoming row goes
    to a window that (a) has enough free units and (b) whose existing
    partial-sum banks do not conflict with the row's bank.  When no window
    qualifies, the most-filled window is evicted to the pack buffer.
    """

    def __init__(self, config: ArchConfig) -> None:
        self.config = config
        self.num_banks = config.num_channels

    def pack_rows(self, rows: list[CompressedRow]) -> PackerResult:
        """Pack the compressed rows of one tile."""
        capacity = self.config.pack_size
        num_windows = self.config.packer_windows
        windows: list[Pack] = [Pack(capacity) for _ in range(num_windows)]
        # Window occupancy and partial-sum banks are mirrored in plain
        # lists so the placement scan does not re-derive them from the
        # unit lists on every probe.
        used = [0] * num_windows
        banks: list[set[int]] = [set() for _ in range(num_windows)]
        finished: list[Pack] = []
        evictions = 0
        cycles = 0

        for row in rows:
            cycles += 1
            all_units = row.units()
            row_bank = row.row_id % self.num_banks
            # With the calibrated pattern count a row never exceeds a pack
            # (Section 4.2.2); tiny pattern sets used in sweeps can violate
            # that, in which case the row is split across several packs.
            chunks = [
                all_units[i : i + capacity] for i in range(0, len(all_units), capacity)
            ]
            for units in chunks:
                num_units = len(units)
                # The partial-sum unit is always the last of the row, so
                # only the final chunk can claim a psum bank.
                has_psum = units[-1].label == LABEL_PSUM
                target = -1
                for i in range(num_windows):
                    if capacity - used[i] < num_units:
                        continue
                    if row.needs_psum and row_bank in banks[i]:
                        continue
                    target = i
                    break
                if target < 0:
                    # Evict the most-filled window and reuse it.
                    victim = max(range(num_windows), key=used.__getitem__)
                    if used[victim]:
                        finished.append(windows[victim])
                        evictions += 1
                    windows[victim] = Pack(capacity)
                    used[victim] = 0
                    banks[victim] = set()
                    target = victim
                windows[target].add_row(units)
                used[target] += num_units
                if has_psum:
                    banks[target].add(units[-1].row_id % self.num_banks)

        for window in windows:
            if window.num_units:
                finished.append(window)
        return PackerResult(packs=finished, cycles=cycles, evictions=evictions)

    def pack_counts(self, compressed: CompressedCounts) -> PackCounts:
        """Counter-level :meth:`pack_rows`: pack/unit totals only.

        Runs the identical window-placement and eviction algorithm on
        plain integers, so the pack count, unit totals, cycle count and
        eviction count agree exactly with packing the materialised rows
        (property-tested against :meth:`pack_rows`), without building a
        single :class:`PackUnit`.
        """
        capacity = self.config.pack_size
        num_windows = self.config.packer_windows
        num_banks = self.num_banks
        needs_psum = compressed.needs_psum
        used = [0] * num_windows
        banks: list[set[int]] = [set() for _ in range(num_windows)]
        window_range = range(num_windows)
        finished = 0
        evictions = 0
        cycles = 0

        for row_id, nnz in zip(
            compressed.row_ids.tolist(), compressed.row_nonzeros.tolist()
        ):
            cycles += 1
            total_units = nnz + 1 if needs_psum else nnz
            row_bank = row_id % num_banks
            if total_units <= capacity:  # the common, unsplit case
                full_chunks = 0
                last_chunk = total_units
            else:
                full_chunks, last_chunk = divmod(total_units, capacity)
                if last_chunk == 0:
                    full_chunks -= 1
                    last_chunk = capacity
            for chunk in range(full_chunks + 1):
                num_units = capacity if chunk < full_chunks else last_chunk
                has_psum = needs_psum and chunk == full_chunks
                target = -1
                for i in window_range:
                    if capacity - used[i] < num_units:
                        continue
                    if needs_psum and row_bank in banks[i]:
                        continue
                    target = i
                    break
                if target < 0:
                    victim = max(window_range, key=used.__getitem__)
                    if used[victim]:
                        finished += 1
                        evictions += 1
                    used[victim] = 0
                    banks[victim] = set()
                    target = victim
                used[target] += num_units
                if has_psum:
                    banks[target].add(row_bank)

        finished += sum(1 for occupancy in used if occupancy)
        kept_rows = int(compressed.row_ids.size)
        return PackCounts(
            num_packs=finished,
            weight_units=compressed.total_nonzeros,
            psum_units=kept_rows if needs_psum else 0,
            cycles=cycles,
            evictions=evictions,
        )


@dataclass(frozen=True)
class CompressedCounts:
    """Counter-level view of one compressed Level 2 tile.

    Carries exactly the quantities the cycle model consumes — per-row
    nonzero counts and row ids of the surviving rows — without
    materialising :class:`CompressedRow` / :class:`PackUnit` objects.
    Produced by :meth:`Compressor.compress_counts` and consumed by
    :meth:`Packer.pack_counts`; equivalent (and property-tested against)
    the object-level :meth:`Compressor.compress` output.
    """

    row_ids: np.ndarray
    row_nonzeros: np.ndarray
    needs_psum: bool
    cycles: int
    filtered_rows: int

    @property
    def total_nonzeros(self) -> int:
        """Total corrections across all surviving rows."""
        return int(self.row_nonzeros.sum())


@dataclass(frozen=True)
class PackCounts:
    """Aggregate packing outcome of one tile (no pack objects).

    The L2 processor's cycle model only depends on the number of packs
    and the unit totals, so this is all :meth:`Packer.pack_rows` output
    the simulator ever consumes — computed by :meth:`Packer.pack_counts`
    with the exact same window/eviction algorithm.
    """

    num_packs: int
    weight_units: int
    psum_units: int
    cycles: int
    evictions: int

    @property
    def total_units(self) -> int:
        """Weight plus partial-sum units across all packs."""
        return self.weight_units + self.psum_units

    def merge(self, other: "PackCounts") -> "PackCounts":
        """Combine the counts of two independent tiles."""
        return PackCounts(
            num_packs=self.num_packs + other.num_packs,
            weight_units=self.weight_units + other.weight_units,
            psum_units=self.psum_units + other.psum_units,
            cycles=self.cycles + other.cycles,
            evictions=self.evictions + other.evictions,
        )


#: Identity element of :meth:`PackCounts.merge`.
EMPTY_PACK_COUNTS = PackCounts(
    num_packs=0, weight_units=0, psum_units=0, cycles=0, evictions=0
)


# --------------------------------------------------------------------- #
# Batched packing: many independent tile machines in one lockstep pass
# --------------------------------------------------------------------- #
def _pack_job_key(packer: Packer, compressed: CompressedCounts) -> tuple:
    """Dedup key: two jobs with equal keys produce equal :class:`PackCounts`."""
    config = packer.config
    return (
        config.pack_size,
        config.packer_windows,
        packer.num_banks,
        bool(compressed.needs_psum),
        compressed.row_ids.dtype.str,
        compressed.row_ids.tobytes(),
        compressed.row_nonzeros.dtype.str,
        compressed.row_nonzeros.tobytes(),
    )


def _pack_counts_lockstep(
    batch: list[CompressedCounts], capacity: int, num_windows: int, num_banks: int
) -> list[PackCounts]:
    """Run many independent packer state machines in NumPy lockstep.

    Every tile's window-placement machine is independent, so a batch of
    them advances one compressed-row *chunk* per step on ``(B, W)`` state
    arrays — occupancy integers and per-window psum-bank bitmasks — with
    ``np.argmax`` reproducing the scalar first-fit scan and the
    first-max eviction tie-break exactly.  Jobs are sorted by descending
    chunk count so each step only touches the still-active prefix; total
    work is proportional to the number of chunks, not ``B x max_steps``.
    """
    B = len(batch)
    row_counts = np.array([c.row_ids.size for c in batch], dtype=np.int64)
    needs = np.array([bool(c.needs_psum) for c in batch])
    if row_counts.sum() == 0:
        return [
            PackCounts(num_packs=0, weight_units=0, psum_units=0, cycles=0, evictions=0)
            for _ in batch
        ]
    row_job = np.repeat(np.arange(B), row_counts)
    row_ids = np.concatenate(
        [np.asarray(c.row_ids, dtype=np.int64) for c in batch if c.row_ids.size]
    )
    nnz = np.concatenate(
        [np.asarray(c.row_nonzeros, dtype=np.int64) for c in batch if c.row_ids.size]
    )
    row_needs = needs[row_job]

    # Chunk expansion (rows wider than a pack split across several packs,
    # exactly as in the scalar path): every row yields at least one chunk;
    # all but the last carry ``capacity`` units.
    total_units = nnz + row_needs
    n_chunks = np.maximum((total_units + capacity - 1) // capacity, 1)
    chunk_job = np.repeat(row_job, n_chunks)
    num_chunks = int(n_chunks.sum())
    row_start = np.zeros(n_chunks.size, dtype=np.int64)
    np.cumsum(n_chunks[:-1], out=row_start[1:])
    pos_in_row = np.arange(num_chunks) - np.repeat(row_start, n_chunks)
    is_last = pos_in_row == np.repeat(n_chunks - 1, n_chunks)
    last_size = total_units - (n_chunks - 1) * capacity
    units = np.where(is_last, np.repeat(last_size, n_chunks), capacity)
    bank = np.repeat(row_ids % num_banks, n_chunks)
    has_psum = is_last & np.repeat(row_needs, n_chunks)

    # Sort jobs by descending chunk count so each lockstep step operates
    # on a shrinking active prefix.
    steps = np.bincount(chunk_job, minlength=B)
    order = np.argsort(-steps, kind="stable")
    rank = np.empty(B, dtype=np.int64)
    rank[order] = np.arange(B)
    steps_desc = steps[order]
    max_steps = int(steps_desc[0])

    # Dense (B, S) chunk schedules in sorted-job order.
    job_start = np.zeros(B, dtype=np.int64)
    np.cumsum(steps[:-1], out=job_start[1:])
    sorted_job = rank[chunk_job]
    slot = np.arange(num_chunks) - job_start[chunk_job]
    unit_mat = np.zeros((B, max_steps), dtype=np.int64)
    unit_mat[sorted_job, slot] = units
    bit_mat = np.zeros((B, max_steps), dtype=np.uint64)
    bit_mat[sorted_job, slot] = np.uint64(1) << bank.astype(np.uint64)
    psum_mat = np.zeros((B, max_steps), dtype=bool)
    psum_mat[sorted_job, slot] = has_psum

    used = np.zeros((B, num_windows), dtype=np.int64)
    bankmask = np.zeros((B, num_windows), dtype=np.uint64)
    finished = np.zeros(B, dtype=np.int64)
    evictions = np.zeros(B, dtype=np.int64)
    needs_desc = needs[order][:, None]
    zero = np.uint64(0)
    indices = np.arange(B)
    for s in range(max_steps):
        n = int(np.searchsorted(-steps_desc, -s, side="left"))
        u = unit_mat[:n, s]
        bit = bit_mat[:n, s]
        used_n = used[:n]
        ok = ((capacity - used_n) >= u[:, None]) & ~(
            needs_desc[:n] & ((bankmask[:n] & bit[:, None]) != zero)
        )
        target = np.argmax(ok, axis=1)
        misfit = ~ok.any(axis=1)
        if misfit.any():
            idx = np.flatnonzero(misfit)
            victim = np.argmax(used_n[idx], axis=1)
            occupied = used_n[idx, victim] > 0
            finished[idx] += occupied
            evictions[idx] += occupied
            used[idx, victim] = 0
            bankmask[idx, victim] = zero
            target[idx] = victim
        used[indices[:n], target] += u
        claim = np.flatnonzero(psum_mat[:n, s])
        bankmask[claim, target[claim]] |= bit[claim]
    finished += (used > 0).sum(axis=1)

    weight_units = np.bincount(row_job, weights=nnz, minlength=B).astype(np.int64)
    num_packs = finished[rank]
    num_evictions = evictions[rank]
    return [
        PackCounts(
            num_packs=int(num_packs[j]),
            weight_units=int(weight_units[j]),
            psum_units=int(row_counts[j]) if needs[j] else 0,
            cycles=int(row_counts[j]),
            evictions=int(num_evictions[j]),
        )
        for j in range(B)
    ]


def pack_counts_batch(
    jobs: "list[tuple[Packer, CompressedCounts]]",
) -> list[PackCounts]:
    """Batched :meth:`Packer.pack_counts` over many independent tiles.

    Parameters
    ----------
    jobs:
        ``(packer, compressed)`` pairs — one per tile, possibly from
        different :class:`Packer` configurations (a cross-point batch).

    Returns
    -------
    list of PackCounts
        One result per job, in input order, each bit-identical to
        ``packer.pack_counts(compressed)`` (property-tested).

    Notes
    -----
    Identical jobs (same machine parameters and compressed counts — e.g.
    the same workload simulated under several buffer scalings) are packed
    once and the result shared.  Distinct jobs are grouped by machine
    parameters and advanced in NumPy lockstep
    (:func:`_pack_counts_lockstep`); configurations whose bank count
    exceeds a 64-bit bitmask fall back to the scalar machine.
    """
    results: list[PackCounts | None] = [None] * len(jobs)
    canonical: dict[tuple, int] = {}
    duplicates: list[tuple[int, int]] = []
    groups: dict[tuple[int, int, int], list[int]] = {}
    for j, (packer, compressed) in enumerate(jobs):
        key = _pack_job_key(packer, compressed)
        first = canonical.setdefault(key, j)
        if first != j:
            duplicates.append((j, first))
            continue
        config = packer.config
        params = (config.pack_size, config.packer_windows, packer.num_banks)
        groups.setdefault(params, []).append(j)

    for (capacity, num_windows, num_banks), members in groups.items():
        if num_banks > 64 or num_windows < 1 or capacity < 1:
            for j in members:
                packer, compressed = jobs[j]
                results[j] = packer.pack_counts(compressed)
            continue
        batch = [jobs[j][1] for j in members]
        for j, counts in zip(members, _pack_counts_lockstep(
            batch, capacity, num_windows, num_banks
        )):
            results[j] = counts
    for j, first in duplicates:
        results[j] = results[first]
    return results  # type: ignore[return-value]


@dataclass
class PreprocessorResult:
    """Combined result of matching, compressing and packing one tile."""

    matcher: MatcherResult
    compressor: CompressorResult
    packer: PackerResult

    @property
    def cycles(self) -> int:
        """Preprocessor cycles for the tile (stages are pipelined)."""
        return max(self.matcher.cycles, self.compressor.cycles, self.packer.cycles)

    @property
    def packs(self) -> list[Pack]:
        """The Level 2 packs ready for the L2 processor."""
        return self.packer.packs


@dataclass(frozen=True)
class PreprocessorCounts:
    """Counter-level result of preprocessing one tile.

    The simulator's fast path (:meth:`Preprocessor.process_tile_counts`)
    carries only the aggregates the cycle and energy models consume.
    """

    cycles: int
    comparisons: int
    total_nonzeros: int
    filtered_rows: int
    packs: PackCounts


class Preprocessor:
    """The full Phi Preprocessor pipeline for one activation tile."""

    def __init__(self, config: ArchConfig) -> None:
        self.config = config
        self.matcher = PatternMatcher(config)
        self.compressor = Compressor(config)
        self.packer = Packer(config)

    def process_tile(
        self,
        tile: np.ndarray,
        patterns: PatternSet,
        *,
        needs_psum: bool = True,
        decomposition: TileDecomposition | None = None,
    ) -> PreprocessorResult:
        """Run matcher, compressor and packer on one binary tile.

        ``decomposition`` optionally supplies the tile's already-computed
        Phi decomposition so the matcher does not redo it.
        """
        matched = self.matcher.match_tile(tile, patterns, decomposition=decomposition)
        compressed = self.compressor.compress(matched.level2, needs_psum=needs_psum)
        packed = self.packer.pack_rows(compressed.rows)
        return PreprocessorResult(
            matcher=matched, compressor=compressed, packer=packed
        )

    def process_tile_counts(
        self,
        tile: np.ndarray,
        patterns: PatternSet,
        *,
        needs_psum: bool = True,
        decomposition: TileDecomposition | None = None,
    ) -> PreprocessorCounts:
        """Counter-level :meth:`process_tile` (the simulator's fast path).

        Produces exactly the aggregates :meth:`process_tile` would report
        — pipelined cycles, matcher comparisons, Level 2 nonzeros and the
        :class:`PackCounts` of the packed tile — without materialising
        compressed rows, pack units or pack objects.
        """
        matched = self.matcher.match_tile(tile, patterns, decomposition=decomposition)
        compressed = self.compressor.compress_counts(
            matched.level2, needs_psum=needs_psum
        )
        packed = self.packer.pack_counts(compressed)
        return PreprocessorCounts(
            cycles=max(matched.cycles, compressed.cycles, packed.cycles),
            comparisons=matched.comparisons,
            total_nonzeros=compressed.total_nonzeros,
            filtered_rows=compressed.filtered_rows,
            packs=packed,
        )
