"""On-chip buffer models with access accounting.

The buffers are behavioural: they track capacity, total read/write bytes
and overflow events (requests larger than the capacity imply re-fetches
from DRAM).  The simulator uses these counters to derive buffer energy
and the extra DRAM traffic that undersized buffers cause — the mechanism
behind the Fig. 7d buffer-size sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .config import BufferSizes


@dataclass
class Buffer:
    """A single on-chip SRAM buffer.

    Attributes
    ----------
    name:
        Buffer identifier ("weight", "pwp", ...).
    capacity_bytes:
        Storage capacity.
    """

    name: str
    capacity_bytes: int
    read_bytes: float = 0.0
    write_bytes: float = 0.0
    overflow_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_bytes < 1:
            raise ValueError("capacity_bytes must be >= 1")

    def read(self, num_bytes: float) -> None:
        """Record a read of ``num_bytes``."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        self.read_bytes += num_bytes

    def write(self, num_bytes: float) -> None:
        """Record a write of ``num_bytes``."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        self.write_bytes += num_bytes

    def fill(self, num_bytes: float) -> float:
        """Model loading ``num_bytes`` of working-set data into the buffer.

        Returns the number of bytes that do *not* fit; the caller charges
        those to DRAM again on the next reuse (capacity-miss traffic).
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        self.write(min(num_bytes, self.capacity_bytes))
        overflow = max(0.0, num_bytes - self.capacity_bytes)
        self.overflow_bytes += overflow
        return overflow

    @property
    def total_access_bytes(self) -> float:
        """Total bytes moved in and out of the buffer."""
        return self.read_bytes + self.write_bytes

    def reset(self) -> None:
        """Clear all counters."""
        self.read_bytes = 0.0
        self.write_bytes = 0.0
        self.overflow_bytes = 0.0


@dataclass
class BufferSet:
    """The full set of Phi on-chip buffers (Table 1)."""

    sizes: BufferSizes = field(default_factory=BufferSizes)

    def __post_init__(self) -> None:
        self.pack = Buffer("pack", self.sizes.pack)
        self.weight = Buffer("weight", self.sizes.weight)
        self.pwp = Buffer("pwp", self.sizes.pwp)
        self.pattern_index = Buffer("pattern_index", self.sizes.pattern_index)
        self.partial_sum = Buffer("partial_sum", self.sizes.partial_sum)

    def all_buffers(self) -> list[Buffer]:
        """Every buffer in the set."""
        return [self.pack, self.weight, self.pwp, self.pattern_index, self.partial_sum]

    @property
    def total_capacity_bytes(self) -> int:
        """Combined capacity of all buffers."""
        return self.sizes.total

    @property
    def total_access_bytes(self) -> float:
        """Combined read+write traffic of all buffers."""
        return sum(buffer.total_access_bytes for buffer in self.all_buffers())

    @property
    def total_overflow_bytes(self) -> float:
        """Bytes that spilled because a working set exceeded its buffer."""
        return sum(buffer.overflow_bytes for buffer in self.all_buffers())

    def reset(self) -> None:
        """Clear counters of every buffer."""
        for buffer in self.all_buffers():
            buffer.reset()

    def access_summary(self) -> dict[str, float]:
        """Per-buffer total access bytes (for reports)."""
        return {buffer.name: buffer.total_access_bytes for buffer in self.all_buffers()}
