"""L2 Processor: packed element-sparsity processing (Section 4.3).

The L2 processor consumes the packs produced by the Preprocessor.  Every
cycle it reads one pack, dispatches its up-to-``pack_size`` units (weight
rows or partial sums, negated when the value is -1) into the
reconfigurable adder tree, and writes the per-row partial sums back
through a crossbar.  Because the packer has already removed bank
conflicts and balanced occupancy, the cycle count is simply the number of
packs, plus a small drain term.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .config import ArchConfig
from .preprocessor import Pack, PackCounts


@dataclass(frozen=True)
class ReconfigurableAdderTree:
    """Cycle/behaviour model of the reconfigurable adder tree (Fig. 6).

    The tree has ``num_inputs`` channels of ``simd_width``-wide vector
    adders and can be segmented so several output rows are reduced in the
    same cycle without cross-row interference.
    """

    num_inputs: int
    simd_width: int

    def segments_for(self, units_per_row: list[int]) -> int:
        """Number of tree passes needed for the given per-row unit counts."""
        if any(count < 1 for count in units_per_row):
            raise ValueError("every row must contribute at least one unit")
        total_units = sum(units_per_row)
        if total_units <= self.num_inputs:
            return 1
        # Rows never straddle packs, so multi-pass only happens when the
        # caller aggregates several packs; each pass fills the inputs.
        return int(-(-total_units // self.num_inputs))

    def additions_for(self, units_per_row: list[int]) -> int:
        """Scalar additions performed (SIMD lanes x unit reductions)."""
        return sum(max(count - 1, 0) + 1 for count in units_per_row) * self.simd_width


@dataclass(frozen=True)
class L2Result:
    """Cycle and operation accounting of the L2 processor for one tile."""

    cycles: int
    packs_processed: int
    weight_accumulations: int
    psum_accumulations: int
    adder_tree_additions: int
    weight_bytes_read: float
    psum_bytes_accessed: float

    @property
    def total_accumulations(self) -> int:
        """Weight plus partial-sum accumulations."""
        return self.weight_accumulations + self.psum_accumulations


class L2Processor:
    """Cycle model of the Level 2 (element sparsity) processor."""

    #: Pipeline depth: pack read, psum read, dispatch, add, write back.
    PIPELINE_DEPTH = 5

    def __init__(self, config: ArchConfig) -> None:
        self.config = config
        self.adder_tree = ReconfigurableAdderTree(
            num_inputs=config.pack_size, simd_width=config.simd_width
        )

    def process_packs(
        self, packs: list[Pack], *, output_width: int | None = None
    ) -> L2Result:
        """Process all packs of one output tile."""
        # ``is None`` (not ``or``): an explicit 0-wide tile must not fall
        # back to the config default.
        n = self.config.tile_n if output_width is None else output_width
        weight_acc = 0
        psum_acc = 0
        total_units = 0
        for pack in packs:
            weight_acc += pack.num_weight_units
            psum_acc += pack.num_psum_units
            total_units += pack.num_units
        # Per pack, ``additions_for`` over the per-row unit counts reduces
        # to the pack's unit total times the SIMD width (every row count c
        # contributes max(c - 1, 0) + 1 == c lanes-worth of additions), so
        # the per-unit scan collapses to the counters Pack maintains.
        additions = total_units * self.adder_tree.simd_width

        cycles = len(packs)
        if packs:
            cycles += self.PIPELINE_DEPTH  # drain the pipeline once per tile
        weight_bytes = weight_acc * n * self.config.weight_bytes
        psum_bytes = (psum_acc + len(packs)) * n * self.config.psum_bytes
        return L2Result(
            cycles=cycles,
            packs_processed=len(packs),
            weight_accumulations=weight_acc,
            psum_accumulations=psum_acc,
            adder_tree_additions=additions,
            weight_bytes_read=float(weight_bytes),
            psum_bytes_accessed=float(psum_bytes),
        )

    def pack_cycles_for(self, counts_list: Sequence[PackCounts]) -> np.ndarray:
        """Per-tile L2 cycle counts for a whole layer in one pass.

        Vectorized pack accounting: element ``i`` equals
        ``process_pack_counts(counts_list[i]).cycles`` exactly, but the
        whole layer is costed in one NumPy expression instead of one
        :class:`L2Result` per tile — the batched pipeline's compute
        stage only needs the cycle vector on its critical path.
        """
        packs = np.fromiter(
            (counts.num_packs for counts in counts_list),
            dtype=np.int64,
            count=len(counts_list),
        )
        return packs + (packs > 0) * self.PIPELINE_DEPTH

    def process_pack_counts(
        self, counts: PackCounts, *, output_width: int | None = None
    ) -> L2Result:
        """Counter-level :meth:`process_packs` over a tile's pack counts.

        The cycle model only depends on pack and unit totals, so feeding
        it the :class:`~repro.hw.preprocessor.PackCounts` of a tile yields
        the exact :class:`L2Result` that processing the materialised packs
        would.
        """
        n = self.config.tile_n if output_width is None else output_width
        cycles = counts.num_packs
        if counts.num_packs:
            cycles += self.PIPELINE_DEPTH
        weight_bytes = counts.weight_units * n * self.config.weight_bytes
        psum_bytes = (counts.psum_units + counts.num_packs) * n * self.config.psum_bytes
        return L2Result(
            cycles=cycles,
            packs_processed=counts.num_packs,
            weight_accumulations=counts.weight_units,
            psum_accumulations=counts.psum_units,
            adder_tree_additions=counts.total_units * self.adder_tree.simd_width,
            weight_bytes_read=float(weight_bytes),
            psum_bytes_accessed=float(psum_bytes),
        )
