"""Unified accelerator-model pipeline: one stage graph, one result schema.

Every accelerator model in this repository — the cycle-level Phi
simulator and the five analytical baselines — expresses a layer
simulation as a :class:`Pipeline` of :class:`Stage` objects (tiling →
preprocess → compute → DRAM → energy for Phi; compute → DRAM for the
baselines, with run-level energy) and reports through one canonical
result schema:

* :class:`StageRecord` — uniform per-stage accounting (cycles, DRAM
  bytes, energy, free-form detail counters),
* :class:`LayerResult` — the per-layer record, a superset of what the
  pre-refactor ``LayerSimulation`` and ``BaselineLayerResult`` carried,
* :class:`RunResult` — the per-workload record with all shared derived
  metrics (total cycles, runtime, GOPS, Joules, GOPS/J, GOPS/mm²,
  DRAM bytes) implemented once in :class:`DerivedMetricsMixin`,
* :class:`AcceleratorModel` — the interface every accelerator plugs
  into, with a batched :meth:`AcceleratorModel.simulate_many` entry
  point for running one configuration across many workloads (the sweep
  engine's counterpart is :func:`repro.runner.engine.simulate_many`,
  which batches whole *point* grids — one model per configuration —
  into workload-grouped dispatches).

The sweep engine (:mod:`repro.runner.engine`) flattens a
:class:`RunResult` into the cache-schema-v3 record that the experiment
harnesses and the report pipeline consume, so nothing downstream ever
needs to know which accelerator produced a number.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Protocol, Sequence, runtime_checkable

from ..core.metrics import (
    OperationCounts,
    SparsityBreakdown,
    aggregate_breakdowns,
    aggregate_operation_counts,
)
from .config import ArchConfig
from .energy import EnergyBreakdown

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..workloads.workload import LayerWorkload, ModelWorkload


# --------------------------------------------------------------------- #
# Stage protocol and composition
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class StageRecord:
    """Uniform accounting record emitted by one pipeline stage.

    Attributes
    ----------
    name:
        Stage name (``"tiling"``, ``"preprocess"``, ``"compute"``,
        ``"dram"``, ``"energy"``).
    cycles:
        Cycles this stage contributes to the layer.  Overlapped stages
        (e.g. the Phi preprocessor, which hides behind compute) report
        their busy cycles here but do not add to the layer latency; the
        layer's critical path is owned by :class:`LayerResult`.
    dram_bytes:
        Off-chip traffic attributed to this stage.
    energy_joules:
        Energy attributed to this stage (0 for models that account
        energy at run level).
    detail:
        Free-form counters for inspection (pattern-match comparisons,
        pack counts, per-component traffic, ...).
    """

    name: str
    cycles: float = 0.0
    dram_bytes: float = 0.0
    energy_joules: float = 0.0
    detail: dict[str, Any] = field(default_factory=dict)


@dataclass
class LayerContext:
    """Mutable blackboard threaded through the stages of one layer.

    Attributes
    ----------
    layer:
        The layer workload being simulated.
    calibration:
        Optional per-layer calibration (Phi pattern sets); analytical
        baselines leave it ``None``.
    scratch:
        Inter-stage scratch space (decompositions, packs, counters).
        Keys are owned by the stage that writes them.
    result:
        The :class:`LayerResult` under construction; the stage that
        completes the accounting (conventionally the DRAM stage) must
        assign it, later stages may enrich it.
    """

    layer: "LayerWorkload"
    calibration: Any = None
    scratch: dict[str, Any] = field(default_factory=dict)
    result: "LayerResult | None" = None


@runtime_checkable
class Stage(Protocol):
    """One step of an accelerator's layer pipeline.

    A stage reads and writes the shared :class:`LayerContext` and
    returns a :class:`StageRecord` describing what it accounted.  Stages
    are composed by :class:`Pipeline` and must not depend on being run
    more than once per context.
    """

    name: str

    def run(self, ctx: LayerContext) -> StageRecord:
        """Execute the stage against ``ctx`` and return its record."""
        ...


class Pipeline:
    """An ordered composition of :class:`Stage` objects.

    Parameters
    ----------
    stages:
        Stages executed in order for every layer.  The stage list is the
        accelerator's *stage graph*: linear here, because every modelled
        accelerator synchronises at stage boundaries; concurrency inside
        a boundary (e.g. Phi's L1 ∥ L2 processors) is modelled inside
        the owning stage.
    """

    def __init__(self, stages: Iterable[Stage]) -> None:
        self.stages: tuple[Stage, ...] = tuple(stages)
        names = [stage.name for stage in self.stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names in pipeline: {names}")

    def run_layer(self, ctx: LayerContext) -> "LayerResult":
        """Run every stage over ``ctx`` and return the finished layer result."""
        records: list[StageRecord] = []
        for stage in self.stages:
            records.append(stage.run(ctx))
        if ctx.result is None:
            raise RuntimeError(
                "pipeline finished without a stage building ctx.result; "
                f"stages: {[s.name for s in self.stages]}"
            )
        ctx.result.stages = records
        return ctx.result


# --------------------------------------------------------------------- #
# Canonical result schema
# --------------------------------------------------------------------- #
@dataclass
class LayerResult:
    """Canonical per-layer record shared by Phi and every baseline.

    The traffic component fields (activation/weight/PWP/output/psum
    bytes) sum to :attr:`dram_bytes`; models that do not distinguish a
    component leave it at 0.  Phi-only fields (per-stage cycle splits,
    operation counts, sparsity breakdown) default to empty/``None`` for
    analytical models.
    """

    layer_name: str
    m: int = 0
    k: int = 0
    n: int = 0
    compute_cycles: float = 0.0
    memory_cycles: float = 0.0
    #: Paper-defined OP count of the layer ('1' activation bits × N).
    operations: int = 0
    preprocessor_cycles: float = 0.0
    l1_cycles: float = 0.0
    l2_cycles: float = 0.0
    neuron_cycles: float = 0.0
    operation_counts: OperationCounts | None = None
    breakdown: SparsityBreakdown | None = None
    activation_bytes: float = 0.0
    activation_bytes_uncompressed: float = 0.0
    weight_bytes: float = 0.0
    pwp_bytes_prefetched: float = 0.0
    pwp_bytes_unfiltered: float = 0.0
    output_bytes: float = 0.0
    psum_spill_bytes: float = 0.0
    pattern_match_comparisons: int = 0
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    stages: list[StageRecord] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        """Layer latency: compute overlapped with (bounded by) memory."""
        return max(self.compute_cycles, self.memory_cycles)

    @property
    def dram_bytes(self) -> float:
        """Total DRAM traffic of the layer (sum of the component fields)."""
        return (
            self.activation_bytes
            + self.weight_bytes
            + self.pwp_bytes_prefetched
            + self.output_bytes
            + self.psum_spill_bytes
        )


class DerivedMetricsMixin:
    """Shared derived metrics over a ``layers`` list.

    Implemented once and used by :class:`RunResult` (and therefore by
    Phi's ``SimulationResult`` and the baselines' ``AcceleratorReport``,
    which are the same class today): the consumer-visible metric set the
    paper's Table 2 / Fig. 8 comparisons are built from.  Hosts must
    provide ``layers``, ``frequency_hz``, ``area_mm2`` and ``energy``.
    """

    layers: list[LayerResult]
    frequency_hz: float
    area_mm2: float

    @property
    def total_cycles(self) -> float:
        """End-to-end cycles (layers execute back to back)."""
        return sum(layer.total_cycles for layer in self.layers)

    @property
    def runtime_seconds(self) -> float:
        """Wall-clock runtime at the configured frequency."""
        return self.total_cycles / self.frequency_hz

    @property
    def total_operations(self) -> int:
        """Paper-defined OP count (Section 5.1).

        One OP is the scalar accumulation triggered by a '1' element of
        the bit-sparse activation, so the total is (number of 1 bits) × N
        for every layer regardless of how the accelerator executes it.
        """
        return sum(layer.operations for layer in self.layers)

    @property
    def throughput_gops(self) -> float:
        """Effective throughput in GOP/s (OPs defined as in Section 5.1)."""
        if self.runtime_seconds == 0:
            return 0.0
        return self.total_operations / self.runtime_seconds / 1e9

    @property
    def energy_joules(self) -> float:
        """Total energy in Joules."""
        return self.energy.total

    @property
    def energy_efficiency_gops_per_joule(self) -> float:
        """Energy efficiency in GOP/J."""
        if self.energy_joules == 0:
            return 0.0
        return self.total_operations / self.energy_joules / 1e9

    @property
    def area_efficiency_gops_per_mm2(self) -> float:
        """Area efficiency in GOP/s/mm²."""
        if self.area_mm2 == 0:
            return 0.0
        return self.throughput_gops / self.area_mm2

    @property
    def total_dram_bytes(self) -> float:
        """Total DRAM traffic."""
        return sum(layer.dram_bytes for layer in self.layers)


@dataclass
class RunResult(DerivedMetricsMixin):
    """Canonical per-workload result of any accelerator model.

    Energy is either accumulated per layer (Phi: every
    :class:`LayerResult` carries an :class:`EnergyBreakdown`) or
    accounted at run level (the analytical baselines set
    :attr:`run_energy`); :attr:`energy` resolves to whichever the model
    populated.
    """

    accelerator: str = "phi"
    model_name: str = ""
    dataset_name: str = ""
    frequency_hz: float = 0.0
    area_mm2: float = 0.0
    config: ArchConfig | None = None
    layers: list[LayerResult] = field(default_factory=list)
    run_energy: EnergyBreakdown | None = None

    def __post_init__(self) -> None:
        if not self.frequency_hz and self.config is not None:
            self.frequency_hz = self.config.frequency_hz

    @property
    def key(self) -> str:
        """Canonical workload identifier."""
        return f"{self.model_name}/{self.dataset_name}"

    @property
    def energy(self) -> EnergyBreakdown:
        """Total energy: run-level when set, else summed over layers."""
        if self.run_energy is not None:
            return self.run_energy
        total = EnergyBreakdown()
        for layer in self.layers:
            total = total + layer.energy
        return total

    @property
    def core_energy(self) -> float:
        """Core (compute logic) energy in Joules."""
        return self.energy.core

    @property
    def buffer_energy(self) -> float:
        """On-chip buffer energy in Joules."""
        return self.energy.buffer

    @property
    def dram_energy(self) -> float:
        """Off-chip DRAM energy in Joules."""
        return self.energy.dram

    def energy_breakdown(self) -> dict[str, float]:
        """Core / buffer / DRAM energy split (Joules)."""
        energy = self.energy
        return {
            "core": energy.core,
            "buffer": energy.buffer,
            "dram": energy.dram,
        }

    def aggregate_breakdown(self) -> SparsityBreakdown:
        """Element-weighted sparsity breakdown over all layers.

        Only layers that carry a breakdown (Phi decompositions)
        contribute; analytical baseline layers are skipped.
        """
        return aggregate_breakdowns(
            (layer.breakdown, layer.m * layer.k)
            for layer in self.layers
            if layer.breakdown is not None
        )

    def aggregate_operations(self) -> OperationCounts:
        """Summed operation counts over all layers carrying counts."""
        return aggregate_operation_counts(
            layer.operation_counts
            for layer in self.layers
            if layer.operation_counts is not None
        )


# --------------------------------------------------------------------- #
# The accelerator-model interface
# --------------------------------------------------------------------- #
class AcceleratorModel(ABC):
    """Interface every accelerator model plugs into the runner through.

    Implementations express their per-layer behaviour as a
    :class:`Pipeline` of stages and report through the canonical
    :class:`LayerResult` / :class:`RunResult` schema.  The sweep engine,
    experiment harnesses and report emitters consume *only* this
    interface — a structural test (``tests/test_pipeline.py``) enforces
    that nothing downstream reaches around it.
    """

    #: Accelerator name as it appears in records and reports.
    name: str = "accelerator"
    #: Die area in mm² (Table 2 / Table 3).
    area_mm2: float = 0.0

    @abstractmethod
    def simulate_layer(self, layer: "LayerWorkload", **kwargs: Any) -> LayerResult:
        """Simulate one spike GEMM and return its canonical layer record."""

    @abstractmethod
    def simulate(self, workload: "ModelWorkload", **kwargs: Any) -> RunResult:
        """Simulate a complete model workload into a :class:`RunResult`."""

    def simulate_many(
        self,
        workloads: Sequence["ModelWorkload"],
        *,
        calibrations: Sequence[Any] | None = None,
        decompositions: Sequence[Any] | None = None,
        **kwargs: Any,
    ) -> list[RunResult]:
        """Simulate a batch of workloads with one model instance.

        The default implementation loops :meth:`simulate`; models whose
        state amortises across workloads (shared calibrations, warmed
        caches) override it to process the batch more cheaply than
        isolated calls — :meth:`PhiSimulator.simulate_many
        <repro.hw.simulator.PhiSimulator.simulate_many>` advances every
        layer of every workload in one NumPy lockstep pass.  This is
        the *model-level* batched entry for library callers running one
        configuration across many workloads; sweep grids (one model per
        configuration) are batched by the engine-level
        :func:`repro.runner.engine.simulate_many` instead.

        Parameters
        ----------
        workloads:
            The workloads to simulate.
        calibrations, decompositions:
            Optional per-workload sequences, mirroring the batched Phi
            signature so callers can target the base API uniformly.  A
            ``None`` entry (or omitting the sequence) simulates that
            workload exactly as a bare :meth:`simulate` call would;
            non-``None`` entries are forwarded as the ``calibration`` /
            ``decompositions`` keyword arguments, so models that do not
            accept them surface the same ``TypeError`` a direct call
            would.
        """
        if calibrations is None:
            calibrations = [None] * len(workloads)
        if decompositions is None:
            decompositions = [None] * len(workloads)
        results = []
        for workload, calibration, decomposition in zip(
            workloads, calibrations, decompositions
        ):
            per_call = dict(kwargs)
            if calibration is not None:
                per_call["calibration"] = calibration
            if decomposition is not None:
                per_call["decompositions"] = decomposition
            results.append(self.simulate(workload, **per_call))
        return results
