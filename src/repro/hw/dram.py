"""Off-chip DRAM model (bandwidth and traffic accounting).

A lightweight stand-in for DRAMsim3: traffic is accumulated in bytes,
transfer latency is bandwidth-limited (``bytes / bytes_per_cycle``), and
energy is charged per byte by the energy model.  Read and write streams
are tracked separately so the memory-traffic experiments (Fig. 12) can
report activation and weight traffic independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .config import ArchConfig


@dataclass
class TrafficCounter:
    """Byte counters for one traffic category."""

    read_bytes: float = 0.0
    write_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        """Read plus write bytes."""
        return self.read_bytes + self.write_bytes


@dataclass
class DRAMModel:
    """Bandwidth-limited DRAM with per-category traffic accounting."""

    config: ArchConfig = field(default_factory=ArchConfig)

    def __post_init__(self) -> None:
        self.traffic: dict[str, TrafficCounter] = {}

    def _counter(self, category: str) -> TrafficCounter:
        if category not in self.traffic:
            self.traffic[category] = TrafficCounter()
        return self.traffic[category]

    def read(self, num_bytes: float, category: str = "other") -> None:
        """Record a DRAM read of ``num_bytes`` under ``category``."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        self._counter(category).read_bytes += num_bytes

    def write(self, num_bytes: float, category: str = "other") -> None:
        """Record a DRAM write of ``num_bytes`` under ``category``."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        self._counter(category).write_bytes += num_bytes

    @property
    def total_bytes(self) -> float:
        """Total bytes moved to or from DRAM."""
        return sum(counter.total_bytes for counter in self.traffic.values())

    def category_bytes(self, category: str) -> float:
        """Bytes moved under one traffic category."""
        counter = self.traffic.get(category)
        return counter.total_bytes if counter else 0.0

    def transfer_cycles(self, num_bytes: float | None = None) -> float:
        """Accelerator cycles needed to move ``num_bytes`` (default: all)."""
        if num_bytes is None:
            num_bytes = self.total_bytes
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return num_bytes / self.config.dram_bytes_per_cycle

    def summary(self) -> dict[str, float]:
        """Per-category byte totals."""
        return {name: counter.total_bytes for name, counter in self.traffic.items()}

    def reset(self) -> None:
        """Clear all traffic counters."""
        self.traffic.clear()
