"""The parallel sweep engine.

A *sweep point* names everything needed to reproduce one simulation:
the accelerator (the Phi simulator, one of the analytical baselines, or
the decomposition-only density analysis), the algorithm and architecture
configurations, and a :class:`WorkloadSpec` describing how to regenerate
the fixed-seed workload.  :class:`SweepEngine` fans a list of points out
over ``multiprocessing`` workers and memoises every result in an on-disk
content-addressed cache, so design-space sweeps pay for each distinct
configuration exactly once — across processes, runs and experiments.

Workloads, calibrations and activation decompositions are deterministic
functions of ``(workload spec, PhiConfig)``, so a record computed
anywhere is valid everywhere.  When the engine carries an
:class:`~repro.runner.store.ArtifactStore`, those shared artifacts are
additionally persisted on disk and each is computed once per
configuration ever: the engine's dispatch granularity is one batch per
``(workload spec, PhiConfig)`` *unit* (see :meth:`SweepEngine.run`), a
unit's first point materialises its artifacts into the store, and the
unit's remaining points — plus every later run — load them instead of
re-running workload generation, k-means or pattern matching.  Without a
store, per-process memos (``cached_workload`` / :func:`calibration_for`)
still share the state within each process.
"""

from __future__ import annotations

import contextlib
import sys
import threading
import warnings
import weakref
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Callable, Sequence

from ..baselines.registry import BASELINE_CLASSES, get_accelerator
from ..core.calibration import ModelCalibration, PhiCalibrator
from ..core.config import PhiConfig
from ..core.metrics import (
    aggregate_breakdowns,
    aggregate_operation_counts,
    decomposition_metrics,
)
from ..core.paft import ActivationAligner
from ..core.sparsity import MatrixDecomposition
from ..hw.config import ArchConfig
from ..hw.energy import PhiEnergyModel
from ..hw.pipeline import AcceleratorModel, LayerResult, RunResult
from ..hw.simulator import PhiSimulator
from ..workloads.generator import cached_workload, generate_random_workload
from ..workloads.temporal import cached_temporal_workload
from ..workloads.workload import LayerWorkload, ModelWorkload
from .cache import ResultCache, cache_key
from .store import (
    KIND_CALIBRATION,
    KIND_DECOMPOSITION,
    KIND_TRACE,
    KIND_WORKLOAD,
    ArtifactStore,
    DecompositionArtifact,
)
from .shm import SharedArtifacts, attach_and_prime

#: Bump on ANY change that affects cached records — the record layout OR
#: result-affecting simulator/calibration behaviour.  The package version
#: is also hashed into every key (see :meth:`SweepPoint.cache_payload`),
#: so releases invalidate the cache even when this stays constant.
#: v2: per-layer operation counts + pattern-match comparisons, efficiency
#: and area fields (the report pipeline consumes these).
#: v3: one canonical record for every accelerator, flattened from the
#: unified ``repro.hw.pipeline.RunResult`` schema — baselines gained
#: per-layer entries and area fields, every record embeds its ``schema``
#: version, and :func:`validate_record` checks the layout.  v2 entries
#: hash to different keys and are therefore ignored, never parsed.
CACHE_SCHEMA_VERSION = 3

#: Accelerator name for the decomposition-only density/op-count analysis
#: used by the Fig. 7a/b tile-size sweep (no cycle-level simulation).
DECOMPOSITION = "phi_decomposition"


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything needed to regenerate a workload deterministically.

    Parameters
    ----------
    model, dataset:
        Model-zoo and dataset names (``repro.workloads.generate_workload``
        arguments), or the special pair produced by :meth:`random` for the
        unstructured random matrices of Table 4.
    batch_size, num_steps, split, seed:
        Forwarded to the workload generator.
    paft_strength:
        When set, selects the post-PAFT variant: the activations are
        aligned towards the patterns calibrated on the *original* workload,
        mirroring :func:`repro.experiments.fig8.apply_paft_to_workload`.
    paft_seed:
        Seed of the PAFT alignment sampling.
    density, dims:
        Only for random workloads (see :meth:`random`): the probability of
        a 1 bit and the ``(m, k, n)`` GEMM dimensions.
    temporal:
        Unroll each GEMM per time step (layer names carry the step, see
        :mod:`repro.workloads.temporal`) instead of stacking the steps
        into one tall matrix.
    trace:
        Name of an imported activation trace (see :meth:`from_trace`):
        the workload is loaded from the artifact store's trace entry
        instead of being generated.
    """

    model: str
    dataset: str
    batch_size: int = 8
    num_steps: int = 4
    split: str = "test"
    seed: int = 0
    paft_strength: float | None = None
    paft_seed: int = 0
    density: float | None = None
    dims: tuple[int, int, int] | None = None
    temporal: bool = False
    trace: str | None = None

    def __post_init__(self) -> None:
        if self.is_random and (self.density is None or self.dims is None):
            raise ValueError(
                "random workload specs need density and dims; "
                "build them with WorkloadSpec.random()"
            )
        if self.trace is not None and self.dataset != "trace":
            raise ValueError(
                "trace specs must use dataset='trace'; "
                "build them with WorkloadSpec.from_trace()"
            )
        if self.trace is None and self.dataset == "trace":
            raise ValueError(
                "dataset='trace' needs a trace name; "
                "build the spec with WorkloadSpec.from_trace()"
            )
        if self.temporal and (self.is_random or self.is_trace):
            raise ValueError(
                "temporal unrolling applies to generated model workloads only"
            )

    @classmethod
    def random(
        cls,
        density: float,
        *,
        m: int = 512,
        k: int = 128,
        n: int = 64,
        seed: int = 0,
    ) -> "WorkloadSpec":
        """Spec for a random binary workload (Table 4 "Random" rows).

        Parameters
        ----------
        density:
            Probability of a 1 at each activation position.
        m, k, n:
            GEMM dimensions of the single random layer.
        seed:
            RNG seed of the random matrices.

        Returns
        -------
        WorkloadSpec
            A spec whose ``dataset`` is ``"random"``; workers regenerate
            the matrices from ``(density, dims, seed)`` deterministically.
        """
        return cls(
            model=f"random{int(density * 100)}",
            dataset="random",
            seed=seed,
            density=density,
            dims=(m, k, n),
        )

    @classmethod
    def from_trace(cls, name: str) -> "WorkloadSpec":
        """Spec for a workload imported with ``repro.runner trace import``.

        Parameters
        ----------
        name:
            The name the trace was registered under.

        Returns
        -------
        WorkloadSpec
            A spec whose ``dataset`` is ``"trace"``; the engine resolves
            it by loading the store's trace artifact instead of running
            a generator, so simulating it requires an artifact store.
        """
        return cls(model=str(name), dataset="trace", trace=str(name))

    @property
    def is_random(self) -> bool:
        """Whether this spec describes a random binary workload."""
        return self.dataset == "random"

    @property
    def is_trace(self) -> bool:
        """Whether this spec loads an imported trace from the store."""
        return self.trace is not None

    @property
    def key(self) -> str:
        """Canonical workload identifier."""
        return f"{self.model}/{self.dataset}"

    def to_dict(self) -> dict:
        """Serialise the spec to plain Python types (cache-key payload).

        ``temporal`` and ``trace`` are emitted only when set: specs that
        predate them serialise exactly as before, so their cache/store
        keys (and the store's v2-compat probes) stay byte-identical.
        """
        data = {
            "model": self.model,
            "dataset": self.dataset,
            "batch_size": self.batch_size,
            "num_steps": self.num_steps,
            "split": self.split,
            "seed": self.seed,
            "paft_strength": self.paft_strength,
            "paft_seed": self.paft_seed,
            "density": self.density,
            "dims": list(self.dims) if self.dims is not None else None,
        }
        if self.temporal:
            data["temporal"] = True
        if self.trace is not None:
            data["trace"] = self.trace
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadSpec":
        """Rebuild a spec from :meth:`to_dict` output (wire round-trip)."""
        data = dict(data)
        if data.get("dims") is not None:
            data["dims"] = tuple(data["dims"])
        return cls(**data)


@dataclass(frozen=True)
class SweepPoint:
    """One (accelerator, configuration, workload) grid point of a sweep."""

    workload: WorkloadSpec
    arch: ArchConfig
    phi: PhiConfig | None = None
    accelerator: str = "phi"
    buffer_scale: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        known = set(BASELINE_CLASSES) | {"phi", DECOMPOSITION}
        if self.accelerator not in known:
            raise ValueError(
                f"unknown accelerator {self.accelerator!r}; expected one of "
                f"{sorted(known)}"
            )
        if self.accelerator in ("phi", DECOMPOSITION) and self.phi is None:
            raise ValueError(f"accelerator {self.accelerator!r} needs a PhiConfig")

    def cache_payload(self) -> dict:
        """The canonical payload hashed into this point's cache key.

        The display ``label`` is deliberately excluded: it does not
        influence the simulation result.
        """
        from .. import __version__

        return {
            "schema": CACHE_SCHEMA_VERSION,
            "code_version": __version__,
            "accelerator": self.accelerator,
            "buffer_scale": self.buffer_scale,
            "workload": self.workload.to_dict(),
            "arch": self.arch.to_dict(),
            "phi": self.phi.to_dict() if self.phi is not None else None,
        }

    def cache_key(self) -> str:
        """Content hash identifying this point in the result cache."""
        return cache_key(self.cache_payload())

    def to_dict(self) -> dict:
        """Serialise the point to plain Python types (wire payload).

        Unlike :meth:`cache_payload` this keeps the ``label`` and drops
        the schema/version envelope: it exists so a remote worker can
        rebuild the *same* point with :meth:`from_dict` and verify the
        round-trip by comparing :meth:`cache_key` values — any schema or
        code-version skew between server and worker surfaces as a key
        mismatch instead of a silently different record.
        """
        return {
            "workload": self.workload.to_dict(),
            "arch": self.arch.to_dict(),
            "phi": self.phi.to_dict() if self.phi is not None else None,
            "accelerator": self.accelerator,
            "buffer_scale": self.buffer_scale,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepPoint":
        """Rebuild a point from :meth:`to_dict` output."""
        phi = data.get("phi")
        return cls(
            workload=WorkloadSpec.from_dict(data["workload"]),
            arch=ArchConfig.from_dict(data["arch"]),
            phi=PhiConfig.from_dict(phi) if phi is not None else None,
            accelerator=data.get("accelerator", "phi"),
            buffer_scale=data.get("buffer_scale", 1.0),
            label=data.get("label", ""),
        )

    def describe(self) -> str:
        """Short human-readable tag for progress output."""
        if self.label:
            return self.label
        return f"{self.accelerator}:{self.workload.key}"


# --------------------------------------------------------------------- #
# Workload / calibration resolution (memoised per process)
# --------------------------------------------------------------------- #
#: Per-process calibration memo: workload identity -> {PhiConfig ->
#: ModelCalibration}.  Keyed by ``id()`` (ModelWorkload is a value-equal
#: dataclass, hence unhashable) with a ``weakref.finalize`` hook that
#: drops the entry when the workload is collected — the workload object
#: itself is never mutated.
_CALIBRATION_MEMO: dict[int, dict] = {}


def _calibration_memo_for(workload: ModelWorkload) -> dict:
    key = id(workload)
    memo = _CALIBRATION_MEMO.get(key)
    if memo is None:
        memo = {}
        _CALIBRATION_MEMO[key] = memo
        weakref.finalize(workload, _CALIBRATION_MEMO.pop, key, None)
    return memo


def calibration_for(workload: ModelWorkload, config: PhiConfig) -> ModelCalibration:
    """Calibrate ``workload`` under ``config``, memoised per instance.

    Calibration is deterministic, so results are shared through a
    process-level memo (workload instance x frozen ``PhiConfig``); every
    sweep point and experiment that shares the workload instance then
    shares one calibration instead of recomputing it per point.  The
    workload object itself is never touched, and the memo entry dies with
    the workload.

    Parameters
    ----------
    workload:
        The workload whose binary activation matrices are calibrated.
        Treated as read-only.
    config:
        Algorithm configuration (partition size, pattern count,
        calibration sample count).

    Returns
    -------
    ModelCalibration
        Per-layer calibrated patterns, shared across callers.
    """
    memo = _calibration_memo_for(workload)
    if config not in memo:
        calibrator = PhiCalibrator(config)
        memo[config] = calibrator.calibrate_model(workload.activation_matrices())
    return memo[config]


# --------------------------------------------------------------------- #
# Shared-artifact resolution (store-aware)
# --------------------------------------------------------------------- #
#: The artifact store consulted by the spec-level resolution helpers,
#: held *per thread* so concurrent :meth:`SweepEngine.run` calls (the job
#: service dispatches from multiple threads) never swap each other's
#: store out mid-batch.  ``None`` keeps the pure in-process behaviour.
#: Serial engine runs activate their store around the batch loop; pool
#: workers set it once in their initializer.
_ACTIVE = threading.local()


def _current_store() -> ArtifactStore | None:
    """The artifact store installed for the calling thread, if any."""
    return getattr(_ACTIVE, "store", None)


@contextlib.contextmanager
def _active_store(store: ArtifactStore | None):
    """Temporarily install ``store`` as the calling thread's artifact store."""
    previous = _current_store()
    _ACTIVE.store = store
    try:
        yield
    finally:
        _ACTIVE.store = previous


def _pool_initializer(store_root: str | None) -> None:
    """Worker start-up: install the on-disk artifact store, if any."""
    _ACTIVE.store = ArtifactStore(store_root) if store_root is not None else None


#: Per-thread progress hook installed by :func:`progress_scope`.  The
#: engine is shared by every service job, so progress cannot be an
#: engine-level attribute: each dispatcher thread sees only its own
#: job's completions.
_PROGRESS = threading.local()


@contextlib.contextmanager
def progress_scope(hook: Callable[[int, int, "SweepPoint", str], None]):
    """Receive per-point completion callbacks from enclosed engine runs.

    Every :meth:`SweepEngine.run` executed by the calling thread inside
    the ``with`` block invokes ``hook(done, total, point, origin)`` once
    per settled point, where ``origin`` is ``"cache"`` (result cache
    hit), ``"run"`` (simulated by this call) or ``"inflight"`` (shared
    with a concurrent run of the same point in another thread).  The
    hook runs on the engine thread and must be cheap and exception-free.
    """
    previous = getattr(_PROGRESS, "hook", None)
    _PROGRESS.hook = hook
    try:
        yield
    finally:
        _PROGRESS.hook = previous


def _base_spec(spec: WorkloadSpec) -> WorkloadSpec:
    """The spec of the underlying base workload (PAFT fields stripped)."""
    if spec.paft_strength is None and spec.paft_seed == 0:
        return spec
    return replace(spec, paft_strength=None, paft_seed=0)


def _artifact_payload(spec: WorkloadSpec, config: PhiConfig | None) -> dict:
    """The store-key payload of an artifact derived from (spec, config)."""
    return {
        "workload": spec.to_dict(),
        "phi": config.to_dict() if config is not None else None,
    }


def _trace_workload(spec: WorkloadSpec) -> ModelWorkload:
    """Load the imported trace workload named by ``spec`` from the store.

    Traces are first-class store artifacts: there is no generator to
    fall back to, so a missing store or a missing entry is an error with
    a pointer at the ``trace import`` CLI, never a silent regeneration.
    """
    store = _current_store()
    if store is None:
        raise RuntimeError(
            f"trace workload {spec.trace!r} needs an artifact store; "
            "run with --store-dir (or pass store= to the engine)"
        )
    workload = store.get(KIND_TRACE, store.trace_key(spec.trace))
    if workload is None:
        raise RuntimeError(
            f"trace {spec.trace!r} not found in artifact store {store.root}; "
            "register it with 'python -m repro.runner trace import <npz>'"
        )
    return workload


def _stored_base_workload(spec: WorkloadSpec) -> ModelWorkload:
    """Base workload for ``spec``: store hit or generate-and-store."""
    spec = _base_spec(spec)
    if spec.is_trace:
        return _trace_workload(spec)
    store = _current_store()
    if store is None:
        return _base_workload(spec)
    key, workload = store.lookup(KIND_WORKLOAD, _artifact_payload(spec, None))
    if workload is None:
        workload = _base_workload(spec)
        store.put(KIND_WORKLOAD, key, workload)
    return workload


def _stored_calibration(
    spec: WorkloadSpec, config: PhiConfig, workload: ModelWorkload
) -> ModelCalibration:
    """Calibration of ``workload`` (described by ``spec``) under ``config``.

    ``spec`` must describe exactly the workload passed in — the full spec
    (including PAFT fields) for an aligned workload, the base spec for a
    base workload — because it is what the store key is derived from.
    """
    store = _current_store()
    if store is None:
        return calibration_for(workload, config)
    key, calibration = store.lookup(KIND_CALIBRATION, _artifact_payload(spec, config))
    if calibration is None:
        calibration = calibration_for(workload, config)
        store.put(KIND_CALIBRATION, key, calibration)
    return calibration


def _stored_decompositions(
    spec: WorkloadSpec,
    config: PhiConfig,
    workload: ModelWorkload,
    calibration: ModelCalibration,
) -> dict[str, MatrixDecomposition]:
    """Per-layer decompositions of ``workload`` under ``calibration``.

    Only the pattern assignments hit the disk; a loaded artifact is
    rebuilt against the workload and calibration (see
    :class:`~repro.runner.store.DecompositionArtifact`), which is
    bit-exact and much cheaper than re-matching.
    """
    store = _current_store()
    if store is None:
        return {
            layer.name: calibration[layer.name].decompose(layer.activations)
            for layer in workload
            if layer.name in calibration
        }
    key, found = store.lookup(KIND_DECOMPOSITION, _artifact_payload(spec, config))
    if found is None:
        decompositions = {
            layer.name: calibration[layer.name].decompose(layer.activations)
            for layer in workload
            if layer.name in calibration
        }
        store.put(KIND_DECOMPOSITION, key, decompositions)
        return decompositions
    if isinstance(found, DecompositionArtifact):
        return found.rebuild(workload, calibration)
    return found


def _seed_workload(spec: WorkloadSpec) -> None:
    """Pool task: materialise one base workload into the worker's store."""
    _stored_base_workload(spec)


def _base_workload(spec: WorkloadSpec) -> ModelWorkload:
    if spec.is_trace:
        return _trace_workload(spec)
    if spec.is_random:
        m, k, n = spec.dims
        return _random_workload(spec.density, m, k, n, spec.seed, spec.model)
    generator = cached_temporal_workload if spec.temporal else cached_workload
    return generator(
        spec.model,
        spec.dataset,
        batch_size=spec.batch_size,
        num_steps=spec.num_steps,
        seed=spec.seed,
        split=spec.split,
    )


@lru_cache(maxsize=16)
def _random_workload(
    density: float, m: int, k: int, n: int, seed: int, name: str
) -> ModelWorkload:
    """Memoised random workloads (same sharing semantics as ``cached_workload``)."""
    return generate_random_workload(
        density=density, m=m, k=k, n=n, seed=seed, name=name
    )


def aligned_workload(
    workload: ModelWorkload,
    config: PhiConfig,
    *,
    strength: float,
    seed: int = 0,
    calibration: ModelCalibration | None = None,
) -> ModelWorkload:
    """The post-PAFT variant of ``workload`` (Section 3.3 effect model).

    ``calibration`` optionally supplies the base workload's calibration
    (the alignment target); it is computed via :func:`calibration_for`
    when omitted.
    """
    if calibration is None:
        calibration = calibration_for(workload, config)
    aligner = ActivationAligner(alignment_strength=strength, seed=seed)
    aligned = ModelWorkload(
        model_name=workload.model_name, dataset_name=workload.dataset_name
    )
    for layer in workload:
        if layer.name in calibration:
            activations = aligner.align_layer(layer.activations, calibration[layer.name])
        else:
            activations = layer.activations
        aligned.add(
            LayerWorkload(
                name=layer.name, activations=activations, weights=layer.weights
            )
        )
    return aligned


def _resolve_workload(point: SweepPoint) -> ModelWorkload:
    spec = point.workload
    if spec.paft_strength is None:
        return _stored_base_workload(spec)
    if point.phi is None:
        raise ValueError("PAFT workloads need a PhiConfig for calibration")
    store = _current_store()
    if store is not None:
        # Aligned workloads are themselves store artifacts, keyed by the
        # full spec (PAFT fields included) plus the aligning PhiConfig.
        key, aligned = store.lookup(KIND_WORKLOAD, _artifact_payload(spec, point.phi))
        if aligned is not None:
            return aligned
    base_spec = _base_spec(spec)
    base = _stored_base_workload(base_spec)
    calibration = _stored_calibration(base_spec, point.phi, base)
    aligned = aligned_workload(
        base,
        point.phi,
        strength=spec.paft_strength,
        seed=spec.paft_seed,
        calibration=calibration,
    )
    if store is not None:
        store.put(KIND_WORKLOAD, key, aligned)
    return aligned


# --------------------------------------------------------------------- #
# Record construction (cache schema v3)
# --------------------------------------------------------------------- #
def _counts_dict(ops) -> dict:
    return {
        "dense_ops": ops.dense_ops,
        "bit_sparse_ops": ops.bit_sparse_ops,
        "phi_level1_ops": ops.phi_level1_ops,
        "phi_level2_ops": ops.phi_level2_ops,
    }


def _layer_entry(layer: LayerResult) -> dict:
    """Flatten one canonical :class:`LayerResult` into a record entry."""
    entry = {
        "name": layer.layer_name,
        "m": layer.m,
        "k": layer.k,
        "n": layer.n,
        "compute_cycles": layer.compute_cycles,
        "memory_cycles": layer.memory_cycles,
        "total_cycles": layer.total_cycles,
        "operations": layer.operations,
        "activation_bytes": layer.activation_bytes,
        "activation_bytes_uncompressed": layer.activation_bytes_uncompressed,
        "weight_bytes": layer.weight_bytes,
        "pwp_bytes_prefetched": layer.pwp_bytes_prefetched,
        "pwp_bytes_unfiltered": layer.pwp_bytes_unfiltered,
        "output_bytes": layer.output_bytes,
        "psum_spill_bytes": layer.psum_spill_bytes,
        "dram_bytes": layer.dram_bytes,
        "pattern_match_comparisons": layer.pattern_match_comparisons,
    }
    if layer.operation_counts is not None:
        entry["operation_counts"] = _counts_dict(layer.operation_counts)
    return entry


def summarize_run(result: RunResult) -> dict:
    """Flatten any accelerator's :class:`RunResult` into a v3 record.

    Parameters
    ----------
    result:
        The canonical run result — the Phi simulator and every baseline
        emit the same schema, so one flattener serves them all.

    Returns
    -------
    dict
        JSON-serialisable record with aggregate metrics, area/efficiency
        fields and one entry per layer — the layout cached by the sweep
        engine and consumed by the experiment harnesses and the report
        pipeline.  Phi-only aggregates (operation counts, sparsity
        breakdown) are present whenever the layers carry them.
    """
    energy = result.energy
    record = {
        "schema": CACHE_SCHEMA_VERSION,
        "accelerator": result.accelerator,
        "model": result.model_name,
        "dataset": result.dataset_name,
        "total_cycles": result.total_cycles,
        "runtime_seconds": result.runtime_seconds,
        "total_operations": result.total_operations,
        "throughput_gops": result.throughput_gops,
        "energy_joules": result.energy_joules,
        "energy_efficiency_gops_per_joule": result.energy_efficiency_gops_per_joule,
        "energy": {"core": energy.core, "buffer": energy.buffer, "dram": energy.dram},
        "total_dram_bytes": result.total_dram_bytes,
        "area_mm2": result.area_mm2,
        "area_efficiency_gops_per_mm2": result.area_efficiency_gops_per_mm2,
        "layers": [_layer_entry(layer) for layer in result.layers],
    }
    if any(layer.operation_counts is not None for layer in result.layers):
        record["operation_counts"] = _counts_dict(result.aggregate_operations())
        record["breakdown"] = result.aggregate_breakdown().as_dict()
    return record


def summarize_simulation(result: RunResult) -> dict:
    """Deprecated alias of :func:`summarize_run` (pre-v3 name)."""
    return summarize_run(result)


def model_for(point: SweepPoint) -> AcceleratorModel:
    """Construct the accelerator model that executes one sweep point.

    This is the single place the runner instantiates accelerator models;
    everything downstream drives them through the
    :class:`~repro.hw.pipeline.AcceleratorModel` interface only.
    """
    if point.accelerator == "phi":
        energy_model = PhiEnergyModel(point.arch, buffer_scale=point.buffer_scale)
        return PhiSimulator(point.arch, point.phi, energy_model=energy_model)
    return get_accelerator(point.accelerator, point.arch)


def _model_record(point: SweepPoint) -> dict:
    # _resolve_workload honours a PAFT spec for every accelerator (it
    # needs point.phi for the alignment calibration); a plain spec
    # resolves to the base workload.
    workload = _resolve_workload(point)
    model = model_for(point)
    if isinstance(model, PhiSimulator):
        # For a plain spec this matches the simulator's per-layer
        # self-calibration exactly while letting every point on the same
        # workload share one calibration.  For a PAFT spec the paper
        # fine-tunes, then re-calibrates on the tuned network: the
        # calibration is computed on the *aligned* workload (keyed by the
        # full spec), which is layer-for-layer identical to letting the
        # simulator self-calibrate — but shareable.
        calibration = _stored_calibration(point.workload, point.phi, workload)
        decompositions = None
        if _current_store() is not None:
            decompositions = _stored_decompositions(
                point.workload, point.phi, workload, calibration
            )
        result = model.simulate(
            workload, calibration=calibration, decompositions=decompositions
        )
    else:
        result = model.simulate(workload)
    return summarize_run(result)


def _decomposition_record(point: SweepPoint) -> dict:
    """Density / op-count analysis without cycle-level simulation."""
    workload = _resolve_workload(point)
    calibration = _stored_calibration(point.workload, point.phi, workload)
    decompositions = _stored_decompositions(
        point.workload, point.phi, workload, calibration
    )
    breakdown_pairs = []
    counts = []
    for layer in workload:
        layer_counts, layer_breakdown = decomposition_metrics(
            decompositions[layer.name]
        )
        breakdown_pairs.append((layer_breakdown, layer.activations.size))
        counts.append(layer_counts)
    totals = aggregate_operation_counts(counts)
    breakdown = aggregate_breakdowns(breakdown_pairs)
    return {
        "schema": CACHE_SCHEMA_VERSION,
        "operation_counts": _counts_dict(totals),
        "breakdown": breakdown.as_dict(),
    }


def simulate_point(point: SweepPoint) -> dict:
    """Execute one sweep point from scratch and return its record.

    This is the unit of work the engine dispatches to workers (and the
    seam tests monkeypatch to observe or stub simulator invocations).
    """
    if point.accelerator == DECOMPOSITION:
        record = _decomposition_record(point)
    else:
        record = _model_record(point)
    record["accelerator"] = point.accelerator
    record["model"] = point.workload.model
    record["dataset"] = point.workload.dataset
    return record


#: The unpatched :func:`simulate_point`, for detecting a stubbed seam.
_REAL_SIMULATE_POINT = simulate_point


def _finalize_record(point: SweepPoint, record: dict) -> dict:
    record["accelerator"] = point.accelerator
    record["model"] = point.workload.model
    record["dataset"] = point.workload.dataset
    return record


def _simulate_phi_batch(points: Sequence[SweepPoint]) -> list[dict]:
    """Execute a batch of phi-accelerator points as one stacked simulation.

    Resolves each point's workload, calibration and decompositions (the
    decomposition set of a ``(workload, PhiConfig)`` unit is resolved
    once and shared across the unit's points, so e.g. a buffer-scaling
    sweep rebuilds it once instead of once per point), then hands the
    whole batch to :func:`repro.hw.simulator.simulate_phi_many`, which
    packs every layer of every point in one lockstep pass.  Records are
    bit-identical to per-point :func:`simulate_point` calls.
    """
    from ..hw.simulator import simulate_phi_many

    tasks = []
    decompositions_by_unit: dict[tuple, dict | None] = {}
    for point in points:
        workload = _resolve_workload(point)
        model = model_for(point)
        calibration = _stored_calibration(point.workload, point.phi, workload)
        decompositions = None
        if _current_store() is not None:
            unit = _unit_key(point)
            if unit in decompositions_by_unit:
                decompositions = decompositions_by_unit[unit]
            else:
                decompositions = _stored_decompositions(
                    point.workload, point.phi, workload, calibration
                )
                decompositions_by_unit[unit] = decompositions
        tasks.append((model, workload, calibration, decompositions))
    results = simulate_phi_many(tasks)
    return [
        _finalize_record(point, summarize_run(result))
        for point, result in zip(points, results)
    ]


def simulate_many(points: Sequence[SweepPoint]) -> list[dict]:
    """Execute a batch of sweep points through one entry point.

    Points run in input order inside one process; the per-process memos
    (:func:`cached_workload`, :func:`calibration_for`) and the active
    artifact store share the derived state, so the first point of each
    ``(workload, PhiConfig)`` unit pays for it and every later point —
    in this batch, this process or any store-sharing worker — reuses it.
    This is the unit of work the engine submits to pool workers.

    Phi-accelerator points additionally execute as *stacked batches*:
    all of them (across every unit in the call) run through one
    :func:`repro.hw.simulator.simulate_phi_many` invocation whose
    lockstep packing spans points, layers and tiles, with records sliced
    back out in input order, bit-identical to the per-point path.  When
    the :func:`simulate_point` seam has been replaced (tests stub it to
    observe or fake invocations), every point routes through the stub
    instead — batching is an optimisation of the real path only.

    Parameters
    ----------
    points:
        The batch to execute.

    Returns
    -------
    list of dict
        One v3 record per point, in input order.
    """
    records: list[dict | None] = [None] * len(points)
    phi_batch: list[int] = []
    for i, point in enumerate(points):
        if point.accelerator == "phi" and simulate_point is _REAL_SIMULATE_POINT:
            phi_batch.append(i)
        else:
            records[i] = simulate_point(point)
    if phi_batch:
        batch_records = _simulate_phi_batch([points[i] for i in phi_batch])
        for i, record in zip(phi_batch, batch_records):
            records[i] = record
    return records  # type: ignore[return-value]


def _simulate_with_shared(
    points: Sequence[SweepPoint], manifest: list
) -> list[dict]:
    """Pool task: prime shared-memory artifacts, then run the batch.

    ``manifest`` names segments the parent exported after the unit's
    representative stored its calibration/decomposition; attaching maps
    the arrays zero-copy into this worker, so :func:`simulate_many`
    serves them from the store memo without a disk read.  Attach
    failures degrade to the plain disk path.
    """
    attach_and_prime(_current_store(), manifest)
    return simulate_many(points)


# --------------------------------------------------------------------- #
# Record validation (cache schema v3)
# --------------------------------------------------------------------- #
#: Aggregate keys every v3 accelerator record must carry.
RECORD_REQUIRED_KEYS: tuple[str, ...] = (
    "accelerator",
    "model",
    "dataset",
    "total_cycles",
    "runtime_seconds",
    "total_operations",
    "throughput_gops",
    "energy_joules",
    "energy_efficiency_gops_per_joule",
    "energy",
    "total_dram_bytes",
    "area_mm2",
    "area_efficiency_gops_per_mm2",
    "layers",
)

#: Keys every per-layer entry of a v3 record must carry.
LAYER_REQUIRED_KEYS: tuple[str, ...] = (
    "name",
    "m",
    "k",
    "n",
    "compute_cycles",
    "memory_cycles",
    "total_cycles",
    "operations",
    "dram_bytes",
)


def validate_record(record: dict) -> list[str]:
    """Check one sweep record against the v3 schema.

    Parameters
    ----------
    record:
        A record as produced by :func:`simulate_point` (or loaded from
        the on-disk cache).

    Returns
    -------
    list of str
        Human-readable problems; empty when the record is valid.
        Records with a non-current ``schema`` field are *not* validated
        here — callers should treat them as legacy entries and ignore
        them (their cache keys can never be produced again).
    """
    problems: list[str] = []
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, expected dict"]
    if record.get("schema") != CACHE_SCHEMA_VERSION:
        return [f"schema is {record.get('schema')!r}, expected {CACHE_SCHEMA_VERSION}"]
    if record.get("accelerator") == DECOMPOSITION:
        for key in ("operation_counts", "breakdown", "model", "dataset"):
            if key not in record:
                problems.append(f"missing key {key!r}")
        return problems
    for key in RECORD_REQUIRED_KEYS:
        if key not in record:
            problems.append(f"missing key {key!r}")
    energy = record.get("energy")
    if not isinstance(energy, dict) or not {"core", "buffer", "dram"} <= set(energy):
        problems.append("energy must map core/buffer/dram to Joules")
    layers = record.get("layers")
    if not isinstance(layers, list):
        problems.append("layers must be a list")
    else:
        for i, layer in enumerate(layers):
            if not isinstance(layer, dict):
                problems.append(f"layers[{i}] is not a mapping")
                continue
            for key in LAYER_REQUIRED_KEYS:
                if key not in layer:
                    problems.append(f"layers[{i}] missing key {key!r}")
    return problems


# --------------------------------------------------------------------- #
# The engine
# --------------------------------------------------------------------- #
def _unit_key(point: SweepPoint) -> tuple:
    """Dispatch-unit key: points sharing it share every derived artifact.

    A *unit* is one ``(workload spec, PhiConfig)`` pair — its points
    share the resolved workload, the calibration and the decomposition.
    The engine dispatches one representative point per unit first, so a
    unit's shared artifacts are materialised exactly once; the remaining
    points then run in parallel, loading instead of recomputing.
    """
    return (point.workload, point.phi)


def _pending_units(
    points: Sequence[SweepPoint], pending: dict[str, list[int]]
) -> list[list[str]]:
    """Group pending cache keys into dispatch units, in input order."""
    units: dict[tuple, list[str]] = {}
    for key, indices in pending.items():
        units.setdefault(_unit_key(points[indices[0]]), []).append(key)
    return list(units.values())


def _pending_spec_groups(
    points: Sequence[SweepPoint], pending: dict[str, list[int]]
) -> list[list[str]]:
    """Group pending cache keys by workload spec, in input order.

    The serial execution path dispatches one :func:`simulate_many` call
    per *workload spec* (not per unit), so points that share a workload
    but differ in PhiConfig — a pattern-count sweep, a buffer-scaling
    sweep — land in one stacked cross-point batch.
    """
    groups: dict[WorkloadSpec, list[str]] = {}
    for key, indices in pending.items():
        groups.setdefault(points[indices[0]].workload, []).append(key)
    return list(groups.values())


@dataclass
class SweepStats:
    """Accounting of one or more :meth:`SweepEngine.run` calls.

    ``inflight_hits`` counts points that were neither cached nor
    simulated by their own run: a concurrent :meth:`SweepEngine.run` in
    another thread was already computing the identical point, and this
    run waited for that record instead of duplicating the work.

    ``remote_hits`` counts points whose record came back from a fleet
    worker via the engine's ``dispatcher`` hook rather than a local
    simulation.  Remote points are *also* counted in ``executed``: from
    the caller's perspective they were executed (not cached), and the
    split between local and remote execution is deliberately invisible
    everywhere except these operator-facing stats.
    """

    requested: int = 0
    cache_hits: int = 0
    executed: int = 0
    inflight_hits: int = 0
    remote_hits: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of requested points served from the cache."""
        return self.cache_hits / self.requested if self.requested else 0.0


class _InFlight:
    """One pending point owned by some engine thread; others wait on it."""

    __slots__ = ("event", "record", "failed")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.record: dict | None = None
        self.failed = False


class SweepEngine:
    """Fan sweep points out over workers with on-disk result + artifact caches.

    Parameters
    ----------
    cache:
        Result cache, or ``None`` to disable caching entirely (every point
        recomputes — the default, so library callers keep pure behaviour
        unless they opt in).
    jobs:
        Worker processes.  ``1`` executes inline in this process (no pool,
        monkeypatch-friendly); higher values use a persistent process pool
        that stays warm across :meth:`run` calls (close it with
        :meth:`close` or by using the engine as a context manager).
    progress:
        Emit one ``[i/n]`` line per completed point to ``stderr``.
    store:
        Shared artifact store for workloads, calibrations and
        decompositions, or ``None`` (the default) to keep them
        process-local.  With a store, each artifact is computed once per
        configuration ever — workers and later runs load it from disk.
    dispatcher:
        Optional remote-execution hook (duck-typed; the service layer
        passes its fleet coordinator).  Before simulating locally,
        :meth:`run` offers its pending points to
        ``dispatcher.dispatch({cache_key: point, ...})``; whatever
        subset of keys comes back mapped to records is settled exactly
        as if simulated here (cached, counted as executed), and only
        the remainder runs locally.  A dispatcher that raises is
        treated as having returned nothing — remote execution is an
        accelerator, never a correctness dependency.
    """

    def __init__(
        self,
        *,
        cache: ResultCache | None = None,
        jobs: int = 1,
        progress: bool = False,
        store: ArtifactStore | None = None,
        dispatcher=None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.cache = cache
        self.jobs = jobs
        self.progress = progress
        self.store = store
        self.dispatcher = dispatcher
        self.stats = SweepStats()
        self._warned_cache_unwritable = False
        self._pool: ProcessPoolExecutor | None = None
        # Parent-side shared-memory segments for follower dispatch; all
        # unlinked in close().
        self._shared = SharedArtifacts()
        # run() is re-entrant across threads (the job service dispatches
        # concurrent jobs onto one engine): the lock guards stats, pool
        # lifecycle and the in-flight table; the table guarantees a point
        # being simulated by one thread is never simulated again by
        # another — later arrivals wait for the first record.
        self._lock = threading.Lock()
        self._inflight: dict[str, _InFlight] = {}

    # ------------------------------------------------------------------ #
    # Pool lifecycle
    # ------------------------------------------------------------------ #
    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._pool is None:
                store_root = str(self.store.root) if self.store is not None else None
                self._pool = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    initializer=_pool_initializer,
                    initargs=(store_root,),
                )
            return self._pool

    def warm_up(self) -> None:
        """Create the worker pool now instead of on the first parallel run.

        Long-lived multithreaded owners (the job service) call this
        *before* starting their dispatcher/HTTP threads: the pool's
        worker processes are forked while the parent is still
        single-threaded, which sidesteps the classic
        fork-under-threads hazard of a child inheriting a lock some
        other thread held at fork time.  No-op for serial engines.
        """
        if self.jobs > 1:
            self._ensure_pool()

    def close(self) -> None:
        """Shut down the warm worker pool and shared memory (idempotent)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        self._shared.close()

    def __enter__(self) -> "SweepEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    def _emit(self, done: int, total: int, point: SweepPoint, origin: str) -> None:
        if self.progress:
            print(
                f"[{done}/{total}] {point.describe()} ({origin})",
                file=sys.stderr,
                flush=True,
            )
        hook = getattr(_PROGRESS, "hook", None)
        if hook is not None:
            hook(done, total, point, origin)

    def _count(self, field: str, n: int = 1) -> None:
        with self._lock:
            setattr(self.stats, field, getattr(self.stats, field) + n)

    def _claim(self, key: str) -> tuple[_InFlight, bool]:
        """Claim ``key`` for this run, or join another thread's claim.

        Returns the in-flight entry and whether this run owns it (owner
        computes and must resolve; joiners wait on the entry's event).
        """
        with self._lock:
            entry = self._inflight.get(key)
            if entry is not None:
                return entry, False
            entry = self._inflight[key] = _InFlight()
            return entry, True

    def _resolve(self, key: str, record: dict | None, *, failed: bool = False) -> None:
        """Publish an owned key's record (or failure) and release waiters."""
        with self._lock:
            entry = self._inflight.pop(key, None)
        if entry is not None:
            entry.record = record
            entry.failed = failed
            entry.event.set()

    def run(self, points: Sequence[SweepPoint]) -> list[dict]:
        """Execute every point (cache first), preserving input order.

        Points with identical cache keys within one batch are executed
        once and the record is shared across their result slots.  Pending
        points are grouped into ``(workload spec, PhiConfig)`` units; in
        parallel mode each unit's representative point runs first (it
        materialises the unit's workload / calibration / decomposition
        into the artifact store), then the unit's remaining points fan
        out point-per-task — so no split ever recomputes a calibration.
        Records stream back as futures complete and are written to the
        result cache incrementally.

        ``run`` is re-entrant: concurrent calls from multiple threads
        (the job service's dispatchers) share one engine safely, and a
        point already being simulated by another thread is *waited for*,
        never recomputed — each distinct point is simulated exactly once
        across all concurrent runs (see :class:`SweepStats`'s
        ``inflight_hits``).  Progress can be observed per-thread via
        :func:`progress_scope`.

        Parameters
        ----------
        points:
            The sweep grid to execute.

        Returns
        -------
        list of dict
            One JSON-friendly record per input point, in input order.
        """
        points = list(points)
        self._count("requested", len(points))
        records: list[dict | None] = [None] * len(points)
        # key -> indices of every point that resolves to that key; owned
        # keys are computed by this run, awaited keys by a concurrent one.
        pending: dict[str, list[int]] = {}
        awaited: dict[str, tuple[list[int], _InFlight]] = {}
        done = 0

        # Owned keys not yet settled — what the failure path must
        # release.  Tracked separately from `pending` because a settled
        # key may already have been re-claimed by another thread (no
        # cache), and resolving it again would fail that thread's entry.
        unsettled: set[str] = set()

        def settle(key: str, record: dict) -> None:
            nonlocal done
            for i in pending[key]:
                records[i] = record
                done += 1
                self._emit(done, len(points), points[i], "run")
            self._finish(points[pending[key][0]], record)
            unsettled.discard(key)
            self._resolve(key, record)

        try:
            for i, point in enumerate(points):
                key = point.cache_key()
                if key in pending:
                    pending[key].append(i)
                    continue
                if key in awaited:
                    awaited[key][0].append(i)
                    continue
                cached = self.cache.get(key) if self.cache is not None else None
                if cached is None:
                    entry, owned = self._claim(key)
                    if owned and self.cache is not None:
                        # The previous owner may have finished (and
                        # cached) between our miss and our claim;
                        # re-check so the exactly-once guarantee has no
                        # race window.
                        cached = self.cache.get(key)
                        if cached is not None:
                            self._resolve(key, cached)
                if cached is not None:
                    records[i] = cached
                    self._count("cache_hits")
                    done += 1
                    self._emit(done, len(points), point, "cache")
                elif owned:
                    pending[key] = [i]
                    unsettled.add(key)
                else:
                    awaited[key] = ([i], entry)

            if pending and self.dispatcher is not None:
                # Offer the pending work to the fleet first.  The
                # dispatcher returns whatever subset the workers
                # completed (possibly nothing — no workers registered,
                # leases expired, draining); the rest runs locally, so
                # callers cannot tell how many nodes served their sweep.
                representatives = {
                    key: points[indices[0]] for key, indices in pending.items()
                }
                try:
                    remote = self.dispatcher.dispatch(representatives) or {}
                except Exception:
                    remote = {}
                for key, record in remote.items():
                    if key in unsettled:
                        settle(key, record)
                        self._count("remote_hits", len(pending[key]))
                        del pending[key]

            if pending:
                if self.jobs == 1 or len(pending) == 1:
                    with _active_store(self.store):
                        for keys in _pending_spec_groups(points, pending):
                            results = simulate_many(
                                [points[pending[k][0]] for k in keys]
                            )
                            for key, record in zip(keys, results):
                                settle(key, record)
                else:
                    units = _pending_units(points, pending)
                    self._run_parallel(points, pending, units, settle)
        except BaseException:
            # Owned keys that never settled must not strand waiters in
            # other threads: publish the failure so they recompute.
            for key in unsettled:
                self._resolve(key, None, failed=True)
            raise

        for key, (indices, entry) in awaited.items():
            entry.event.wait()
            if entry.failed or entry.record is None:
                # The owning run died.  Another waiter may already have
                # recovered and cached the record — re-check before
                # recomputing; without a cache each waiter recomputes
                # (deterministically identical, degraded but correct).
                record = self.cache.get(key) if self.cache is not None else None
                if record is not None:
                    self._count("cache_hits", len(indices))
                    origin = "cache"
                else:
                    with _active_store(self.store):
                        record = simulate_many([points[indices[0]]])[0]
                    self._finish(points[indices[0]], record)
                    origin = "run"
            else:
                record = entry.record
                self._count("inflight_hits", len(indices))
                origin = "inflight"
            for i in indices:
                records[i] = record
                done += 1
                self._emit(done, len(points), points[i], origin)
        return records  # type: ignore[return-value]

    def _run_parallel(
        self,
        points: list[SweepPoint],
        pending: dict[str, list[int]],
        units: list[list[str]],
        settle,
    ) -> None:
        """Wave-dispatch pending units over the warm worker pool."""
        if self.store is not None:
            self._seed_workloads(points, pending)
        pool = self._ensure_pool()

        def submit(key: str, manifest: list | None = None):
            batch = [points[pending[key][0]]]
            if manifest:
                return pool.submit(_simulate_with_shared, batch, manifest)
            return pool.submit(simulate_many, batch)

        # Wave 1: one representative per unit.  Followers are held back
        # until the representative has stored the unit's artifacts.
        # Without a store there is nothing for followers to load, so the
        # barrier would only serialize work — submit everything at once.
        # With a store, a unit whose representative has no PhiConfig has
        # no calibration/decomposition to materialise either (its only
        # shared artifact, the base workload, was just seeded), so its
        # points skip the barrier too.
        if self.store is None:
            futures = {
                submit(key): (key, []) for keys in units for key in keys
            }
        else:
            futures = {}
            for keys in units:
                if points[pending[keys[0]][0]].phi is None:
                    for key in keys:
                        futures[submit(key)] = (key, [])
                else:
                    futures[submit(keys[0])] = (keys[0], keys[1:])
        remaining = set(futures)
        try:
            while remaining:
                finished, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in finished:
                    key, followers = futures.pop(future)
                    settle(key, future.result()[0])
                    if followers:
                        # The representative has stored the unit's
                        # calibration/decomposition; hand them to the
                        # followers over shared memory (zero-copy, no
                        # re-pickling) when possible.
                        manifest = self._export_unit(points[pending[key][0]])
                        for follower in followers:
                            follow_up = submit(follower, manifest)
                            futures[follow_up] = (follower, [])
                            remaining.add(follow_up)
        except BaseException:
            # A failed or interrupted run must not leave its own queued
            # tasks running — but the pool is shared with concurrent
            # runs (the service's dispatcher threads), so cancel only
            # this run's futures, never the whole pool.
            for future in remaining:
                future.cancel()
            raise

    def _export_unit(self, point: SweepPoint) -> list:
        """Shared-memory manifest for ``point``'s unit artifacts.

        Exports the unit's calibration and decomposition payloads (one
        segment each, deduplicated across waves by store key) straight
        from their on-disk container bytes.  Artifacts that never hit
        the disk — unwritable store, representative failure — are simply
        absent from the manifest and followers fall back to recompute.
        """
        if self.store is None or point.phi is None:
            return []
        payload = _artifact_payload(point.workload, point.phi)
        manifest = []
        for kind in (KIND_CALIBRATION, KIND_DECOMPOSITION):
            entry = self._shared.export(self.store, kind, self.store.key(kind, payload))
            if entry is not None:
                manifest.append(entry)
        return manifest

    def _seed_workloads(
        self, points: list[SweepPoint], pending: dict[str, list[int]]
    ) -> None:
        """Materialise every pending base workload into the store.

        Workload generation (an SNN forward pass) is common to every unit
        of the same spec; seeding every missing spec before dispatch
        means no two dispatch waves ever race to regenerate one.  The
        generation itself runs as pool tasks, so distinct workloads
        materialise concurrently instead of serially on this thread.
        """
        missing: list[WorkloadSpec] = []
        seen: set[WorkloadSpec] = set()
        for indices in pending.values():
            spec = _base_spec(points[indices[0]].workload)
            # Trace workloads already live in the store — there is
            # nothing to materialise.
            if spec in seen or spec.is_trace:
                continue
            seen.add(spec)
            key = self.store.key(KIND_WORKLOAD, _artifact_payload(spec, None))
            if not self.store.contains(key):
                missing.append(spec)
        if not missing:
            return
        pool = self._ensure_pool()
        for future in [pool.submit(_seed_workload, spec) for spec in missing]:
            future.result()

    def _finish(self, point: SweepPoint, record: dict) -> None:
        self._count("executed")
        if self.cache is not None:
            try:
                self.cache.put(point.cache_key(), record)
            except OSError as error:
                # A full or unwritable cache (ENOSPC, revoked perms) must
                # not fail a sweep whose record is already computed: the
                # cache is an accelerator, never a correctness
                # dependency — the same contract as ArtifactStore.put.
                # Cache.put is atomic (tmp + os.replace with unlink on
                # failure), so a failed write leaves no partial record.
                if not self._warned_cache_unwritable:
                    self._warned_cache_unwritable = True
                    warnings.warn(
                        f"result cache {self.cache.root} is unwritable "
                        f"({error}); records from this run will not persist",
                        RuntimeWarning,
                        stacklevel=2,
                    )

    # ------------------------------------------------------------------ #
    def run_one(self, point: SweepPoint) -> dict:
        """Convenience wrapper for a single point."""
        return self.run([point])[0]


def default_engine() -> SweepEngine:
    """A serial, cache-less engine (pure recompute-everything behaviour)."""
    return SweepEngine()
