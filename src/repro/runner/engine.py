"""The parallel sweep engine.

A *sweep point* names everything needed to reproduce one simulation:
the accelerator (the Phi simulator, one of the analytical baselines, or
the decomposition-only density analysis), the algorithm and architecture
configurations, and a :class:`WorkloadSpec` describing how to regenerate
the fixed-seed workload.  :class:`SweepEngine` fans a list of points out
over ``multiprocessing`` workers and memoises every result in an on-disk
content-addressed cache, so design-space sweeps pay for each distinct
configuration exactly once — across processes, runs and experiments.

Workers recompute workloads and calibrations from their specs; both are
deterministic for a fixed seed, so a record computed anywhere is valid
everywhere.  Within one process, workloads and calibrations are memoised
too (``cached_workload`` / :func:`calibration_for`), which is what lets a
multi-figure run share one calibration across every point that uses the
same ``(workload, PhiConfig)`` pair.
"""

from __future__ import annotations

import sys
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

from ..baselines.registry import BASELINE_CLASSES, get_accelerator
from ..core.calibration import ModelCalibration, PhiCalibrator
from ..core.config import PhiConfig
from ..core.metrics import (
    aggregate_breakdowns,
    aggregate_operation_counts,
    operation_counts,
    sparsity_breakdown,
)
from ..core.paft import ActivationAligner
from ..hw.config import ArchConfig
from ..hw.energy import PhiEnergyModel
from ..hw.pipeline import AcceleratorModel, LayerResult, RunResult
from ..hw.simulator import PhiSimulator
from ..workloads.generator import cached_workload, generate_random_workload
from ..workloads.workload import LayerWorkload, ModelWorkload
from .cache import ResultCache, cache_key

#: Bump on ANY change that affects cached records — the record layout OR
#: result-affecting simulator/calibration behaviour.  The package version
#: is also hashed into every key (see :meth:`SweepPoint.cache_payload`),
#: so releases invalidate the cache even when this stays constant.
#: v2: per-layer operation counts + pattern-match comparisons, efficiency
#: and area fields (the report pipeline consumes these).
#: v3: one canonical record for every accelerator, flattened from the
#: unified ``repro.hw.pipeline.RunResult`` schema — baselines gained
#: per-layer entries and area fields, every record embeds its ``schema``
#: version, and :func:`validate_record` checks the layout.  v2 entries
#: hash to different keys and are therefore ignored, never parsed.
CACHE_SCHEMA_VERSION = 3

#: Accelerator name for the decomposition-only density/op-count analysis
#: used by the Fig. 7a/b tile-size sweep (no cycle-level simulation).
DECOMPOSITION = "phi_decomposition"


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything needed to regenerate a workload deterministically.

    Parameters
    ----------
    model, dataset:
        Model-zoo and dataset names (``repro.workloads.generate_workload``
        arguments), or the special pair produced by :meth:`random` for the
        unstructured random matrices of Table 4.
    batch_size, num_steps, split, seed:
        Forwarded to the workload generator.
    paft_strength:
        When set, selects the post-PAFT variant: the activations are
        aligned towards the patterns calibrated on the *original* workload,
        mirroring :func:`repro.experiments.fig8.apply_paft_to_workload`.
    paft_seed:
        Seed of the PAFT alignment sampling.
    density, dims:
        Only for random workloads (see :meth:`random`): the probability of
        a 1 bit and the ``(m, k, n)`` GEMM dimensions.
    """

    model: str
    dataset: str
    batch_size: int = 8
    num_steps: int = 4
    split: str = "test"
    seed: int = 0
    paft_strength: float | None = None
    paft_seed: int = 0
    density: float | None = None
    dims: tuple[int, int, int] | None = None

    def __post_init__(self) -> None:
        if self.is_random and (self.density is None or self.dims is None):
            raise ValueError(
                "random workload specs need density and dims; "
                "build them with WorkloadSpec.random()"
            )

    @classmethod
    def random(
        cls,
        density: float,
        *,
        m: int = 512,
        k: int = 128,
        n: int = 64,
        seed: int = 0,
    ) -> "WorkloadSpec":
        """Spec for a random binary workload (Table 4 "Random" rows).

        Parameters
        ----------
        density:
            Probability of a 1 at each activation position.
        m, k, n:
            GEMM dimensions of the single random layer.
        seed:
            RNG seed of the random matrices.

        Returns
        -------
        WorkloadSpec
            A spec whose ``dataset`` is ``"random"``; workers regenerate
            the matrices from ``(density, dims, seed)`` deterministically.
        """
        return cls(
            model=f"random{int(density * 100)}",
            dataset="random",
            seed=seed,
            density=density,
            dims=(m, k, n),
        )

    @property
    def is_random(self) -> bool:
        """Whether this spec describes a random binary workload."""
        return self.dataset == "random"

    @property
    def key(self) -> str:
        """Canonical workload identifier."""
        return f"{self.model}/{self.dataset}"

    def to_dict(self) -> dict:
        """Serialise the spec to plain Python types (cache-key payload)."""
        return {
            "model": self.model,
            "dataset": self.dataset,
            "batch_size": self.batch_size,
            "num_steps": self.num_steps,
            "split": self.split,
            "seed": self.seed,
            "paft_strength": self.paft_strength,
            "paft_seed": self.paft_seed,
            "density": self.density,
            "dims": list(self.dims) if self.dims is not None else None,
        }


@dataclass(frozen=True)
class SweepPoint:
    """One (accelerator, configuration, workload) grid point of a sweep."""

    workload: WorkloadSpec
    arch: ArchConfig
    phi: PhiConfig | None = None
    accelerator: str = "phi"
    buffer_scale: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        known = set(BASELINE_CLASSES) | {"phi", DECOMPOSITION}
        if self.accelerator not in known:
            raise ValueError(
                f"unknown accelerator {self.accelerator!r}; expected one of "
                f"{sorted(known)}"
            )
        if self.accelerator in ("phi", DECOMPOSITION) and self.phi is None:
            raise ValueError(f"accelerator {self.accelerator!r} needs a PhiConfig")

    def cache_payload(self) -> dict:
        """The canonical payload hashed into this point's cache key.

        The display ``label`` is deliberately excluded: it does not
        influence the simulation result.
        """
        from .. import __version__

        return {
            "schema": CACHE_SCHEMA_VERSION,
            "code_version": __version__,
            "accelerator": self.accelerator,
            "buffer_scale": self.buffer_scale,
            "workload": self.workload.to_dict(),
            "arch": self.arch.to_dict(),
            "phi": self.phi.to_dict() if self.phi is not None else None,
        }

    def cache_key(self) -> str:
        """Content hash identifying this point in the result cache."""
        return cache_key(self.cache_payload())

    def describe(self) -> str:
        """Short human-readable tag for progress output."""
        if self.label:
            return self.label
        return f"{self.accelerator}:{self.workload.key}"


# --------------------------------------------------------------------- #
# Workload / calibration resolution (memoised per process)
# --------------------------------------------------------------------- #
def calibration_for(workload: ModelWorkload, config: PhiConfig) -> ModelCalibration:
    """Calibrate ``workload`` under ``config``, memoised on the workload.

    Calibration is deterministic, so the result is attached to the
    workload object itself (keyed by the frozen ``PhiConfig``); every
    sweep point and experiment that shares the workload instance then
    shares one calibration instead of recomputing it per point.

    Parameters
    ----------
    workload:
        The workload whose binary activation matrices are calibrated.
        Treated as read-only apart from the attached memo.
    config:
        Algorithm configuration (partition size, pattern count,
        calibration sample count).

    Returns
    -------
    ModelCalibration
        Per-layer calibrated patterns, shared across callers.
    """
    memo = getattr(workload, "_phi_calibration_cache", None)
    if memo is None:
        memo = {}
        workload._phi_calibration_cache = memo
    if config not in memo:
        calibrator = PhiCalibrator(config)
        memo[config] = calibrator.calibrate_model(workload.activation_matrices())
    return memo[config]


def _base_workload(spec: WorkloadSpec) -> ModelWorkload:
    if spec.is_random:
        m, k, n = spec.dims
        return _random_workload(spec.density, m, k, n, spec.seed, spec.model)
    return cached_workload(
        spec.model,
        spec.dataset,
        batch_size=spec.batch_size,
        num_steps=spec.num_steps,
        seed=spec.seed,
        split=spec.split,
    )


@lru_cache(maxsize=16)
def _random_workload(
    density: float, m: int, k: int, n: int, seed: int, name: str
) -> ModelWorkload:
    """Memoised random workloads (same sharing semantics as ``cached_workload``)."""
    return generate_random_workload(
        density=density, m=m, k=k, n=n, seed=seed, name=name
    )


def aligned_workload(
    workload: ModelWorkload,
    config: PhiConfig,
    *,
    strength: float,
    seed: int = 0,
) -> ModelWorkload:
    """The post-PAFT variant of ``workload`` (Section 3.3 effect model)."""
    calibration = calibration_for(workload, config)
    aligner = ActivationAligner(alignment_strength=strength, seed=seed)
    aligned = ModelWorkload(
        model_name=workload.model_name, dataset_name=workload.dataset_name
    )
    for layer in workload:
        if layer.name in calibration:
            activations = aligner.align_layer(layer.activations, calibration[layer.name])
        else:
            activations = layer.activations
        aligned.add(
            LayerWorkload(
                name=layer.name, activations=activations, weights=layer.weights
            )
        )
    return aligned


def _resolve_workload(point: SweepPoint) -> ModelWorkload:
    spec = point.workload
    workload = _base_workload(spec)
    if spec.paft_strength is not None:
        if point.phi is None:
            raise ValueError("PAFT workloads need a PhiConfig for calibration")
        workload = aligned_workload(
            workload, point.phi, strength=spec.paft_strength, seed=spec.paft_seed
        )
    return workload


# --------------------------------------------------------------------- #
# Record construction (cache schema v3)
# --------------------------------------------------------------------- #
def _counts_dict(ops) -> dict:
    return {
        "dense_ops": ops.dense_ops,
        "bit_sparse_ops": ops.bit_sparse_ops,
        "phi_level1_ops": ops.phi_level1_ops,
        "phi_level2_ops": ops.phi_level2_ops,
    }


def _layer_entry(layer: LayerResult) -> dict:
    """Flatten one canonical :class:`LayerResult` into a record entry."""
    entry = {
        "name": layer.layer_name,
        "m": layer.m,
        "k": layer.k,
        "n": layer.n,
        "compute_cycles": layer.compute_cycles,
        "memory_cycles": layer.memory_cycles,
        "total_cycles": layer.total_cycles,
        "operations": layer.operations,
        "activation_bytes": layer.activation_bytes,
        "activation_bytes_uncompressed": layer.activation_bytes_uncompressed,
        "weight_bytes": layer.weight_bytes,
        "pwp_bytes_prefetched": layer.pwp_bytes_prefetched,
        "pwp_bytes_unfiltered": layer.pwp_bytes_unfiltered,
        "output_bytes": layer.output_bytes,
        "psum_spill_bytes": layer.psum_spill_bytes,
        "dram_bytes": layer.dram_bytes,
        "pattern_match_comparisons": layer.pattern_match_comparisons,
    }
    if layer.operation_counts is not None:
        entry["operation_counts"] = _counts_dict(layer.operation_counts)
    return entry


def summarize_run(result: RunResult) -> dict:
    """Flatten any accelerator's :class:`RunResult` into a v3 record.

    Parameters
    ----------
    result:
        The canonical run result — the Phi simulator and every baseline
        emit the same schema, so one flattener serves them all.

    Returns
    -------
    dict
        JSON-serialisable record with aggregate metrics, area/efficiency
        fields and one entry per layer — the layout cached by the sweep
        engine and consumed by the experiment harnesses and the report
        pipeline.  Phi-only aggregates (operation counts, sparsity
        breakdown) are present whenever the layers carry them.
    """
    energy = result.energy
    record = {
        "schema": CACHE_SCHEMA_VERSION,
        "accelerator": result.accelerator,
        "model": result.model_name,
        "dataset": result.dataset_name,
        "total_cycles": result.total_cycles,
        "runtime_seconds": result.runtime_seconds,
        "total_operations": result.total_operations,
        "throughput_gops": result.throughput_gops,
        "energy_joules": result.energy_joules,
        "energy_efficiency_gops_per_joule": result.energy_efficiency_gops_per_joule,
        "energy": {"core": energy.core, "buffer": energy.buffer, "dram": energy.dram},
        "total_dram_bytes": result.total_dram_bytes,
        "area_mm2": result.area_mm2,
        "area_efficiency_gops_per_mm2": result.area_efficiency_gops_per_mm2,
        "layers": [_layer_entry(layer) for layer in result.layers],
    }
    if any(layer.operation_counts is not None for layer in result.layers):
        record["operation_counts"] = _counts_dict(result.aggregate_operations())
        record["breakdown"] = result.aggregate_breakdown().as_dict()
    return record


def summarize_simulation(result: RunResult) -> dict:
    """Deprecated alias of :func:`summarize_run` (pre-v3 name)."""
    return summarize_run(result)


def model_for(point: SweepPoint) -> AcceleratorModel:
    """Construct the accelerator model that executes one sweep point.

    This is the single place the runner instantiates accelerator models;
    everything downstream drives them through the
    :class:`~repro.hw.pipeline.AcceleratorModel` interface only.
    """
    if point.accelerator == "phi":
        energy_model = PhiEnergyModel(point.arch, buffer_scale=point.buffer_scale)
        return PhiSimulator(point.arch, point.phi, energy_model=energy_model)
    return get_accelerator(point.accelerator, point.arch)


def _model_record(point: SweepPoint) -> dict:
    # _resolve_workload honours a PAFT spec for every accelerator (it
    # needs point.phi for the alignment calibration); a plain spec
    # resolves to the base workload.
    workload = _resolve_workload(point)
    model = model_for(point)
    if isinstance(model, PhiSimulator):
        if point.workload.paft_strength is None:
            # Matches the simulator's per-layer self-calibration exactly
            # while letting every point on the same workload share one
            # calibration.
            calibration = calibration_for(workload, point.phi)
        else:
            # The paper fine-tunes, then re-calibrates on the tuned
            # network: the aligned workload self-calibrates (as in Fig. 8).
            calibration = None
        result = model.simulate(workload, calibration=calibration)
    else:
        result = model.simulate(workload)
    return summarize_run(result)


def _decomposition_record(point: SweepPoint) -> dict:
    """Density / op-count analysis without cycle-level simulation."""
    workload = _resolve_workload(point)
    calibration = calibration_for(workload, point.phi)
    breakdown_pairs = []
    counts = []
    for layer in workload:
        decomposition = calibration[layer.name].decompose(layer.activations)
        breakdown_pairs.append(
            (sparsity_breakdown(decomposition), layer.activations.size)
        )
        counts.append(operation_counts(decomposition))
    totals = aggregate_operation_counts(counts)
    breakdown = aggregate_breakdowns(breakdown_pairs)
    return {
        "schema": CACHE_SCHEMA_VERSION,
        "operation_counts": _counts_dict(totals),
        "breakdown": breakdown.as_dict(),
    }


def simulate_point(point: SweepPoint) -> dict:
    """Execute one sweep point from scratch and return its record.

    This is the unit of work the engine dispatches to workers (and the
    seam tests monkeypatch to observe or stub simulator invocations).
    """
    if point.accelerator == DECOMPOSITION:
        record = _decomposition_record(point)
    else:
        record = _model_record(point)
    record["accelerator"] = point.accelerator
    record["model"] = point.workload.model
    record["dataset"] = point.workload.dataset
    return record


def simulate_many(points: Sequence[SweepPoint]) -> list[dict]:
    """Execute a batch of sweep points through one entry point.

    Points run in input order inside one process, so the per-process
    workload and calibration memos (:func:`cached_workload`,
    :func:`calibration_for`) are warmed by the first point of each
    workload and reused by every later one.  The engine dispatches
    workload-grouped batches through this function instead of issuing
    per-point calls, which is what keeps a parallel sweep from
    re-deriving shared state in every worker.

    Parameters
    ----------
    points:
        The batch to execute.

    Returns
    -------
    list of dict
        One v3 record per point, in input order.
    """
    return [simulate_point(point) for point in points]


# --------------------------------------------------------------------- #
# Record validation (cache schema v3)
# --------------------------------------------------------------------- #
#: Aggregate keys every v3 accelerator record must carry.
RECORD_REQUIRED_KEYS: tuple[str, ...] = (
    "accelerator",
    "model",
    "dataset",
    "total_cycles",
    "runtime_seconds",
    "total_operations",
    "throughput_gops",
    "energy_joules",
    "energy_efficiency_gops_per_joule",
    "energy",
    "total_dram_bytes",
    "area_mm2",
    "area_efficiency_gops_per_mm2",
    "layers",
)

#: Keys every per-layer entry of a v3 record must carry.
LAYER_REQUIRED_KEYS: tuple[str, ...] = (
    "name",
    "m",
    "k",
    "n",
    "compute_cycles",
    "memory_cycles",
    "total_cycles",
    "operations",
    "dram_bytes",
)


def validate_record(record: dict) -> list[str]:
    """Check one sweep record against the v3 schema.

    Parameters
    ----------
    record:
        A record as produced by :func:`simulate_point` (or loaded from
        the on-disk cache).

    Returns
    -------
    list of str
        Human-readable problems; empty when the record is valid.
        Records with a non-current ``schema`` field are *not* validated
        here — callers should treat them as legacy entries and ignore
        them (their cache keys can never be produced again).
    """
    problems: list[str] = []
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, expected dict"]
    if record.get("schema") != CACHE_SCHEMA_VERSION:
        return [f"schema is {record.get('schema')!r}, expected {CACHE_SCHEMA_VERSION}"]
    if record.get("accelerator") == DECOMPOSITION:
        for key in ("operation_counts", "breakdown", "model", "dataset"):
            if key not in record:
                problems.append(f"missing key {key!r}")
        return problems
    for key in RECORD_REQUIRED_KEYS:
        if key not in record:
            problems.append(f"missing key {key!r}")
    energy = record.get("energy")
    if not isinstance(energy, dict) or not {"core", "buffer", "dram"} <= set(energy):
        problems.append("energy must map core/buffer/dram to Joules")
    layers = record.get("layers")
    if not isinstance(layers, list):
        problems.append("layers must be a list")
    else:
        for i, layer in enumerate(layers):
            if not isinstance(layer, dict):
                problems.append(f"layers[{i}] is not a mapping")
                continue
            for key in LAYER_REQUIRED_KEYS:
                if key not in layer:
                    problems.append(f"layers[{i}] missing key {key!r}")
    return problems


# --------------------------------------------------------------------- #
# The engine
# --------------------------------------------------------------------- #
def _workload_group(spec: WorkloadSpec) -> tuple:
    """Grouping key: points sharing it share one resolved base workload.

    PAFT variants ride with their base workload (the alignment needs the
    base calibration), so ``paft_strength``/``paft_seed`` are excluded.
    """
    return (
        spec.model,
        spec.dataset,
        spec.batch_size,
        spec.num_steps,
        spec.split,
        spec.seed,
        spec.density,
        spec.dims,
    )


def _pending_batches(
    points: Sequence[SweepPoint], pending: dict[str, list[int]], jobs: int
) -> list[list[str]]:
    """Partition pending cache keys into workload-grouped dispatch batches.

    Keys are grouped by base workload so each :func:`simulate_many` batch
    resolves and calibrates its workload once (instead of every worker
    re-deriving the shared state point by point).  When there are fewer
    groups than workers, groups are split so parallelism is not
    sacrificed to batching.
    """
    groups: dict[tuple, list[str]] = {}
    for key, indices in pending.items():
        group = _workload_group(points[indices[0]].workload)
        groups.setdefault(group, []).append(key)
    batches = list(groups.values())
    if jobs > 1 and len(batches) < jobs:
        splits_per_group = -(-jobs // len(batches))  # ceil division
        split: list[list[str]] = []
        for keys in batches:
            parts = min(len(keys), splits_per_group)
            size = -(-len(keys) // parts)
            split.extend(keys[i : i + size] for i in range(0, len(keys), size))
        batches = split
    return batches


@dataclass
class SweepStats:
    """Accounting of one or more :meth:`SweepEngine.run` calls."""

    requested: int = 0
    cache_hits: int = 0
    executed: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of requested points served from the cache."""
        return self.cache_hits / self.requested if self.requested else 0.0


class SweepEngine:
    """Fan sweep points out over workers with an on-disk result cache.

    Parameters
    ----------
    cache:
        Result cache, or ``None`` to disable caching entirely (every point
        recomputes — the default, so library callers keep pure behaviour
        unless they opt in).
    jobs:
        Worker processes.  ``1`` executes inline in this process (no pool,
        monkeypatch-friendly); higher values use a process pool.
    progress:
        Emit one ``[i/n]`` line per completed point to ``stderr``.
    """

    def __init__(
        self,
        *,
        cache: ResultCache | None = None,
        jobs: int = 1,
        progress: bool = False,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.cache = cache
        self.jobs = jobs
        self.progress = progress
        self.stats = SweepStats()

    # ------------------------------------------------------------------ #
    def _emit(self, done: int, total: int, point: SweepPoint, origin: str) -> None:
        if self.progress:
            print(
                f"[{done}/{total}] {point.describe()} ({origin})",
                file=sys.stderr,
                flush=True,
            )

    def run(self, points: Sequence[SweepPoint]) -> list[dict]:
        """Execute every point (cache first), preserving input order.

        Points with identical cache keys within one batch are executed
        once and the record is shared across their result slots.

        Parameters
        ----------
        points:
            The sweep grid to execute.

        Returns
        -------
        list of dict
            One JSON-friendly record per input point, in input order.
        """
        points = list(points)
        self.stats.requested += len(points)
        records: list[dict | None] = [None] * len(points)
        # key -> indices of every point that resolves to that key.
        pending: dict[str, list[int]] = {}
        done = 0

        for i, point in enumerate(points):
            key = point.cache_key()
            if key in pending:
                pending[key].append(i)
                continue
            cached = self.cache.get(key) if self.cache else None
            if cached is not None:
                records[i] = cached
                self.stats.cache_hits += 1
                done += 1
                self._emit(done, len(points), point, "cache")
            else:
                pending[key] = [i]

        def settle(key: str, record: dict) -> None:
            nonlocal done
            for i in pending[key]:
                records[i] = record
                done += 1
                self._emit(done, len(points), points[i], "run")
            self._finish(points[pending[key][0]], record)

        if pending:
            batches = _pending_batches(points, pending, self.jobs)
            if self.jobs == 1 or len(batches) == 1:
                for keys in batches:
                    results = simulate_many([points[pending[k][0]] for k in keys])
                    for key, record in zip(keys, results):
                        settle(key, record)
            else:
                workers = min(self.jobs, len(batches))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = {
                        pool.submit(
                            simulate_many, [points[pending[k][0]] for k in keys]
                        ): keys
                        for keys in batches
                    }
                    remaining = set(futures)
                    while remaining:
                        finished, remaining = wait(
                            remaining, return_when=FIRST_COMPLETED
                        )
                        for future in finished:
                            for key, record in zip(futures[future], future.result()):
                                settle(key, record)
        return records  # type: ignore[return-value]

    def _finish(self, point: SweepPoint, record: dict) -> None:
        self.stats.executed += 1
        if self.cache is not None:
            self.cache.put(point.cache_key(), record)

    # ------------------------------------------------------------------ #
    def run_one(self, point: SweepPoint) -> dict:
        """Convenience wrapper for a single point."""
        return self.run([point])[0]


def default_engine() -> SweepEngine:
    """A serial, cache-less engine (pure recompute-everything behaviour)."""
    return SweepEngine()
