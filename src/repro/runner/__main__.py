"""``python -m repro.runner`` dispatches to the sweep CLI."""

import sys

from .cli import main

sys.exit(main())
