"""Shared-memory handoff of store artifacts to pool workers.

In a parallel sweep the representative point of each ``(workload,
PhiConfig)`` unit materialises the unit's calibration and decomposition
into the artifact store; the unit's remaining points then run in pool
workers that need the same artifacts.  Before this module they re-read
them from disk (and historically re-decoded an ``.npz`` per worker).
Now the parent copies each artifact's container payload — the exact
bytes of the store file, see :mod:`repro.runner.store` — into one
``multiprocessing.shared_memory`` segment and sends only the segment
*name* with the follower task.  Workers attach, slice zero-copy views
straight out of the shared pages, and prime their store memo, so large
calibration/decomposition arrays cross the process boundary without
ever being pickled or duplicated.

Lifecycle: the parent (engine) owns every segment it exports and
unlinks them all in :meth:`SharedArtifacts.close` (wired into
``SweepEngine.close``); workers only map segments and drop their
mappings when the worker process exits.  On Linux an unlinked segment's
pages live until the last mapping closes, so unlink-after-dispatch is
safe.  Every step degrades gracefully: export failures (no ``/dev/shm``
space, platform without shared memory) fall back to the disk path, and
attach failures in a worker fall back to its own store — shared memory
is an accelerator, never a correctness dependency.
"""

from __future__ import annotations

import os
import threading
import warnings
from typing import Any

import numpy as np

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None  # type: ignore[assignment]
    resource_tracker = None  # type: ignore[assignment]

from .store import ArtifactStore, decode_artifact, unpack_arrays

#: A manifest entry: (artifact kind, store key, shared-memory segment
#: name).  Lists of these ride along with follower tasks; they pickle in
#: a few bytes regardless of artifact size.
ManifestEntry = tuple[str, str, str]


class SharedArtifacts:
    """Parent-side registry of exported artifact segments.

    One instance per :class:`~repro.runner.engine.SweepEngine`; export
    is keyed by store key, so a unit exported for one wave is reused by
    every later follower of the same artifacts.
    """

    def __init__(self) -> None:
        self._segments: dict[str, "shared_memory.SharedMemory"] = {}
        self._manifest: dict[str, ManifestEntry] = {}
        self._lock = threading.Lock()
        self._counter = 0
        self._warned = False

    def export(self, store: ArtifactStore, kind: str, key: str) -> ManifestEntry | None:
        """Copy the stored payload for ``key`` into a segment, once.

        Returns the manifest entry, or ``None`` when the artifact is not
        on disk (e.g. the representative ran against an unwritable
        store) or shared memory is unavailable — callers simply omit the
        entry and workers fall back to their own store.
        """
        with self._lock:
            entry = self._manifest.get(key)
        if entry is not None:
            return entry
        if shared_memory is None:
            return None
        payload = store.load_payload(key)
        if payload is None or payload.size == 0:
            return None
        try:
            with self._lock:
                self._counter += 1
                name = f"phiart-{os.getpid()}-{id(self) & 0xFFFFFF:x}-{self._counter}"
            segment = shared_memory.SharedMemory(
                create=True, size=payload.size, name=name
            )
        except (OSError, ValueError):
            if not self._warned:
                self._warned = True
                warnings.warn(
                    "shared-memory export unavailable; parallel workers "
                    "will read artifacts from the store instead",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return None
        try:
            np.frombuffer(segment.buf, dtype=np.uint8)[: payload.size] = payload
        except BaseException:
            segment.close()
            try:
                segment.unlink()
            except OSError:
                pass
            raise
        entry = (kind, key, segment.name)
        with self._lock:
            raced = self._manifest.get(key)
            if raced is not None:
                # Another thread exported the same key first; keep theirs.
                segment.close()
                try:
                    segment.unlink()
                except OSError:
                    pass
                return raced
            self._segments[key] = segment
            self._manifest[key] = entry
        return entry

    def close(self) -> None:
        """Unlink every exported segment (idempotent).

        Workers that still map a segment keep using their pages; the
        names just disappear, so nothing leaks past the engine.
        """
        with self._lock:
            segments, self._segments = self._segments, {}
            self._manifest.clear()
        for segment in segments.values():
            try:
                segment.close()
                segment.unlink()
            except OSError:
                pass

    def __len__(self) -> int:
        with self._lock:
            return len(self._segments)


#: Worker-side mappings, kept for the worker's lifetime: the primed
#: artifacts in the store memo alias these buffers, so the mapping must
#: outlive them.  Unlinked by the parent, released when the worker exits.
_ATTACHED: dict[str, "shared_memory.SharedMemory"] = {}


def attach_and_prime(store: ArtifactStore | None, manifest: list[ManifestEntry]) -> int:
    """Map each manifest segment and prime the store memo (worker side).

    Returns the number of artifacts primed.  Any failure — the segment
    is gone, the payload is malformed — skips that entry; the worker's
    store serves it from disk instead.
    """
    if store is None or shared_memory is None or not manifest:
        return 0
    primed = 0
    for kind, key, segment_name in manifest:
        if segment_name in _ATTACHED:
            primed += 1
            continue
        try:
            segment = shared_memory.SharedMemory(name=segment_name)
        except (OSError, ValueError):
            continue
        # Attaching registers the segment with the resource tracker on
        # this Python version, which would try to unlink it again at
        # worker exit (the parent owns unlinking).  Deregister the
        # borrowed mapping.
        if resource_tracker is not None:
            try:
                resource_tracker.unregister(segment._name, "shared_memory")
            except Exception:
                pass
        try:
            payload = np.frombuffer(segment.buf, dtype=np.uint8)
            views = unpack_arrays(payload)
            for view in views.values():
                view.flags.writeable = False
            artifact = decode_artifact(kind, views)
        except Exception:
            segment.close()
            continue
        _ATTACHED[segment_name] = segment
        store.prime(key, artifact)
        primed += 1
    return primed


def live_segments() -> list[str]:
    """Names of this process's currently mapped borrowed segments."""
    return sorted(_ATTACHED)
