"""Content-addressed on-disk store for shared sweep artifacts.

The expensive state a sweep point needs before any cycle-level simulation
— the generated workload (an SNN forward pass), the k-means Phi
calibration and the two-level activation decomposition — is a pure
function of ``(workload spec, PhiConfig)``.  The :class:`ArtifactStore`
persists each of these under a content hash of exactly those inputs (plus
the package version and a store schema version), so they are computed
once per configuration *ever*: parallel workers, later runs and other
experiments all load the stored artifact instead of re-deriving it.

Storage is one file per artifact, fanned out over two-hex-digit
subdirectories like the result cache, written atomically (temp file +
``os.replace``) so concurrent writers can never corrupt an entry and a
killed worker can never leave a half-written file behind.  Concurrent
writers of the same key compute identical content — whichever replace
lands last wins, harmlessly.  A corrupt or unreadable file is treated as
a miss and recomputed, mirroring the result cache's semantics.

The file itself is a plain ``.npy`` holding one ``uint8`` vector: a
small JSON directory followed by each payload array's raw bytes at
64-byte-aligned offsets (see :func:`pack_arrays`).  Reads go through
``np.load(path, mmap_mode="r")``, so loading an artifact maps the file
once and slices every array out as a *read-only, zero-copy view* — no
decompression, no per-array header parsing, no heap copies.  The same
container doubles as the wire format for the engine's shared-memory
worker handoff (see :mod:`repro.runner.shm`).

Array payloads round-trip bit-exactly through the container, so a loaded
artifact is indistinguishable from a freshly computed one; the golden
regression suite and the report manifest check pin this.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import threading
import warnings
from typing import Any, Callable, Mapping

import numpy as np

from ..core.calibration import LayerCalibration, ModelCalibration
from ..core.config import PhiConfig
from ..core.patterns import PatternSet
from ..core.sparsity import MatrixDecomposition, rebuild_decomposition
from ..workloads.workload import LayerWorkload, ModelWorkload
from .cache import cache_key

#: Bump on ANY change to artifact layouts or to the deterministic
#: computations they capture (workload generation, calibration,
#: decomposition).  The package version is hashed into every key too, so
#: releases invalidate the store even when this stays constant.
#: v2: mmap-friendly single-``.npy`` container replaced the ``.npz``
#: archive.
#: v3: imported-trace artifacts (``KIND_TRACE``) joined the store.
STORE_SCHEMA_VERSION = 3

#: Older schema versions whose artifacts are still readable: the v2
#: container layout and codecs are unchanged in v3, so ``lookup`` probes
#: these keys on a miss and migrates hits forward under the current key.
COMPAT_STORE_SCHEMA_VERSIONS = (2,)

#: Artifact kinds the store recognises (part of every key payload).
KIND_WORKLOAD = "workload"
KIND_CALIBRATION = "calibration"
KIND_DECOMPOSITION = "decomposition"
KIND_TRACE = "trace"


def default_store_dir() -> pathlib.Path:
    """The default artifact store location.

    ``REPRO_STORE_DIR`` overrides it; otherwise artifacts live next to
    the result cache under the XDG cache home so repeated sweeps share
    calibrations across checkouts.
    """
    env = os.environ.get("REPRO_STORE_DIR")
    if env:
        return pathlib.Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg) if xdg else pathlib.Path.home() / ".cache"
    return base / "phi-repro" / "store"


# --------------------------------------------------------------------- #
# The zero-copy array container
# --------------------------------------------------------------------- #
#: Leading bytes of every container payload; a mismatch means the file
#: (or shared-memory segment) does not hold a v2 artifact.
CONTAINER_MAGIC = b"PHIART02"

#: Alignment of every array block inside the container.  The ``.npy``
#: format itself aligns its data section to 64 bytes and shared-memory
#: segments are page-aligned, so block offsets that are multiples of 64
#: guarantee naturally aligned typed views.
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def pack_arrays(
    arrays: Mapping[str, np.ndarray],
) -> tuple[bytes, list[np.ndarray], int]:
    """Lay out named arrays as a container prefix plus data blocks.

    Returns the serialized prefix (magic, directory length, JSON
    directory, padding to the first block offset), the C-contiguous
    arrays in directory order, and the total payload size.  Writing the
    prefix followed by each block's raw bytes — zero-padded up to the
    next 64-byte boundary between blocks — produces a complete payload.

    The directory records each block's absolute offset, and offsets
    shift the directory's own JSON length, so the layout is solved to a
    fixpoint (it converges in two or three passes: offsets only grow
    with digit count, which stabilises immediately).
    """
    blocks: list[np.ndarray] = []
    entries: list[dict[str, Any]] = []
    for name, array in arrays.items():
        block = np.ascontiguousarray(array)
        blocks.append(block)
        entries.append(
            {
                "name": name,
                "dtype": np.lib.format.dtype_to_descr(block.dtype),
                "shape": list(block.shape),
                "nbytes": int(block.nbytes),
                "offset": 0,
            }
        )
    head = len(CONTAINER_MAGIC) + 8
    while True:
        directory = json.dumps({"arrays": entries}).encode("utf-8")
        offset = _aligned(head + len(directory))
        changed = False
        for entry in entries:
            if entry["offset"] != offset:
                entry["offset"] = offset
                changed = True
            offset = _aligned(offset + entry["nbytes"])
        if not changed:
            break
    data_start = _aligned(head + len(directory))
    total = entries[-1]["offset"] + entries[-1]["nbytes"] if entries else data_start
    prefix = CONTAINER_MAGIC + len(directory).to_bytes(8, "little") + directory
    prefix += b"\0" * (data_start - len(prefix))
    return prefix, blocks, total


def write_packed(handle, prefix: bytes, blocks: list[np.ndarray]) -> int:
    """Stream a :func:`pack_arrays` layout into ``handle``.

    Writes sequentially (no full-payload buffer); returns the number of
    bytes written, which equals the layout's total payload size.
    """
    handle.write(prefix)
    written = len(prefix)
    for block in blocks:
        pad = _aligned(written) - written
        if pad:
            handle.write(b"\0" * pad)
            written += pad
        if block.nbytes:
            handle.write(memoryview(block).cast("B"))
            written += block.nbytes
    return written


def unpack_arrays(payload: np.ndarray) -> dict[str, np.ndarray]:
    """Zero-copy views of every array in a container ``payload``.

    ``payload`` is the container as a 1-D ``uint8`` array — typically a
    read-only memmap from ``np.load(..., mmap_mode="r")`` or a view of a
    shared-memory buffer.  The returned arrays alias the payload's
    storage (no copies); they inherit its writability, so memmap-backed
    artifacts are naturally read-only.

    Raises ``ValueError`` on any malformed container.
    """
    if payload.ndim != 1 or payload.dtype != np.uint8:
        raise ValueError("container payload must be a 1-D uint8 array")
    head = len(CONTAINER_MAGIC)
    if payload[:head].tobytes() != CONTAINER_MAGIC:
        raise ValueError("bad container magic")
    length = int.from_bytes(payload[head : head + 8].tobytes(), "little")
    if length < 0 or head + 8 + length > payload.size:
        raise ValueError("container directory out of bounds")
    directory = json.loads(payload[head + 8 : head + 8 + length].tobytes())
    arrays: dict[str, np.ndarray] = {}
    for entry in directory["arrays"]:
        dtype = np.dtype(entry["dtype"])
        offset, nbytes = entry["offset"], entry["nbytes"]
        if offset + nbytes > payload.size:
            raise ValueError("array block out of bounds")
        flat = payload[offset : offset + nbytes].view(dtype)
        arrays[entry["name"]] = flat.reshape(entry["shape"])
    return arrays


# --------------------------------------------------------------------- #
# Artifact codecs (one pair per artifact kind)
# --------------------------------------------------------------------- #
def _encode_workload(workload: ModelWorkload) -> dict[str, np.ndarray]:
    meta = {
        "model_name": workload.model_name,
        "dataset_name": workload.dataset_name,
        "layers": workload.layer_names(),
    }
    arrays: dict[str, np.ndarray] = {"meta": np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )}
    for i, layer in enumerate(workload):
        arrays[f"a{i}"] = layer.activations
        arrays[f"w{i}"] = layer.weights
    return arrays


def _decode_meta(arrays: Mapping[str, np.ndarray]) -> dict:
    return json.loads(bytes(arrays["meta"]).decode("utf-8"))


def _decode_workload(arrays: Mapping[str, np.ndarray]) -> ModelWorkload:
    meta = _decode_meta(arrays)
    workload = ModelWorkload(
        model_name=meta["model_name"], dataset_name=meta["dataset_name"]
    )
    for i, name in enumerate(meta["layers"]):
        workload.add(
            LayerWorkload(
                name=name, activations=arrays[f"a{i}"], weights=arrays[f"w{i}"]
            )
        )
    return workload


def _encode_calibration(calibration: ModelCalibration) -> dict[str, np.ndarray]:
    layers = []
    arrays: dict[str, np.ndarray] = {}
    for i, name in enumerate(calibration.layer_names()):
        layer = calibration[name]
        layers.append(
            {
                "name": name,
                "partition_size": layer.partition_size,
                "total_width": layer.total_width,
                "num_partitions": layer.num_partitions,
            }
        )
        for p, pattern_set in enumerate(layer.pattern_sets):
            arrays[f"p{i}_{p}"] = pattern_set.matrix
    config = calibration.config
    meta = {"layers": layers, "config": config.to_dict() if config else None}
    arrays["meta"] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    return arrays


def _decode_calibration(arrays: Mapping[str, np.ndarray]) -> ModelCalibration:
    meta = _decode_meta(arrays)
    config = PhiConfig.from_dict(meta["config"]) if meta["config"] else None
    calibration = ModelCalibration(config=config)
    for i, layer in enumerate(meta["layers"]):
        pattern_sets = tuple(
            PatternSet(arrays[f"p{i}_{p}"]) for p in range(layer["num_partitions"])
        )
        calibration.add(
            LayerCalibration(
                layer_name=layer["name"],
                pattern_sets=pattern_sets,
                partition_size=layer["partition_size"],
                total_width=layer["total_width"],
            )
        )
    return calibration


def _encode_decompositions(
    decompositions: "Mapping[str, MatrixDecomposition] | DecompositionArtifact",
) -> dict[str, np.ndarray]:
    # Only the per-row pattern assignments are stored: the Level 2 matrix
    # and the original tiles are deterministic functions of (activations,
    # patterns, assignments) and are rebuilt bit-exactly on load by
    # :func:`repro.core.sparsity.rebuild_decomposition`.
    if isinstance(decompositions, DecompositionArtifact):
        items = list(decompositions.assignments.items())
    else:
        items = [
            (name, decomposition.pattern_index_matrix())
            for name, decomposition in decompositions.items()
        ]
    layers = []
    arrays: dict[str, np.ndarray] = {}
    for i, (name, matrix) in enumerate(items):
        layers.append({"name": name})
        arrays[f"i{i}"] = matrix
    arrays["meta"] = np.frombuffer(
        json.dumps({"layers": layers}).encode("utf-8"), dtype=np.uint8
    )
    return arrays


class DecompositionArtifact:
    """Stored pattern assignments awaiting a workload + calibration.

    Rebuilding needs the activation matrices and pattern sets, which the
    caller already holds (they come from sibling store entries), so the
    artifact only carries the assignment matrices.
    """

    def __init__(self, assignments: dict[str, np.ndarray]) -> None:
        self.assignments = assignments

    def rebuild(
        self, workload: ModelWorkload, calibration: ModelCalibration
    ) -> dict[str, MatrixDecomposition]:
        """Bit-exact decompositions for every stored layer."""
        layers = {layer.name: layer for layer in workload}
        return {
            name: rebuild_decomposition(
                layers[name].activations,
                calibration[name].pattern_sets,
                calibration[name].partition_size,
                matrix,
            )
            for name, matrix in self.assignments.items()
        }


def _decode_decompositions(arrays: Mapping[str, np.ndarray]) -> DecompositionArtifact:
    meta = _decode_meta(arrays)
    return DecompositionArtifact(
        {layer["name"]: arrays[f"i{i}"] for i, layer in enumerate(meta["layers"])}
    )


_CODECS: dict[str, tuple[Callable, Callable]] = {
    KIND_WORKLOAD: (_encode_workload, _decode_workload),
    KIND_CALIBRATION: (_encode_calibration, _decode_calibration),
    KIND_DECOMPOSITION: (_encode_decompositions, _decode_decompositions),
    # A trace is a recorded ModelWorkload imported from outside the
    # generator (``repro.runner trace import``); it shares the workload
    # container layout but is addressed by user-chosen name.
    KIND_TRACE: (_encode_workload, _decode_workload),
}


def decode_artifact(kind: str, arrays: Mapping[str, np.ndarray]) -> Any:
    """Decode a container's arrays into an artifact of ``kind``.

    Shared with :mod:`repro.runner.shm`, whose segments carry the same
    container payload as the on-disk files.
    """
    return _CODECS[kind][1](arrays)


def _artifact_nbytes(artifact: Any) -> int:
    """Estimated array payload of a memoised artifact, in bytes."""
    if isinstance(artifact, ModelWorkload):
        return sum(
            layer.activations.nbytes + layer.weights.nbytes for layer in artifact
        )
    if isinstance(artifact, ModelCalibration):
        return sum(
            pattern_set.matrix.nbytes
            for name in artifact.layer_names()
            for pattern_set in artifact[name].pattern_sets
        )
    if isinstance(artifact, DecompositionArtifact):
        return sum(matrix.nbytes for matrix in artifact.assignments.values())
    return 0


# --------------------------------------------------------------------- #
# The store
# --------------------------------------------------------------------- #
class ArtifactStore:
    """A directory of content-addressed, mmap-readable artifacts.

    Parameters
    ----------
    root:
        Store directory (created lazily on the first ``put``); defaults
        to :func:`default_store_dir`.

    Notes
    -----
    Reads are zero-copy: ``get`` maps the artifact file with
    ``np.load(path, mmap_mode="r")`` and returns an artifact whose
    arrays are read-only views of the mapping — bytes are paged in on
    first touch and shared between every process that maps the same
    file.  Callers must treat loaded artifacts as read-only, which
    every consumer of workloads and calibrations already does (the
    views enforce it: writes raise).

    Loaded and stored artifacts are additionally memoised in-process (one
    dict per store instance, keyed by content hash), so repeated ``get``
    calls within a worker never re-open or re-decode the file.  The memo
    is bounded twice over — by entry count (``memo_entries``) and by
    estimated array bytes (``memo_budget_bytes``, which matters for
    long-lived services whose workload artifacts can each hold tens of
    MB of activations) — with FIFO eviction, and decomposition entries
    are memoised in their slim assignment-only form.

    ``hits`` / ``misses`` count ``get`` outcomes (memo and disk hits
    both count as hits) and surface in the runner's stats line and the
    bench trajectory as ``store_hits`` / ``store_misses``.
    """

    #: Maximum number of memoised artifacts per store instance.
    memo_entries = 128

    #: Approximate cap on the memo's total array payload, in bytes.
    memo_budget_bytes = 512 * 1024 * 1024

    def __init__(self, root: pathlib.Path | str | None = None) -> None:
        self.root = pathlib.Path(root) if root is not None else default_store_dir()
        self._memo: dict[str, Any] = {}
        self._memo_bytes = 0
        # One store instance is shared by every dispatcher thread of the
        # job service; the lock keeps membership checks and the FIFO
        # eviction scan coherent under that concurrency.
        self._memo_lock = threading.Lock()
        self._warned_unwritable = False
        self.hits = 0
        self.misses = 0

    def _memoise(self, key: str, artifact: Any) -> None:
        size = _artifact_nbytes(artifact)
        with self._memo_lock:
            memo = self._memo
            evicted = memo.pop(key, None)
            if evicted is not None:
                self._memo_bytes -= _artifact_nbytes(evicted)
            while memo and (
                len(memo) >= self.memo_entries
                or self._memo_bytes + size > self.memo_budget_bytes
            ):
                self._memo_bytes -= _artifact_nbytes(memo.pop(next(iter(memo))))
            memo[key] = artifact
            self._memo_bytes += size

    def _memoised(self, key: str) -> Any | None:
        with self._memo_lock:
            return self._memo.get(key)

    # ------------------------------------------------------------------ #
    def key(
        self, kind: str, payload: Mapping[str, Any], *, schema: int | None = None
    ) -> str:
        """Content hash for an artifact of ``kind`` derived from ``payload``.

        The payload must contain every input the artifact's computation
        depends on (the engine passes the workload-spec and Phi-config
        dicts); kind, store schema version and package version are mixed
        in here.  ``schema`` overrides the store schema version hashed
        into the key — used by :meth:`lookup` to probe the keys older
        releases would have written.

        Trace artifacts are *imported* data, not a derived computation,
        so their keys deliberately omit the package version: a recorded
        trace must stay addressable across releases.
        """
        from .. import __version__

        if kind not in _CODECS:
            raise ValueError(f"unknown artifact kind {kind!r}")
        return cache_key(
            {
                "kind": kind,
                "store_schema": STORE_SCHEMA_VERSION if schema is None else schema,
                "code_version": None if kind == KIND_TRACE else __version__,
                "payload": dict(payload),
            }
        )

    def trace_key(self, name: str) -> str:
        """Store key of the imported trace registered under ``name``."""
        return self.key(KIND_TRACE, {"trace": str(name)})

    def lookup(self, kind: str, payload: Mapping[str, Any]) -> tuple[str, Any | None]:
        """Current key plus the stored artifact, probing compat schemas.

        Returns ``(key, artifact)`` where ``key`` is always the
        *current*-schema key.  On a primary miss the keys of every
        schema version in :data:`COMPAT_STORE_SCHEMA_VERSIONS` are
        probed (the container layout is unchanged since v2); a compat
        hit is re-persisted under the current key so the migration
        happens once.  Trace artifacts skip the probe — the kind did
        not exist before v3.
        """
        current = self.key(kind, payload)
        artifact = self.get(kind, current)
        if artifact is not None or kind == KIND_TRACE:
            return current, artifact
        for schema in COMPAT_STORE_SCHEMA_VERSIONS:
            compat = self.key(kind, payload, schema=schema)
            # ``contains`` first: a cold probe should not inflate the
            # miss counter once per legacy schema version.
            if not self.contains(compat):
                continue
            artifact = self.get(kind, compat)
            if artifact is not None:
                self.put(kind, current, artifact)
                return current, artifact
        return current, None

    def path_for(self, key: str) -> pathlib.Path:
        """File that stores (or would store) the artifact for ``key``."""
        return self.root / key[:2] / f"{key}.npy"

    # ------------------------------------------------------------------ #
    def _count(self, field: str) -> None:
        with self._memo_lock:
            setattr(self, field, getattr(self, field) + 1)

    def load_payload(self, key: str) -> np.ndarray | None:
        """The raw container payload for ``key`` as a read-only memmap.

        ``None`` on miss or corruption.  Used by the shared-memory
        exporter, which copies the payload bytes into a segment without
        ever decoding them.
        """
        try:
            payload = np.load(self.path_for(key), mmap_mode="r")
        except (OSError, ValueError, EOFError):
            return None
        if (
            not isinstance(payload, np.ndarray)
            or payload.ndim != 1
            or payload.dtype != np.uint8
        ):
            return None
        return payload

    def get(self, kind: str, key: str) -> Any | None:
        """The stored artifact for ``key``, or ``None`` on miss.

        A corrupt or unreadable file counts as a miss: callers recompute
        and overwrite rather than fail.  Array payloads of a disk hit
        are read-only zero-copy views of the mapped file.
        """
        memoised = self._memoised(key)
        if memoised is not None:
            self._count("hits")
            return memoised
        payload = self.load_payload(key)
        if payload is not None:
            try:
                artifact = _CODECS[kind][1](unpack_arrays(payload))
            except (ValueError, KeyError, json.JSONDecodeError):
                payload = None
            else:
                self._count("hits")
                self._memoise(key, artifact)
                return artifact
        self._count("misses")
        return None

    def prime(self, key: str, artifact: Any) -> None:
        """Install ``artifact`` in the in-process memo without touching disk.

        Used by pool workers that received the artifact over shared
        memory: later ``get`` calls for ``key`` hit the memo, so the
        worker never re-reads or re-derives it.  Decomposition mappings
        are primed in their slim assignment-only form, mirroring ``put``.
        """
        if key in self._memo:
            return
        if isinstance(artifact, Mapping) and artifact and not isinstance(
            artifact, (ModelWorkload, ModelCalibration, DecompositionArtifact)
        ):
            artifact = _decode_decompositions(_encode_decompositions(artifact))
        self._memoise(key, artifact)

    def put(self, kind: str, key: str, artifact: Any) -> None:
        """Atomically persist ``artifact`` under ``key`` (and memoise it).

        Decompositions are memoised in their stored (assignment-only)
        form, not as the full matrices the producer handed in — the
        rebuild on a later ``get`` is cheap, while the full form would
        pin roughly twice the workload's memory per configuration.

        An unwritable store (read-only directory, full disk, root
        replaced by a file) degrades to compute-without-persist: the
        artifact stays memoised in this process, a one-time warning is
        emitted, and the caller's sweep proceeds — the store is an
        accelerator, never a correctness dependency.
        """
        arrays = _CODECS[kind][0](artifact)
        if kind == KIND_DECOMPOSITION:
            self._memoise(key, _CODECS[kind][1](arrays))
        else:
            self._memoise(key, artifact)
        path = self.path_for(key)
        tmp_name = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=key[:8], suffix=".tmp"
            )
            with os.fdopen(fd, "wb") as handle:
                # Stream straight to the temp file: buffering the whole
                # container in memory first would double large workloads'
                # footprint per concurrent put.  The outer ``.npy``
                # header needs the payload length up front, which
                # ``pack_arrays``'s directory provides exactly.
                prefix, blocks, size = pack_arrays(arrays)
                np.lib.format.write_array_header_1_0(
                    handle,
                    {"descr": "|u1", "fortran_order": False, "shape": (size,)},
                )
                written = write_packed(handle, prefix, blocks)
                if written != size:
                    raise ValueError(
                        f"container size mismatch: wrote {written}, declared {size}"
                    )
            os.replace(tmp_name, path)
        except BaseException as error:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            if not isinstance(error, OSError):
                raise
            if not self._warned_unwritable:
                self._warned_unwritable = True
                warnings.warn(
                    f"artifact store {self.root} is not writable ({error}); "
                    "continuing without persisting shared artifacts",
                    RuntimeWarning,
                    stacklevel=2,
                )

    def contains(self, key: str) -> bool:
        """Whether an artifact for ``key`` is memoised or on disk."""
        return self._memoised(key) is not None or self.path_for(key).exists()

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.npy"))

    def clear(self) -> int:
        """Delete every stored artifact; returns the number removed."""
        with self._memo_lock:
            self._memo.clear()
            self._memo_bytes = 0
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("*/*.npy"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
