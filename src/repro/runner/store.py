"""Content-addressed on-disk store for shared sweep artifacts.

The expensive state a sweep point needs before any cycle-level simulation
— the generated workload (an SNN forward pass), the k-means Phi
calibration and the two-level activation decomposition — is a pure
function of ``(workload spec, PhiConfig)``.  The :class:`ArtifactStore`
persists each of these under a content hash of exactly those inputs (plus
the package version and a store schema version), so they are computed
once per configuration *ever*: parallel workers, later runs and other
experiments all load the stored artifact instead of re-deriving it.

Storage is one ``.npz`` file per artifact, fanned out over two-hex-digit
subdirectories like the result cache, written atomically (temp file +
``os.replace``) so concurrent writers can never corrupt an entry and a
killed worker can never leave a half-written file behind.  Concurrent
writers of the same key compute identical content — whichever replace
lands last wins, harmlessly.  A corrupt or unreadable file is treated as
a miss and recomputed, mirroring the result cache's semantics.

Array payloads round-trip bit-exactly through ``.npz``, so a loaded
artifact is indistinguishable from a freshly computed one; the golden
regression suite and the report manifest check pin this.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import threading
import warnings
from typing import Any, Callable, Mapping

import numpy as np

from ..core.calibration import LayerCalibration, ModelCalibration
from ..core.config import PhiConfig
from ..core.patterns import PatternSet
from ..core.sparsity import MatrixDecomposition, rebuild_decomposition
from ..workloads.workload import LayerWorkload, ModelWorkload
from .cache import cache_key

#: Bump on ANY change to artifact layouts or to the deterministic
#: computations they capture (workload generation, calibration,
#: decomposition).  The package version is hashed into every key too, so
#: releases invalidate the store even when this stays constant.
STORE_SCHEMA_VERSION = 1

#: Artifact kinds the store recognises (part of every key payload).
KIND_WORKLOAD = "workload"
KIND_CALIBRATION = "calibration"
KIND_DECOMPOSITION = "decomposition"


def default_store_dir() -> pathlib.Path:
    """The default artifact store location.

    ``REPRO_STORE_DIR`` overrides it; otherwise artifacts live next to
    the result cache under the XDG cache home so repeated sweeps share
    calibrations across checkouts.
    """
    env = os.environ.get("REPRO_STORE_DIR")
    if env:
        return pathlib.Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg) if xdg else pathlib.Path.home() / ".cache"
    return base / "phi-repro" / "store"


# --------------------------------------------------------------------- #
# npz codecs (one pair per artifact kind)
# --------------------------------------------------------------------- #
def _encode_workload(workload: ModelWorkload) -> dict[str, np.ndarray]:
    meta = {
        "model_name": workload.model_name,
        "dataset_name": workload.dataset_name,
        "layers": workload.layer_names(),
    }
    arrays: dict[str, np.ndarray] = {"meta": np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )}
    for i, layer in enumerate(workload):
        arrays[f"a{i}"] = layer.activations
        arrays[f"w{i}"] = layer.weights
    return arrays


def _decode_meta(arrays: Mapping[str, np.ndarray]) -> dict:
    return json.loads(bytes(arrays["meta"]).decode("utf-8"))


def _decode_workload(arrays: Mapping[str, np.ndarray]) -> ModelWorkload:
    meta = _decode_meta(arrays)
    workload = ModelWorkload(
        model_name=meta["model_name"], dataset_name=meta["dataset_name"]
    )
    for i, name in enumerate(meta["layers"]):
        workload.add(
            LayerWorkload(
                name=name, activations=arrays[f"a{i}"], weights=arrays[f"w{i}"]
            )
        )
    return workload


def _encode_calibration(calibration: ModelCalibration) -> dict[str, np.ndarray]:
    layers = []
    arrays: dict[str, np.ndarray] = {}
    for i, name in enumerate(calibration.layer_names()):
        layer = calibration[name]
        layers.append(
            {
                "name": name,
                "partition_size": layer.partition_size,
                "total_width": layer.total_width,
                "num_partitions": layer.num_partitions,
            }
        )
        for p, pattern_set in enumerate(layer.pattern_sets):
            arrays[f"p{i}_{p}"] = pattern_set.matrix
    config = calibration.config
    meta = {"layers": layers, "config": config.to_dict() if config else None}
    arrays["meta"] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    return arrays


def _decode_calibration(arrays: Mapping[str, np.ndarray]) -> ModelCalibration:
    meta = _decode_meta(arrays)
    config = PhiConfig.from_dict(meta["config"]) if meta["config"] else None
    calibration = ModelCalibration(config=config)
    for i, layer in enumerate(meta["layers"]):
        pattern_sets = tuple(
            PatternSet(arrays[f"p{i}_{p}"]) for p in range(layer["num_partitions"])
        )
        calibration.add(
            LayerCalibration(
                layer_name=layer["name"],
                pattern_sets=pattern_sets,
                partition_size=layer["partition_size"],
                total_width=layer["total_width"],
            )
        )
    return calibration


def _encode_decompositions(
    decompositions: Mapping[str, MatrixDecomposition],
) -> dict[str, np.ndarray]:
    # Only the per-row pattern assignments are stored: the Level 2 matrix
    # and the original tiles are deterministic functions of (activations,
    # patterns, assignments) and are rebuilt bit-exactly on load by
    # :func:`repro.core.sparsity.rebuild_decomposition`.
    layers = []
    arrays: dict[str, np.ndarray] = {}
    for i, (name, decomposition) in enumerate(decompositions.items()):
        layers.append({"name": name})
        arrays[f"i{i}"] = decomposition.pattern_index_matrix()
    arrays["meta"] = np.frombuffer(
        json.dumps({"layers": layers}).encode("utf-8"), dtype=np.uint8
    )
    return arrays


class DecompositionArtifact:
    """Stored pattern assignments awaiting a workload + calibration.

    Rebuilding needs the activation matrices and pattern sets, which the
    caller already holds (they come from sibling store entries), so the
    artifact only carries the assignment matrices.
    """

    def __init__(self, assignments: dict[str, np.ndarray]) -> None:
        self.assignments = assignments

    def rebuild(
        self, workload: ModelWorkload, calibration: ModelCalibration
    ) -> dict[str, MatrixDecomposition]:
        """Bit-exact decompositions for every stored layer."""
        layers = {layer.name: layer for layer in workload}
        return {
            name: rebuild_decomposition(
                layers[name].activations,
                calibration[name].pattern_sets,
                calibration[name].partition_size,
                matrix,
            )
            for name, matrix in self.assignments.items()
        }


def _decode_decompositions(arrays: Mapping[str, np.ndarray]) -> DecompositionArtifact:
    meta = _decode_meta(arrays)
    return DecompositionArtifact(
        {layer["name"]: arrays[f"i{i}"] for i, layer in enumerate(meta["layers"])}
    )


_CODECS: dict[str, tuple[Callable, Callable]] = {
    KIND_WORKLOAD: (_encode_workload, _decode_workload),
    KIND_CALIBRATION: (_encode_calibration, _decode_calibration),
    KIND_DECOMPOSITION: (_encode_decompositions, _decode_decompositions),
}


def _artifact_nbytes(artifact: Any) -> int:
    """Estimated array payload of a memoised artifact, in bytes."""
    if isinstance(artifact, ModelWorkload):
        return sum(
            layer.activations.nbytes + layer.weights.nbytes for layer in artifact
        )
    if isinstance(artifact, ModelCalibration):
        return sum(
            pattern_set.matrix.nbytes
            for name in artifact.layer_names()
            for pattern_set in artifact[name].pattern_sets
        )
    if isinstance(artifact, DecompositionArtifact):
        return sum(matrix.nbytes for matrix in artifact.assignments.values())
    return 0


# --------------------------------------------------------------------- #
# The store
# --------------------------------------------------------------------- #
class ArtifactStore:
    """A directory of content-addressed ``.npz`` artifacts with a memo.

    Parameters
    ----------
    root:
        Store directory (created lazily on the first ``put``); defaults
        to :func:`default_store_dir`.

    Notes
    -----
    Loaded and stored artifacts are additionally memoised in-process (one
    dict per store instance, keyed by content hash), so repeated ``get``
    calls within a worker never re-read or re-decode the file.  The memo
    is bounded twice over — by entry count (``memo_entries``) and by
    estimated array bytes (``memo_budget_bytes``, which matters for
    long-lived services whose workload artifacts can each hold tens of
    MB of activations) — with FIFO eviction, and decomposition entries
    are memoised in their slim assignment-only form.  The memo holds the
    decoded objects themselves; callers must treat them as read-only,
    which every consumer of workloads and calibrations already does.
    """

    #: Maximum number of memoised artifacts per store instance.
    memo_entries = 128

    #: Approximate cap on the memo's total array payload, in bytes.
    memo_budget_bytes = 512 * 1024 * 1024

    def __init__(self, root: pathlib.Path | str | None = None) -> None:
        self.root = pathlib.Path(root) if root is not None else default_store_dir()
        self._memo: dict[str, Any] = {}
        self._memo_bytes = 0
        # One store instance is shared by every dispatcher thread of the
        # job service; the lock keeps membership checks and the FIFO
        # eviction scan coherent under that concurrency.
        self._memo_lock = threading.Lock()
        self._warned_unwritable = False

    def _memoise(self, key: str, artifact: Any) -> None:
        size = _artifact_nbytes(artifact)
        with self._memo_lock:
            memo = self._memo
            evicted = memo.pop(key, None)
            if evicted is not None:
                self._memo_bytes -= _artifact_nbytes(evicted)
            while memo and (
                len(memo) >= self.memo_entries
                or self._memo_bytes + size > self.memo_budget_bytes
            ):
                self._memo_bytes -= _artifact_nbytes(memo.pop(next(iter(memo))))
            memo[key] = artifact
            self._memo_bytes += size

    def _memoised(self, key: str) -> Any | None:
        with self._memo_lock:
            return self._memo.get(key)

    # ------------------------------------------------------------------ #
    def key(self, kind: str, payload: Mapping[str, Any]) -> str:
        """Content hash for an artifact of ``kind`` derived from ``payload``.

        The payload must contain every input the artifact's computation
        depends on (the engine passes the workload-spec and Phi-config
        dicts); kind, store schema version and package version are mixed
        in here.
        """
        from .. import __version__

        if kind not in _CODECS:
            raise ValueError(f"unknown artifact kind {kind!r}")
        return cache_key(
            {
                "kind": kind,
                "store_schema": STORE_SCHEMA_VERSION,
                "code_version": __version__,
                "payload": dict(payload),
            }
        )

    def path_for(self, key: str) -> pathlib.Path:
        """File that stores (or would store) the artifact for ``key``."""
        return self.root / key[:2] / f"{key}.npz"

    # ------------------------------------------------------------------ #
    def get(self, kind: str, key: str) -> Any | None:
        """The stored artifact for ``key``, or ``None`` on miss.

        A corrupt or unreadable file counts as a miss: callers recompute
        and overwrite rather than fail.
        """
        memoised = self._memoised(key)
        if memoised is not None:
            return memoised
        path = self.path_for(key)
        try:
            with np.load(path) as data:
                artifact = _CODECS[kind][1](data)
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            return None
        self._memoise(key, artifact)
        return artifact

    def put(self, kind: str, key: str, artifact: Any) -> None:
        """Atomically persist ``artifact`` under ``key`` (and memoise it).

        Decompositions are memoised in their stored (assignment-only)
        form, not as the full matrices the producer handed in — the
        rebuild on a later ``get`` is cheap, while the full form would
        pin roughly twice the workload's memory per configuration.

        An unwritable store (read-only directory, full disk, root
        replaced by a file) degrades to compute-without-persist: the
        artifact stays memoised in this process, a one-time warning is
        emitted, and the caller's sweep proceeds — the store is an
        accelerator, never a correctness dependency.
        """
        arrays = _CODECS[kind][0](artifact)
        if kind == KIND_DECOMPOSITION:
            self._memoise(key, _CODECS[kind][1](arrays))
        else:
            self._memoise(key, artifact)
        path = self.path_for(key)
        tmp_name = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=key[:8], suffix=".tmp"
            )
            with os.fdopen(fd, "wb") as handle:
                # Stream straight to the temp file: buffering the whole
                # archive in memory first would double large workloads'
                # footprint per concurrent put.
                np.savez(handle, **arrays)
            os.replace(tmp_name, path)
        except BaseException as error:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            if not isinstance(error, OSError):
                raise
            if not self._warned_unwritable:
                self._warned_unwritable = True
                warnings.warn(
                    f"artifact store {self.root} is not writable ({error}); "
                    "continuing without persisting shared artifacts",
                    RuntimeWarning,
                    stacklevel=2,
                )

    def contains(self, key: str) -> bool:
        """Whether an artifact for ``key`` is memoised or on disk."""
        return self._memoised(key) is not None or self.path_for(key).exists()

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.npz"))

    def clear(self) -> int:
        """Delete every stored artifact; returns the number removed."""
        with self._memo_lock:
            self._memo.clear()
            self._memo_bytes = 0
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.glob("*/*.npz"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
