"""Command-line entry point for the parallel sweep engine.

Examples
--------
Run the Fig. 7 design-space exploration on 4 workers with the on-disk
cache (the second invocation is served almost entirely from cache)::

    python -m repro.runner fig7 --scale small --jobs 4

Other figures, any registered experiment, and a generic grid sweep::

    python -m repro.runner fig8 --jobs 4
    python -m repro.runner fig12
    python -m repro.runner exp table4 --scale tiny --jobs 4
    python -m repro.runner exp temporal --scale tiny
    python -m repro.runner sweep --model vgg16 --dataset cifar100 \
        --patterns 8,16,32,64 --jobs 4
    python -m repro.runner trace import dump.npz --name mytrace
    python -m repro.runner sweep --trace mytrace --patterns 16,32
    python -m repro.runner cache --clear
    python -m repro.runner store --clear
    python -m repro.runner validate-cache

``trace import`` registers recorded activations (an ``.npz`` with paired
``act:<layer>`` / ``weight:<layer>`` arrays) as a first-class store
artifact; ``sweep --trace`` then simulates the imported workload instead
of a generated one.

``exp`` accepts every name in the experiment registry
(:mod:`repro.experiments.registry`); the full multi-experiment report is
``python -m repro.report``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from .cache import ResultCache, default_cache_dir
from .engine import SweepEngine, SweepPoint, WorkloadSpec
from .store import KIND_TRACE, ArtifactStore, default_store_dir


def _scale(name: str):
    from ..experiments.common import SCALE_TIERS

    return SCALE_TIERS[name]


def _engine_from_args(args: argparse.Namespace) -> SweepEngine:
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    store = None if args.no_store else ArtifactStore(args.store_dir)
    return SweepEngine(
        cache=cache, jobs=args.jobs, progress=not args.quiet, store=store
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    from ..experiments.common import SCALE_TIERS

    parser.add_argument(
        "--scale",
        choices=tuple(SCALE_TIERS),
        default="small",
        help="experiment scale (default: small)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes (default: 1 = serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=default_cache_dir(),
        help="result cache directory (default: %(default)s)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk result cache"
    )
    parser.add_argument(
        "--store-dir",
        default=default_store_dir(),
        help="shared artifact store directory (default: %(default)s)",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="disable the shared workload/calibration store",
    )
    parser.add_argument(
        "--quiet", "-q", action="store_true", help="suppress progress output"
    )
    parser.add_argument(
        "--remote",
        default=None,
        metavar="URL",
        help=(
            "submit to a running `python -m repro.service serve` instead of "
            "simulating locally (e.g. http://127.0.0.1:8731)"
        ),
    )


def _report(engine: SweepEngine, elapsed: float) -> None:
    stats = engine.stats
    store_line = ""
    if engine.store is not None:
        # Parent-process counts only: parallel workers keep their own
        # store instances, so this understates hits under --jobs > 1.
        store_line = (
            f", {engine.store.hits} store hits, {engine.store.misses} store misses"
        )
    print(
        f"\n{stats.requested} points, {stats.cache_hits} cache hits, "
        f"{stats.executed} simulated{store_line}, {elapsed:.2f}s wall-clock"
    )


def _run_remote(
    args: argparse.Namespace, name: str, overrides: dict | None = None
) -> int:
    """Execute a registered experiment on a remote sweep service.

    Submits ``(name, scale, overrides)`` as a job, waits for it, and
    renders the returned section payload — so the remote path produces
    the same Markdown as ``python -m repro.report --only <name>`` while
    all simulation happens in the service's warm engine.
    """
    from ..experiments.registry import get_experiment
    from ..report.emitters import section_markdown
    from ..service.client import ServiceClient, ServiceError

    client = ServiceClient(args.remote)
    start = time.perf_counter()
    try:
        job = client.submit(name, scale=args.scale, overrides=overrides or {})
        if not args.quiet and job.get("deduplicated"):
            print(f"joined in-flight job {job['id']}", file=sys.stderr)
        if job["status"] != "done":
            job = client.wait_for(job["id"])
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - start
    print(section_markdown(get_experiment(name), job["payload"]))
    progress = job["progress"]
    print(
        f"\n{progress['points']} points via {args.remote} "
        f"(job {job['id']}): {progress['cache_hits']} cache hits, "
        f"{progress['executed']} simulated, "
        f"{progress['inflight_hits']} shared in-flight, "
        f"{elapsed:.2f}s wall-clock"
    )
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    from ..experiments.fig7 import run_fig7

    if args.remote:
        return _run_remote(args, "fig7")
    with _engine_from_args(args) as engine:
        start = time.perf_counter()
        result = run_fig7(_scale(args.scale), engine=engine)
        elapsed = time.perf_counter() - start
    print(result.formatted())
    _report(engine, elapsed)
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    from ..experiments.fig8 import DEFAULT_WORKLOADS, FULL_WORKLOADS, run_fig8

    workloads = FULL_WORKLOADS if args.full else DEFAULT_WORKLOADS
    if args.remote:
        # Always send the workload list: the local path runs exactly
        # these workloads, and omitting them would let the registry's
        # per-tier presets pick a different set remotely.
        overrides = {"workloads": [list(pair) for pair in workloads]}
        return _run_remote(args, "fig8", overrides)
    with _engine_from_args(args) as engine:
        start = time.perf_counter()
        result = run_fig8(_scale(args.scale), workloads=workloads, engine=engine)
        elapsed = time.perf_counter() - start
    print(result.formatted())
    _report(engine, elapsed)
    return 0


def _cmd_fig12(args: argparse.Namespace) -> int:
    from ..experiments.fig12 import run_fig12

    if args.remote:
        return _run_remote(args, "fig12")
    with _engine_from_args(args) as engine:
        start = time.perf_counter()
        result = run_fig12(_scale(args.scale), engine=engine)
        elapsed = time.perf_counter() - start
    print(result.formatted())
    _report(engine, elapsed)
    return 0


def _cmd_exp(args: argparse.Namespace) -> int:
    from ..experiments.registry import get_experiment
    from ..report.emitters import build_payload, section_markdown

    if args.remote:
        return _run_remote(args, args.name)
    spec = get_experiment(args.name)
    with _engine_from_args(args) as engine:
        start = time.perf_counter()
        result = spec.run(args.scale, engine=engine)
        elapsed = time.perf_counter() - start
    print(section_markdown(spec, build_payload(spec, result)))
    _report(engine, elapsed)
    return 0


def load_trace_npz(path: pathlib.Path | str, *, model: str) -> "ModelWorkload":
    """Parse a trace ``.npz`` dump into a :class:`ModelWorkload`.

    The archive must hold one ``act:<layer>`` binary activation matrix
    and one ``weight:<layer>`` weight matrix per recorded GEMM; layers
    keep the archive's order.  Any structural problem — unreadable
    archive, unpaired arrays, shape/K mismatches, non-binary activations
    — raises ``ValueError`` with the offending layer named.
    """
    import numpy as np

    from ..workloads.workload import LayerWorkload, ModelWorkload

    try:
        archive = np.load(path)
        files = list(archive.files)
    except Exception as error:
        raise ValueError(f"cannot read trace archive {path}: {error}") from error
    names = [key[len("act:"):] for key in files if key.startswith("act:")]
    if not names:
        raise ValueError(
            f"trace archive {path} holds no 'act:<layer>' arrays; expected "
            "paired 'act:<layer>' / 'weight:<layer>' entries"
        )
    expected = {f"act:{n}" for n in names} | {f"weight:{n}" for n in names}
    stray = sorted(set(files) - expected)
    missing = sorted(expected - set(files))
    if missing or stray:
        raise ValueError(
            f"trace archive {path} is malformed: "
            f"missing {missing or 'nothing'}, unexpected {stray or 'nothing'}"
        )
    workload = ModelWorkload(model_name=model, dataset_name="trace")
    for name in names:
        try:
            workload.add(
                LayerWorkload(
                    name=name,
                    activations=archive[f"act:{name}"],
                    weights=archive[f"weight:{name}"],
                )
            )
        except ValueError as error:
            raise ValueError(f"trace layer {name!r}: {error}") from error
    return workload


def _trace_summary(name: str, workload) -> str:
    from ..experiments.common import format_table

    rows = [
        {
            "layer": layer.name,
            "M": layer.m,
            "K": layer.k,
            "N": layer.n,
            "bit_density": round(layer.bit_density, 4),
        }
        for layer in workload
    ]
    header = (
        f"trace {name!r}: {len(workload)} layers, "
        f"model {workload.model_name!r}"
    )
    return header + "\n" + format_table(rows)


def _cmd_trace(args: argparse.Namespace) -> int:
    store = ArtifactStore(args.store_dir)
    if args.trace_command == "import":
        path = pathlib.Path(args.npz)
        name = args.name or path.stem
        try:
            workload = load_trace_npz(path, model=args.model or name)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        key = store.trace_key(name)
        store.put(KIND_TRACE, key, workload)
        stored = store.get(KIND_TRACE, key)
        if stored is None:
            print(
                f"error: trace {name!r} could not be persisted to {store.root}",
                file=sys.stderr,
            )
            return 1
        print(_trace_summary(name, stored))
        print(f"registered as {key} in {store.root}")
        return 0
    workload = store.get(KIND_TRACE, store.trace_key(args.name))
    if workload is None:
        print(
            f"error: trace {args.name!r} not found in {store.root}; "
            "register it with 'python -m repro.runner trace import <npz>'",
            file=sys.stderr,
        )
        return 1
    print(_trace_summary(args.name, workload))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from ..experiments.common import format_table

    if args.remote:
        print(
            "error: `sweep` builds ad-hoc grids and cannot run remotely; "
            "use a registered experiment (`exp <name> --remote URL`)",
            file=sys.stderr,
        )
        return 2
    scale = _scale(args.scale)
    pattern_counts = [int(q) for q in args.patterns.split(",") if q]
    if args.trace:
        if args.no_store:
            print(
                "error: --trace needs the artifact store (drop --no-store)",
                file=sys.stderr,
            )
            return 2
        spec = WorkloadSpec.from_trace(args.trace)
    else:
        spec = WorkloadSpec(
            model=args.model,
            dataset=args.dataset,
            batch_size=scale.batch_size,
            num_steps=scale.num_steps,
        )
    points = [
        SweepPoint(
            workload=spec,
            arch=scale.arch_config(num_patterns=q),
            phi=scale.phi_config(num_patterns=q),
            label=f"phi:{spec.key}:q={q}",
        )
        for q in pattern_counts
    ]
    with _engine_from_args(args) as engine:
        start = time.perf_counter()
        records = engine.run(points)
        elapsed = time.perf_counter() - start
    rows = [
        {
            "num_patterns": q,
            "total_cycles": record["total_cycles"],
            "throughput_gops": record["throughput_gops"],
            "energy_joules": record["energy_joules"],
            "dram_bytes": record["total_dram_bytes"],
        }
        for q, record in zip(pattern_counts, records)
    ]
    print(format_table(rows))
    _report(engine, elapsed)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.clear:
        removed = cache.clear()
        print(f"removed {removed} cached records from {cache.root}")
    else:
        print(f"{len(cache)} cached records in {cache.root}")
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    store = ArtifactStore(args.store_dir)
    if args.clear:
        removed = store.clear()
        print(f"removed {removed} stored artifacts from {store.root}")
    else:
        print(f"{len(store)} stored artifacts in {store.root}")
    return 0


def _cmd_validate_cache(args: argparse.Namespace) -> int:
    from .engine import CACHE_SCHEMA_VERSION, validate_record

    cache = ResultCache(args.cache_dir)
    valid = legacy = skipped = total = 0
    problems: list[str] = []
    start = time.perf_counter()
    for path, record in cache.records(include_corrupt=True):
        total += 1
        if record is None:
            # The engine treats a corrupt file as a miss, but an auditor
            # must report it — silently passing defeats the point.
            problems.append(f"{path}: unreadable or corrupt JSON")
            continue
        if not isinstance(record, dict):
            problems.append(f"{path}: record is {type(record).__name__}, expected dict")
            continue
        if "schema" not in record:
            # Every sweep record since v3 embeds its own "schema" field,
            # so that — not any payload key a broken record might have
            # lost — is the sweep/section discriminator: schema-less
            # entries are pre-v3 sweep records (dead keys, counted as
            # legacy) or report-section payloads, which are validated by
            # the report pipeline, not the sweep schema.
            if "accelerator" in record:
                legacy += 1
            else:
                skipped += 1
            continue
        if record.get("schema") != CACHE_SCHEMA_VERSION:
            # Pre-v3 records hash to keys the engine can no longer
            # produce; they are dead weight, never a correctness risk.
            legacy += 1
            continue
        issues = validate_record(record)
        if issues:
            problems.append(f"{path}: " + "; ".join(issues))
        else:
            valid += 1
    elapsed = time.perf_counter() - start
    rate = total / elapsed if elapsed > 0 else float("inf")
    print(
        f"{valid} valid v{CACHE_SCHEMA_VERSION} records, {legacy} legacy "
        f"records ignored, {skipped} non-sweep entries skipped, "
        f"{len(problems)} invalid in {cache.root}"
    )
    print(f"validated {total} records in {elapsed:.2f}s ({rate:.0f} records/s)")
    for problem in problems:
        print(f"INVALID {problem}", file=sys.stderr)
    return 1 if problems else 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.runner`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Parallel, cached sweeps over the Phi simulator.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, func, doc in (
        ("fig7", _cmd_fig7, "Fig. 7 design-space exploration"),
        ("fig8", _cmd_fig8, "Fig. 8 speedup / energy comparison"),
        ("fig12", _cmd_fig12, "Fig. 12 memory-traffic comparison"),
    ):
        p = sub.add_parser(name, help=doc)
        _add_common(p)
        p.set_defaults(func=func)
        if name == "fig8":
            p.add_argument(
                "--full",
                action="store_true",
                help="run the paper's full 12-workload list",
            )

    p = sub.add_parser("exp", help="run any registered experiment by name")
    p.add_argument("name", help="experiment name (see python -m repro.report --list)")
    _add_common(p)
    p.set_defaults(func=_cmd_exp)

    p = sub.add_parser("sweep", help="generic pattern-count grid sweep")
    _add_common(p)
    p.add_argument("--model", default="vgg16")
    p.add_argument("--dataset", default="cifar100")
    p.add_argument(
        "--patterns",
        default="8,16,32,64,128",
        help="comma-separated pattern counts (default: %(default)s)",
    )
    p.add_argument(
        "--trace",
        default=None,
        metavar="NAME",
        help="sweep an imported trace instead of a generated model workload",
    )
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "trace", help="import or inspect recorded activation traces"
    )
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    pi = trace_sub.add_parser(
        "import", help="register an .npz activation dump as a store artifact"
    )
    pi.add_argument("npz", help="archive with paired act:<layer>/weight:<layer> arrays")
    pi.add_argument("--name", default=None, help="trace name (default: npz stem)")
    pi.add_argument("--model", default=None, help="model label (default: trace name)")
    pi.add_argument("--store-dir", default=default_store_dir())
    pi.set_defaults(func=_cmd_trace)
    ps = trace_sub.add_parser("show", help="summarise a registered trace")
    ps.add_argument("name", help="trace name used at import time")
    ps.add_argument("--store-dir", default=default_store_dir())
    ps.set_defaults(func=_cmd_trace)

    p = sub.add_parser("cache", help="inspect or clear the result cache")
    p.add_argument("--cache-dir", default=default_cache_dir())
    p.add_argument("--clear", action="store_true", help="delete all cached records")
    p.set_defaults(func=_cmd_cache)

    p = sub.add_parser("store", help="inspect or clear the shared artifact store")
    p.add_argument("--store-dir", default=default_store_dir())
    p.add_argument("--clear", action="store_true", help="delete all stored artifacts")
    p.set_defaults(func=_cmd_store)

    p = sub.add_parser(
        "validate-cache",
        help="check every cached sweep record against the v3 schema",
    )
    p.add_argument("--cache-dir", default=default_cache_dir())
    p.set_defaults(func=_cmd_validate_cache)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to the selected subcommand."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
