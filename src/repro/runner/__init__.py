"""Parallel sweep engine with on-disk content-addressed caches.

The runner decouples *what* an experiment sweeps (a grid of
``(PhiConfig, ArchConfig, workload)`` points) from *how* the grid is
executed (serial, multi-process, cached).  Experiments build
:class:`SweepPoint` lists and hand them to a :class:`SweepEngine`; the
engine returns JSON-friendly records and memoises each one under the
SHA-256 hash of the point's full configuration.  An optional
:class:`ArtifactStore` additionally shares the expensive intermediate
state — generated workloads, k-means calibrations, activation
decompositions — across workers and runs.

See ``python -m repro.runner --help`` for the CLI.
"""

from .cache import ResultCache, cache_key, default_cache_dir
from .engine import (
    CACHE_SCHEMA_VERSION,
    DECOMPOSITION,
    SweepEngine,
    SweepPoint,
    SweepStats,
    WorkloadSpec,
    aligned_workload,
    calibration_for,
    default_engine,
    model_for,
    progress_scope,
    simulate_many,
    simulate_point,
    summarize_run,
    summarize_simulation,
    validate_record,
)
from .store import STORE_SCHEMA_VERSION, ArtifactStore, default_store_dir

__all__ = [
    "ArtifactStore",
    "CACHE_SCHEMA_VERSION",
    "DECOMPOSITION",
    "ResultCache",
    "STORE_SCHEMA_VERSION",
    "SweepEngine",
    "SweepPoint",
    "SweepStats",
    "WorkloadSpec",
    "aligned_workload",
    "cache_key",
    "calibration_for",
    "default_cache_dir",
    "default_engine",
    "default_store_dir",
    "model_for",
    "progress_scope",
    "simulate_many",
    "simulate_point",
    "summarize_run",
    "summarize_simulation",
    "validate_record",
]
