"""Parallel sweep engine with an on-disk content-addressed result cache.

The runner decouples *what* an experiment sweeps (a grid of
``(PhiConfig, ArchConfig, workload)`` points) from *how* the grid is
executed (serial, multi-process, cached).  Experiments build
:class:`SweepPoint` lists and hand them to a :class:`SweepEngine`; the
engine returns JSON-friendly records and memoises each one under the
SHA-256 hash of the point's full configuration.

See ``python -m repro.runner --help`` for the CLI.
"""

from .cache import ResultCache, cache_key, default_cache_dir
from .engine import (
    CACHE_SCHEMA_VERSION,
    DECOMPOSITION,
    SweepEngine,
    SweepPoint,
    SweepStats,
    WorkloadSpec,
    aligned_workload,
    calibration_for,
    default_engine,
    model_for,
    simulate_many,
    simulate_point,
    summarize_run,
    summarize_simulation,
    validate_record,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DECOMPOSITION",
    "ResultCache",
    "SweepEngine",
    "SweepPoint",
    "SweepStats",
    "WorkloadSpec",
    "aligned_workload",
    "cache_key",
    "calibration_for",
    "default_cache_dir",
    "default_engine",
    "model_for",
    "simulate_many",
    "simulate_point",
    "summarize_run",
    "summarize_simulation",
    "validate_record",
]
