"""Content-addressed on-disk cache for sweep results.

Every sweep point is summarised into a JSON-serialisable record; the cache
key is the SHA-256 hash of the point's canonical JSON payload (algorithm
config, architecture config, workload spec, package version and schema
version), so any configuration change yields a different key and an
automatic invalidation.  Simulator *code* changes are covered only by the
package version / schema version fields — a change that alters results
without bumping either must bump ``CACHE_SCHEMA_VERSION`` (see
``engine.py``), which is why the golden regression suite pins simulator
outputs: it turns silent semantic drift into a test failure.  Records are stored one file per key, fanned
out over 256 two-hex-digit subdirectories, and written atomically so a
killed worker can never leave a half-written record behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from typing import Any, Mapping


def default_cache_dir() -> pathlib.Path:
    """The default on-disk cache location.

    ``REPRO_CACHE_DIR`` overrides it; otherwise results live under the
    XDG cache home so repeated sweeps share work across checkouts.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg) if xdg else pathlib.Path.home() / ".cache"
    return base / "phi-repro" / "sweeps"


def cache_key(payload: Mapping[str, Any]) -> str:
    """SHA-256 of the canonical JSON encoding of ``payload``.

    Parameters
    ----------
    payload:
        Any JSON-serialisable mapping; key order does not matter (keys
        are sorted before hashing).

    Returns
    -------
    str
        64-character lowercase hex digest.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of content-addressed JSON records.

    Parameters
    ----------
    root:
        Cache directory (created lazily on the first ``put``); defaults
        to :func:`default_cache_dir`.  Both the sweep engine's point
        records and the report pipeline's section payloads live here,
        under disjoint content-hash keys.
    """

    def __init__(self, root: pathlib.Path | str | None = None) -> None:
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()

    def path_for(self, key: str) -> pathlib.Path:
        """File that stores (or would store) the record for ``key``."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The cached record for ``key``, or ``None`` on miss.

        A corrupt or unreadable file counts as a miss: sweeps recompute and
        overwrite rather than fail.
        """
        path = self.path_for(key)
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return None

    def put(self, key: str, record: Mapping[str, Any]) -> None:
        """Atomically persist ``record`` under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def record_paths(self) -> list[pathlib.Path]:
        """All cached record files, sorted — the single traversal that
        :meth:`records` and :meth:`__len__` share."""
        if not self.root.exists():
            return []
        return sorted(self.root.glob("*/*.json"))

    def records(self, *, include_corrupt: bool = False):
        """Yield ``(path, record)`` for every cached JSON record.

        Unreadable or corrupt files are skipped by default, mirroring
        :meth:`get`'s miss semantics; with ``include_corrupt=True`` they
        are yielded as ``(path, None)`` instead, so auditors
        (``python -m repro.runner validate-cache``) can report them
        rather than silently pass.
        """
        for path in self.record_paths():
            try:
                record = json.loads(path.read_text())
            except (OSError, ValueError):
                if include_corrupt and path.exists():
                    yield path, None
                continue
            yield path, record

    def snapshot(self) -> dict[str, dict]:
        """A point-in-time ``{key: record}`` view of every readable record.

        Safe under concurrent writers: the directory listing is taken
        once, files that vanish or are mid-replace read as misses (all
        writes are atomic ``os.replace``), and the returned mapping never
        mutates afterwards.  The key is recovered from the file name, so
        ``snapshot()[k] == get(k)`` for every returned key.
        """
        return {path.stem: record for path, record in self.records()}

    def __len__(self) -> int:
        return len(self.record_paths())

    def clear(self) -> int:
        """Delete every cached record; returns the number removed."""
        removed = 0
        for path in self.record_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
