"""Shared experiment infrastructure: scales, caching, formatting.

Every experiment harness accepts an :class:`ExperimentScale` so the same
code runs as a quick smoke test (``TINY``), as the default benchmark
(``SMALL``) or at a larger setting closer to the paper's configuration
(``PAPER``).  Note that even ``PAPER`` uses the scaled-down model zoo; see
DESIGN.md for the substitution rationale.

Workloads, calibrations and simulation results are shared through the
:mod:`repro.runner` layer: workload generation is memoised in-process,
calibrations are memoised per ``(workload, PhiConfig)`` pair, and sweeps
routed through a :class:`~repro.runner.SweepEngine` additionally reuse
results across processes and runs via the on-disk cache (DESIGN.md
describes the architecture).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.calibration import ModelCalibration
from ..core.config import PhiConfig
from ..hw.config import ArchConfig
from ..runner.engine import WorkloadSpec, calibration_for
from ..workloads.generator import cached_workload
from ..workloads.workload import ModelWorkload


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade experiment fidelity for runtime.

    Attributes
    ----------
    batch_size:
        Inference batch recorded for each workload.
    num_steps:
        SNN simulation time steps.
    num_patterns:
        Patterns per partition (q).  The paper uses 128; on the scaled
        model zoo the compute/memory balance point sits lower (the Fig. 7c
        sweep reproduces this), so the default benchmark scale uses 64.
    partition_size:
        Partition width (k); 16 throughout, as in the paper.
    calibration_samples:
        Calibration rows sampled per layer.
    """

    batch_size: int = 8
    num_steps: int = 4
    num_patterns: int = 64
    partition_size: int = 16
    calibration_samples: int = 6000

    def phi_config(self, **overrides) -> PhiConfig:
        """The :class:`PhiConfig` corresponding to this scale."""
        params = {
            "partition_size": self.partition_size,
            "num_patterns": self.num_patterns,
            "calibration_samples": self.calibration_samples,
        }
        params.update(overrides)
        return PhiConfig(**params)

    def arch_config(self, **overrides) -> ArchConfig:
        """The :class:`ArchConfig` corresponding to this scale."""
        params = {
            "tile_k": self.partition_size,
            "num_patterns": self.num_patterns,
        }
        params.update(overrides)
        return ArchConfig(**params)

    def workload_spec(self, model_name: str, dataset_name: str) -> WorkloadSpec:
        """The sweep-engine workload spec for a model/dataset at this scale."""
        return WorkloadSpec(
            model=model_name,
            dataset=dataset_name,
            batch_size=self.batch_size,
            num_steps=self.num_steps,
        )


#: Minimal scale for unit tests and CI smoke runs.
TINY = ExperimentScale(
    batch_size=2, num_steps=2, num_patterns=16, calibration_samples=1500
)
#: Default benchmark scale.
SMALL = ExperimentScale()
#: Closest to the paper's configuration (q = 128) on the scaled model zoo.
PAPER = ExperimentScale(batch_size=8, num_steps=4, num_patterns=128)

#: The single name -> tier mapping everything else consumes (the
#: registry's ``SCALES``, the CLIs' ``--scale`` choices, the generated
#: DESIGN.md table).  Add new tiers here and in ``TIER_PURPOSE`` only.
SCALE_TIERS: dict[str, ExperimentScale] = {
    "tiny": TINY,
    "small": SMALL,
    "paper": PAPER,
}

#: One-line purpose per exported tier (rendered into the DESIGN.md table).
TIER_PURPOSE = {
    "tiny": "unit tests, CI smoke",
    "small": "default benchmarks",
    "paper": "closest to the paper's q=128",
}


def scales_markdown_table() -> str:
    """The `ExperimentScale` tier table, generated from the code.

    DESIGN.md embeds this table verbatim and a docs test asserts they
    stay in sync, so the documented tiers can never drift from the
    exported ``TINY``/``SMALL``/``PAPER`` constants.
    """
    lines = [
        "| Tier | batch | steps | q (patterns) | k (partition) "
        "| calibration rows | Use |",
        "|---|---|---|---|---|---|---|",
    ]
    for name, tier in SCALE_TIERS.items():
        lines.append(
            f"| `{name.upper()}` | {tier.batch_size} | {tier.num_steps} "
            f"| {tier.num_patterns} | {tier.partition_size} "
            f"| {tier.calibration_samples} | {TIER_PURPOSE[name]} |"
        )
    return "\n".join(lines)


def workload_for(
    model_name: str,
    dataset_name: str,
    *,
    batch_size: int,
    num_steps: int,
    split: str = "test",
    seed: int = 0,
) -> ModelWorkload:
    """Cached workload generation (treat the result as read-only).

    Delegates to the generator-level memo the sweep engine uses too, so
    experiments and engine workers in the same process share one workload
    instance (and therefore one calibration memo) per spec.
    """
    return cached_workload(
        model_name,
        dataset_name,
        batch_size=batch_size,
        num_steps=num_steps,
        seed=seed,
        split=split,
    )


def get_workload(model_name: str, dataset_name: str, scale: ExperimentScale) -> ModelWorkload:
    """Workload for a model/dataset pair at the requested scale."""
    return workload_for(
        model_name,
        dataset_name,
        batch_size=scale.batch_size,
        num_steps=scale.num_steps,
    )


def calibrate_workload(
    workload: ModelWorkload, scale: ExperimentScale
) -> ModelCalibration:
    """Calibrate patterns for every layer of a workload.

    Memoised per ``(workload instance, PhiConfig)`` — repeated sweeps at
    the same scale reuse one calibration instead of recomputing it per
    experiment point.
    """
    return calibration_for(workload, scale.phi_config())


def format_table(rows: list[dict], columns: list[str] | None = None) -> str:
    """Render a list of dictionaries as an aligned text table."""
    if not rows:
        return "(empty table)"
    columns = columns or list(rows[0].keys())
    widths = {c: max(len(c), *(len(_fmt(r.get(c))) for r in rows)) for c in columns}
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append("  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:.1f}"
    return str(value)
