"""Temporal extension: Phi vs baselines on time-unrolled recurrent workloads.

The paper's evaluation stacks each layer's spike matrices over time into
one tall GEMM, which is the right model for feed-forward networks but
hides how sparsity evolves across time steps.  Recurrent models make the
time axis load-bearing: membrane state accumulates, so later steps are
denser than earlier ones.  This harness runs every accelerator on
workloads whose specs carry ``temporal=True`` — one GEMM per (layer,
time step), named like ``"rnn0.input@t2"`` — and additionally reports
the per-step activation density profile that the stacked view erases.

Normalisations match Fig. 8: speedup relative to Spiking Eyeriss, energy
relative to Phi without PAFT.  Every (accelerator, workload) pair is one
:class:`~repro.runner.SweepPoint` and the whole experiment is a single
:class:`~repro.runner.SweepEngine` batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..baselines.registry import BASELINE_ORDER
from ..core.metrics import geometric_mean
from ..runner.engine import SweepEngine, SweepPoint, default_engine
from ..workloads.temporal import cached_temporal_workload, temporal_density_profile
from .common import SMALL, ExperimentScale, format_table

#: Default temporal workload list: the recurrent speech model plus one
#: feed-forward model for contrast (its per-step profile is flat).
DEFAULT_WORKLOADS: tuple[tuple[str, str], ...] = (
    ("spikingrnn", "speechcmd"),
    ("vgg16", "cifar10"),
)

#: Accelerator ordering used in the comparison (same as Fig. 8).
ACCELERATORS: tuple[str, ...] = BASELINE_ORDER + ("phi", "phi_paft")


@dataclass
class TemporalComparison:
    """Per-accelerator results on one time-unrolled workload."""

    model: str
    dataset: str
    speedup: dict[str, float] = field(default_factory=dict)
    energy: dict[str, float] = field(default_factory=dict)
    throughput_gops: dict[str, float] = field(default_factory=dict)
    energy_joules: dict[str, float] = field(default_factory=dict)
    #: Element-weighted activation density per time step.
    density_by_step: dict[int, float] = field(default_factory=dict)

    @property
    def key(self) -> str:
        """Canonical workload identifier."""
        return f"{self.model}/{self.dataset}"


@dataclass
class TemporalResult:
    """All temporal comparisons plus geometric means."""

    comparisons: list[TemporalComparison] = field(default_factory=list)

    def geomean_speedup(self) -> dict[str, float]:
        """Geometric-mean speedup per accelerator (normalised to Eyeriss)."""
        result = {}
        for accel in ACCELERATORS:
            values = [c.speedup[accel] for c in self.comparisons if accel in c.speedup]
            if values:
                result[accel] = geometric_mean(values)
        return result

    def geomean_energy(self) -> dict[str, float]:
        """Geometric-mean energy per accelerator (normalised to Phi w/o PAFT)."""
        result = {}
        for accel in ACCELERATORS:
            values = [c.energy[accel] for c in self.comparisons if accel in c.energy]
            if values:
                result[accel] = geometric_mean(values)
        return result

    def formatted(self) -> str:
        """Aligned text rendering: speedup table plus density profiles."""
        rows = []
        for comparison in self.comparisons:
            row = {"workload": comparison.key}
            row.update({a: comparison.speedup.get(a) for a in ACCELERATORS})
            rows.append(row)
        geo = {"workload": "geomean"}
        geo.update(self.geomean_speedup())
        rows.append(geo)
        parts = [format_table(rows)]

        density_rows = []
        for comparison in self.comparisons:
            row = {"workload": comparison.key}
            row.update(
                {f"t{step}": value for step, value in comparison.density_by_step.items()}
            )
            density_rows.append(row)
        if density_rows:
            parts.append("per-step activation density:")
            parts.append(format_table(density_rows))
        return "\n\n".join(parts)


def _workload_points(
    model_name: str,
    dataset_name: str,
    scale: ExperimentScale,
    paft_strength: float,
) -> list[tuple[str, SweepPoint]]:
    """The (accelerator name, sweep point) grid of one temporal column."""
    spec = replace(scale.workload_spec(model_name, dataset_name), temporal=True)
    arch = scale.arch_config()
    phi = scale.phi_config()
    points = [
        (
            name,
            SweepPoint(
                workload=spec,
                arch=arch,
                accelerator=name,
                label=f"temporal:{spec.key}:{name}",
            ),
        )
        for name in BASELINE_ORDER
    ]
    points.append(
        (
            "phi",
            SweepPoint(
                workload=spec, arch=arch, phi=phi, label=f"temporal:{spec.key}:phi"
            ),
        )
    )
    paft_spec = replace(spec, paft_strength=paft_strength)
    points.append(
        (
            "phi_paft",
            SweepPoint(
                workload=paft_spec,
                arch=arch,
                phi=phi,
                label=f"temporal:{spec.key}:phi_paft",
            ),
        )
    )
    return points


def _comparison_from_records(
    model_name: str,
    dataset_name: str,
    scale: ExperimentScale,
    named_records: dict[str, dict],
) -> TemporalComparison:
    """Normalise one workload's records into a temporal comparison."""
    comparison = TemporalComparison(model=model_name, dataset=dataset_name)
    eyeriss_throughput = named_records["eyeriss"]["throughput_gops"]
    phi_energy = named_records["phi"]["energy_joules"]
    # As in Fig. 8, the PAFT run's speedup is normalised against the
    # nominal OP count of the unaligned model.
    nominal_ops = named_records["phi"]["total_operations"]
    for name, record in named_records.items():
        if name == "phi_paft":
            runtime = record["runtime_seconds"]
            throughput = nominal_ops / runtime / 1e9 if runtime else 0.0
        else:
            throughput = record["throughput_gops"]
        comparison.throughput_gops[name] = throughput
        comparison.speedup[name] = throughput / eyeriss_throughput
        comparison.energy_joules[name] = record["energy_joules"]
        comparison.energy[name] = record["energy_joules"] / phi_energy
    workload = cached_temporal_workload(
        model_name,
        dataset_name,
        batch_size=scale.batch_size,
        num_steps=scale.num_steps,
    )
    comparison.density_by_step = temporal_density_profile(workload)
    return comparison


def run_temporal(
    scale: ExperimentScale = SMALL,
    *,
    workloads: tuple[tuple[str, str], ...] = DEFAULT_WORKLOADS,
    paft_strength: float = 0.5,
    engine: SweepEngine | None = None,
) -> TemporalResult:
    """Run all accelerators on time-unrolled workloads and normalise.

    The entire (workload x accelerator) grid is submitted to the engine as
    one batch so every point can run in parallel; the per-step density
    profile is computed from the in-process workload memo afterwards.
    """
    engine = engine or default_engine()
    grids = [
        _workload_points(model_name, dataset_name, scale, paft_strength)
        for model_name, dataset_name in workloads
    ]
    flat_points = [point for grid in grids for _, point in grid]
    records = iter(engine.run(flat_points))

    result = TemporalResult()
    for (model_name, dataset_name), grid in zip(workloads, grids):
        named_records = {name: next(records) for name, _ in grid}
        result.comparisons.append(
            _comparison_from_records(model_name, dataset_name, scale, named_records)
        )
    return result
