"""Declarative registry of every reproduced figure and table.

Each paper artifact (figure, table, or discussion analysis) is described
by one :class:`ExperimentSpec`: what it reproduces, the claim being
checked, how to run it at each scale tier, and whether its simulation
points route through the :class:`~repro.runner.SweepEngine`.  The
registry is what makes experiments *enumerable*: the report pipeline
(:mod:`repro.report`), the runner CLI and the consistency tests all
iterate over :data:`REGISTRY` instead of hand-importing harness modules.

Registering a new experiment means adding one spec here (and an emitter
in :mod:`repro.report.emitters` if it should appear in the report).

Harnesses with ``uses_engine=True`` never touch an accelerator model
directly: they submit :class:`~repro.runner.SweepPoint` grids and read
the canonical cache-schema-v3 records the engine flattens from
:class:`~repro.hw.pipeline.RunResult` — the same record shape for Phi
and every baseline, so per-accelerator glue does not exist at this
layer (a structural test in ``tests/test_pipeline.py`` enforces it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Callable, Mapping

from .common import SCALE_TIERS, SMALL, ExperimentScale

#: Scale tiers by CLI name, in increasing fidelity order (the single
#: mapping defined in :mod:`repro.experiments.common`).
SCALES: dict[str, ExperimentScale] = SCALE_TIERS


def resolve_scale(scale: str | ExperimentScale) -> tuple[str, ExperimentScale]:
    """Normalise a scale argument to a ``(name, ExperimentScale)`` pair.

    Parameters
    ----------
    scale:
        Either a tier name (``"tiny"``, ``"small"``, ``"paper"``) or an
        :class:`ExperimentScale` instance.  Instances that are not one of
        the named tiers resolve to the name ``"custom"``.

    Returns
    -------
    tuple of (str, ExperimentScale)
        The tier name and the scale object.
    """
    if isinstance(scale, str):
        try:
            return scale, SCALES[scale]
        except KeyError:
            raise ValueError(
                f"unknown scale {scale!r}; expected one of {sorted(SCALES)}"
            ) from None
    for name, tier in SCALES.items():
        if tier == scale:
            return name, scale
    return "custom", scale


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one reproduced figure/table.

    Parameters
    ----------
    name:
        Registry key, matching the harness module name (``fig7``,
        ``table2``, ``discussion``).
    kind:
        ``"figure"``, ``"table"`` or ``"analysis"``.
    paper_ref:
        The artifact reproduced, as cited in the paper ("Fig. 7",
        "Table 2", "Section 6.1").
    section:
        Paper section the artifact appears in.
    claim:
        The claim of the paper this experiment reproduces, in one or two
        sentences.  Quoted verbatim into ``REPRODUCTION.md``.
    module, entry_point:
        Dotted module path and function name of the harness; resolved
        lazily so importing the registry stays cheap.
    uses_engine:
        Whether the harness routes simulation points through a
        :class:`~repro.runner.SweepEngine` (and therefore benefits from
        ``--jobs`` and the on-disk result cache).
    uses_scale:
        Whether the entry point takes an :class:`ExperimentScale` as its
        first argument (``table3`` does not — it is pure energy-model
        arithmetic).
    presets:
        Per-tier keyword overrides (keyed by tier name) applied when the
        experiment runs through :meth:`run` — e.g. fewer training epochs
        at the ``tiny`` tier.
    """

    name: str
    kind: str
    paper_ref: str
    section: str
    claim: str
    module: str
    entry_point: str
    uses_engine: bool = False
    uses_scale: bool = True
    presets: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in ("figure", "table", "analysis"):
            raise ValueError(f"unknown experiment kind {self.kind!r}")

    def runner(self) -> Callable[..., Any]:
        """Import and return the harness entry-point callable."""
        return getattr(import_module(self.module), self.entry_point)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable export of this spec (the service's wire form).

        Everything a remote client needs to enumerate experiments and
        build requests: identity, claim, per-tier presets (tuples
        converted to lists) and the engine/scale capability flags.
        Round-trips through :meth:`from_dict`.
        """
        return {
            "name": self.name,
            "kind": self.kind,
            "paper_ref": self.paper_ref,
            "section": self.section,
            "claim": self.claim,
            "module": self.module,
            "entry_point": self.entry_point,
            "uses_engine": self.uses_engine,
            "uses_scale": self.uses_scale,
            "presets": _jsonify(self.presets),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from its :meth:`to_dict` export.

        Raises
        ------
        ValueError
            When ``payload`` carries unknown or missing fields — a
            deserialisation error surfaces here, never deeper in a
            worker.
        """
        fields = {
            "name",
            "kind",
            "paper_ref",
            "section",
            "claim",
            "module",
            "entry_point",
            "uses_engine",
            "uses_scale",
            "presets",
        }
        unknown = set(payload) - fields
        if unknown:
            raise ValueError(f"unknown ExperimentSpec fields: {sorted(unknown)}")
        missing = fields - set(payload)
        if missing:
            raise ValueError(f"missing ExperimentSpec fields: {sorted(missing)}")
        return cls(**{key: payload[key] for key in fields})

    def kwargs_for(self, scale_name: str) -> dict[str, Any]:
        """The preset keyword overrides for one scale tier."""
        return dict(self.presets.get(scale_name, {}))

    def run(
        self,
        scale: str | ExperimentScale = SMALL,
        *,
        engine: Any = None,
        **overrides: Any,
    ) -> Any:
        """Run the experiment at a scale tier with its presets applied.

        Parameters
        ----------
        scale:
            Tier name or :class:`ExperimentScale`.
        engine:
            :class:`~repro.runner.SweepEngine` forwarded to harnesses
            with ``uses_engine=True``; ignored otherwise.
        **overrides:
            Extra keyword arguments for the harness, overriding the
            tier presets.

        Returns
        -------
        Any
            The harness result object (``Fig7Result``, ``Table2Result``,
            ...).
        """
        scale_name, scale_obj = resolve_scale(scale)
        kwargs = self.kwargs_for(scale_name)
        kwargs.update(overrides)
        if self.uses_engine and engine is not None:
            kwargs["engine"] = engine
        runner = self.runner()
        if self.uses_scale:
            return runner(scale_obj, **kwargs)
        return runner(**kwargs)


def _jsonify(value: Any) -> Any:
    """Recursively convert tuples/mappings into JSON-native lists/dicts."""
    if isinstance(value, Mapping):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    return value


def _spec(name: str, **kwargs: Any) -> ExperimentSpec:
    kwargs.setdefault("module", f"repro.experiments.{name}")
    kwargs.setdefault("entry_point", f"run_{name}")
    return ExperimentSpec(name=name, **kwargs)


#: Every reproduced artifact, in paper order.
REGISTRY: tuple[ExperimentSpec, ...] = (
    _spec(
        "fig1",
        kind="figure",
        paper_ref="Fig. 1",
        section="Section 1",
        claim=(
            "SNN spike activations form far tighter clusters than DNN "
            "activations or normally distributed data, which is what makes "
            "a small calibrated pattern set cover most activation rows."
        ),
        presets={"tiny": {"num_rows": 96, "tsne_iterations": 60}},
    ),
    _spec(
        "fig7",
        kind="figure",
        paper_ref="Fig. 7",
        section="Section 5.5",
        claim=(
            "Design-space exploration: a K partition size of 16 minimises "
            "the total (element + vector) density; more patterns per "
            "partition trade lower compute cycles against more PWP memory "
            "traffic; and the chosen buffer size balances DRAM power "
            "against buffer power and area."
        ),
        uses_engine=True,
    ),
    _spec(
        "fig8",
        kind="figure",
        paper_ref="Fig. 8",
        section="Section 5.2",
        claim=(
            "Phi outperforms Spiking Eyeriss, PTB, SATO, SpinalFlow and "
            "Stellar in speedup and energy across the SNN model zoo, and "
            "PAFT improves both further."
        ),
        uses_engine=True,
        presets={
            "tiny": {
                "workloads": (
                    ("vgg16", "cifar10"),
                    ("spikformer", "cifar10dvs"),
                    ("spikebert", "sst2"),
                )
            }
        },
    ),
    _spec(
        "fig9",
        kind="figure",
        paper_ref="Fig. 9",
        section="Section 5.4",
        claim=(
            "Training- and test-set activation patterns overlap strongly, "
            "and PAFT tightens activation clusters (fewer, denser "
            "clusters) rather than changing them wholesale."
        ),
        presets={"tiny": {"num_rows": 192}},
    ),
    _spec(
        "fig10",
        kind="figure",
        paper_ref="Fig. 10",
        section="Section 5.4",
        claim=(
            "PAFT lowers the Level 2 (element) density on every evaluated "
            "workload, shrinking the dominant runtime cost of the L2 "
            "processor."
        ),
        uses_engine=True,
    ),
    _spec(
        "fig11",
        kind="figure",
        paper_ref="Fig. 11",
        section="Section 5.4",
        claim=(
            "Phi without PAFT is accuracy-lossless (the decomposition is "
            "exact), and PAFT trades a small accuracy drop for the extra "
            "sparsity."
        ),
        presets={
            "tiny": {"workloads": (("vgg16", "cifar10"),), "train_epochs": 1},
        },
    ),
    _spec(
        "fig12",
        kind="figure",
        paper_ref="Fig. 12",
        section="Section 5.3",
        claim=(
            "Activation compression cuts activation DRAM traffic well "
            "below the uncompressed Phi format, and PWP prefetch filtering "
            "cuts pattern-weight traffic versus fetching all patterns."
        ),
        uses_engine=True,
    ),
    _spec(
        "table2",
        kind="table",
        paper_ref="Table 2",
        section="Section 5.2",
        claim=(
            "On VGG-16 / CIFAR100, Phi delivers the highest throughput, "
            "energy efficiency and area efficiency of all compared "
            "accelerators, from the smallest area."
        ),
        uses_engine=True,
    ),
    _spec(
        "table3",
        kind="table",
        paper_ref="Table 3",
        section="Section 5.3",
        claim=(
            "The Phi accelerator occupies about 0.663 mm^2 and draws about "
            "346.5 mW, with the on-chip buffer dominating both area and "
            "power."
        ),
        uses_scale=False,
    ),
    _spec(
        "table4",
        kind="table",
        paper_ref="Table 4",
        section="Section 5.6",
        claim=(
            "Hierarchical Phi sparsity pushes the online density far below "
            "the bit density on every SNN workload, yielding theoretical "
            "speedups over bit-sparse and dense execution; random matrices "
            "show the effect too, but much more weakly."
        ),
        uses_engine=True,
    ),
    _spec(
        "discussion",
        kind="analysis",
        paper_ref="Section 6.1",
        section="Section 6.1",
        claim=(
            "The pattern-matching preprocessing pays for itself: the "
            "accumulation energy it removes exceeds its own cost by well "
            "over an order of magnitude on every workload."
        ),
    ),
    _spec(
        "temporal",
        kind="analysis",
        paper_ref="Extension (temporal)",
        section="Section 6.2",
        claim=(
            "Phi's hierarchical sparsity advantage over Spiking Eyeriss, "
            "PTB, SATO, SpinalFlow and Stellar carries over to recurrent "
            "workloads unrolled per time step, where activation density "
            "rises step by step as membrane state accumulates."
        ),
        uses_engine=True,
        presets={"tiny": {"workloads": (("spikingrnn", "speechcmd"),)}},
    ),
)

_BY_NAME: dict[str, ExperimentSpec] = {spec.name: spec for spec in REGISTRY}
if len(_BY_NAME) != len(REGISTRY):  # pragma: no cover - guarded by tests
    raise RuntimeError("duplicate experiment names in REGISTRY")


def experiment_names() -> list[str]:
    """Registered experiment names, in paper order."""
    return [spec.name for spec in REGISTRY]


def get_experiment(name: str) -> ExperimentSpec:
    """Look up one experiment spec by name.

    Raises
    ------
    KeyError
        With the list of known names, when ``name`` is not registered.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; registered: {experiment_names()}"
        ) from None


def registry_json() -> list[dict[str, Any]]:
    """The full registry as JSON-serialisable spec dicts, in paper order.

    This is the payload of the service's ``GET /experiments`` endpoint;
    each entry round-trips through :meth:`ExperimentSpec.from_dict`.
    """
    return [spec.to_dict() for spec in REGISTRY]


def registry_markdown_table() -> str:
    """The registry as a Markdown table (used by README / REPRODUCTION.md)."""
    lines = [
        "| Experiment | Reproduces | Paper section | Sweep engine | Claim |",
        "|---|---|---|---|---|",
    ]
    for spec in REGISTRY:
        engine = "yes" if spec.uses_engine else "-"
        lines.append(
            f"| `{spec.name}` | {spec.paper_ref} | {spec.section} "
            f"| {engine} | {spec.claim} |"
        )
    return "\n".join(lines)
