"""Figure 10: Level 2 element density with and without PAFT.

PAFT aligns activations with their assigned patterns, which lowers the
Level 2 (element) density and therefore the dominant runtime cost of the
L2 processor.  The harness reports the density pairs for the conv and
transformer models of Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..core.metrics import aggregate_breakdowns, sparsity_breakdown
from ..runner.engine import DECOMPOSITION, SweepEngine, SweepPoint, default_engine
from ..workloads.workload import ModelWorkload
from .common import SMALL, ExperimentScale, calibrate_workload, format_table

#: The model/dataset pairs shown in Fig. 10.
FIG10_WORKLOADS: tuple[tuple[str, str], ...] = (
    ("spikformer", "cifar10dvs"),
    ("spikformer", "cifar100"),
    ("sdt", "cifar100"),
    ("vgg16", "cifar10"),
    ("vgg16", "cifar100"),
    ("resnet18", "cifar100"),
)


@dataclass(frozen=True)
class DensityPair:
    """Element density of one workload with and without PAFT."""

    model: str
    dataset: str
    density_without_paft: float
    density_with_paft: float

    @property
    def improvement(self) -> float:
        """Relative density reduction achieved by PAFT."""
        if self.density_without_paft == 0:
            return 0.0
        return 1.0 - self.density_with_paft / self.density_without_paft


@dataclass
class Fig10Result:
    """Element-density comparison across workloads."""

    pairs: list[DensityPair] = field(default_factory=list)

    def pair(self, model: str, dataset: str) -> DensityPair:
        """Look up one workload's density pair."""
        for pair in self.pairs:
            if pair.model == model and pair.dataset == dataset:
                return pair
        raise KeyError(f"{model}/{dataset}")

    def formatted(self) -> str:
        """Aligned text rendering."""
        return format_table([p.__dict__ for p in self.pairs])


def element_density(workload: ModelWorkload, scale: ExperimentScale) -> float:
    """Element-weighted Level 2 density of an in-memory workload.

    Library helper for freshly extracted workloads; :func:`run_fig10`
    computes the same quantity through the sweep engine.
    """
    calibration = calibrate_workload(workload, scale)
    pairs = []
    for layer in workload:
        decomposition = calibration[layer.name].decompose(layer.activations)
        pairs.append((sparsity_breakdown(decomposition), layer.activations.size))
    return aggregate_breakdowns(pairs).level2_density


def run_fig10(
    scale: ExperimentScale = SMALL,
    *,
    workloads: tuple[tuple[str, str], ...] = FIG10_WORKLOADS,
    alignment_strength: float = 0.5,
    engine: SweepEngine | None = None,
) -> Fig10Result:
    """Reproduce the Fig. 10 element-density comparison.

    Parameters
    ----------
    scale:
        Experiment scale tier.
    workloads:
        Model/dataset pairs to compare.
    alignment_strength:
        PAFT alignment strength of the "with PAFT" variant.
    engine:
        Sweep engine executing the decomposition points (two per
        workload: without and with PAFT); defaults to a serial,
        cache-less engine.

    Returns
    -------
    Fig10Result
        One :class:`DensityPair` per workload.
    """
    engine = engine or default_engine()
    points = []
    for model_name, dataset_name in workloads:
        spec = scale.workload_spec(model_name, dataset_name)
        for variant_spec, tag in (
            (spec, "base"),
            (replace(spec, paft_strength=alignment_strength), "paft"),
        ):
            points.append(
                SweepPoint(
                    workload=variant_spec,
                    arch=scale.arch_config(),
                    phi=scale.phi_config(),
                    accelerator=DECOMPOSITION,
                    label=f"fig10:{spec.key}:{tag}",
                )
            )
    records = engine.run(points)
    result = Fig10Result()
    for (model_name, dataset_name), index in zip(workloads, range(0, len(points), 2)):
        without, with_paft = records[index], records[index + 1]
        result.pairs.append(
            DensityPair(
                model=model_name,
                dataset=dataset_name,
                density_without_paft=without["breakdown"]["level2_density"],
                density_with_paft=with_paft["breakdown"]["level2_density"],
            )
        )
    return result
