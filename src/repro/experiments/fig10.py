"""Figure 10: Level 2 element density with and without PAFT.

PAFT aligns activations with their assigned patterns, which lowers the
Level 2 (element) density and therefore the dominant runtime cost of the
L2 processor.  The harness reports the density pairs for the conv and
transformer models of Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.metrics import aggregate_breakdowns, sparsity_breakdown
from ..workloads.workload import ModelWorkload
from .common import SMALL, ExperimentScale, calibrate_workload, format_table, get_workload
from .fig8 import apply_paft_to_workload

#: The model/dataset pairs shown in Fig. 10.
FIG10_WORKLOADS: tuple[tuple[str, str], ...] = (
    ("spikformer", "cifar10dvs"),
    ("spikformer", "cifar100"),
    ("sdt", "cifar100"),
    ("vgg16", "cifar10"),
    ("vgg16", "cifar100"),
    ("resnet18", "cifar100"),
)


@dataclass(frozen=True)
class DensityPair:
    """Element density of one workload with and without PAFT."""

    model: str
    dataset: str
    density_without_paft: float
    density_with_paft: float

    @property
    def improvement(self) -> float:
        """Relative density reduction achieved by PAFT."""
        if self.density_without_paft == 0:
            return 0.0
        return 1.0 - self.density_with_paft / self.density_without_paft


@dataclass
class Fig10Result:
    """Element-density comparison across workloads."""

    pairs: list[DensityPair] = field(default_factory=list)

    def pair(self, model: str, dataset: str) -> DensityPair:
        """Look up one workload's density pair."""
        for pair in self.pairs:
            if pair.model == model and pair.dataset == dataset:
                return pair
        raise KeyError(f"{model}/{dataset}")

    def formatted(self) -> str:
        """Aligned text rendering."""
        return format_table([p.__dict__ for p in self.pairs])


def element_density(workload: ModelWorkload, scale: ExperimentScale) -> float:
    """Element-weighted Level 2 density of a workload."""
    calibration = calibrate_workload(workload, scale)
    pairs = []
    for layer in workload:
        decomposition = calibration[layer.name].decompose(layer.activations)
        pairs.append((sparsity_breakdown(decomposition), layer.activations.size))
    return aggregate_breakdowns(pairs).level2_density


def run_fig10(
    scale: ExperimentScale = SMALL,
    *,
    workloads: tuple[tuple[str, str], ...] = FIG10_WORKLOADS,
    alignment_strength: float = 0.5,
) -> Fig10Result:
    """Reproduce the Fig. 10 element-density comparison."""
    result = Fig10Result()
    for model_name, dataset_name in workloads:
        workload = get_workload(model_name, dataset_name, scale)
        without = element_density(workload, scale)
        paft_workload = apply_paft_to_workload(
            workload, scale, alignment_strength=alignment_strength
        )
        with_paft = element_density(paft_workload, scale)
        result.pairs.append(
            DensityPair(
                model=model_name,
                dataset=dataset_name,
                density_without_paft=without,
                density_with_paft=with_paft,
            )
        )
    return result
