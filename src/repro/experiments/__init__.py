"""Experiment harnesses: one module per table / figure of the paper.

The registry (:mod:`repro.experiments.registry`) enumerates every
harness with the paper artifact it reproduces; the report pipeline
(:mod:`repro.report`) runs any subset of it and emits ``REPRODUCTION.md``.
"""

from .common import PAPER, SMALL, TINY, ExperimentScale, format_table, get_workload
from .registry import (
    REGISTRY,
    SCALES,
    ExperimentSpec,
    experiment_names,
    get_experiment,
    registry_markdown_table,
    resolve_scale,
)
from .discussion import DiscussionResult, run_discussion
from .fig1 import Fig1Result, run_fig1
from .fig7 import (
    Fig7Result,
    run_fig7,
    run_fig7_buffer_sweep,
    run_fig7_pattern_sweep,
    run_fig7_tile_sweep,
)
from .fig8 import Fig8Result, apply_paft_to_workload, compare_workload, run_fig8
from .fig9 import Fig9Result, run_fig9
from .fig10 import Fig10Result, run_fig10
from .fig11 import Fig11Result, evaluate_model_accuracy, run_fig11
from .fig12 import Fig12Result, run_fig12
from .table2 import Table2Result, run_table2
from .table3 import Table3Result, run_table3
from .table4 import Table4Result, run_table4

__all__ = [
    "ExperimentScale",
    "ExperimentSpec",
    "REGISTRY",
    "SCALES",
    "TINY",
    "SMALL",
    "PAPER",
    "experiment_names",
    "get_experiment",
    "registry_markdown_table",
    "resolve_scale",
    "get_workload",
    "format_table",
    "run_table2",
    "Table2Result",
    "run_table3",
    "Table3Result",
    "run_table4",
    "Table4Result",
    "run_fig1",
    "Fig1Result",
    "run_fig7",
    "run_fig7_tile_sweep",
    "run_fig7_pattern_sweep",
    "run_fig7_buffer_sweep",
    "Fig7Result",
    "run_fig8",
    "Fig8Result",
    "compare_workload",
    "apply_paft_to_workload",
    "run_fig9",
    "Fig9Result",
    "run_fig10",
    "Fig10Result",
    "run_fig11",
    "Fig11Result",
    "evaluate_model_accuracy",
    "run_fig12",
    "Fig12Result",
    "run_discussion",
    "DiscussionResult",
]
