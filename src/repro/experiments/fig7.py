"""Figure 7: design-space exploration.

Four sweeps justify the architecture configuration:

* **Fig. 7a** — element (L2), vector (L1) and total density versus the K
  partition size.
* **Fig. 7b** — normalised compute cycles (bit sparsity vs Phi vs the
  optimal lower bound) versus the K partition size.
* **Fig. 7c** — compute cycles and PWP memory access versus the number of
  patterns per partition.
* **Fig. 7d** — DRAM power, buffer power and buffer area versus the total
  on-chip buffer size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.calibration import PhiCalibrator
from ..core.config import PhiConfig
from ..core.metrics import aggregate_operation_counts, operation_counts, sparsity_breakdown
from ..hw.config import ArchConfig, BufferSizes
from ..hw.energy import DRAM_ENERGY_PER_BYTE_PJ, PhiEnergyModel
from ..hw.simulator import PhiSimulator
from ..workloads.workload import ModelWorkload
from .common import SMALL, ExperimentScale, format_table, get_workload


@dataclass(frozen=True)
class TileSizePoint:
    """One K-tile-size point of Fig. 7a/b."""

    k_tile: int
    element_density: float
    vector_density: float
    total_density: float
    bit_cycles: float
    phi_cycles: float
    optimal_cycles: float


@dataclass(frozen=True)
class PatternCountPoint:
    """One pattern-count point of Fig. 7c."""

    num_patterns: int
    phi_cycles: float
    bit_cycles: float
    optimal_cycles: float
    pwp_memory_bytes: float


@dataclass(frozen=True)
class BufferSizePoint:
    """One buffer-size point of Fig. 7d."""

    buffer_kb: float
    dram_power: float
    buffer_power: float
    buffer_area: float


@dataclass
class Fig7Result:
    """All four sweeps of the design-space exploration."""

    tile_sweep: list[TileSizePoint] = field(default_factory=list)
    pattern_sweep: list[PatternCountPoint] = field(default_factory=list)
    buffer_sweep: list[BufferSizePoint] = field(default_factory=list)

    def best_tile_size(self) -> int:
        """The K tile size with the lowest total density (paper: 16)."""
        return min(self.tile_sweep, key=lambda p: p.total_density).k_tile

    def formatted(self) -> str:
        """Aligned text rendering of all three sweeps."""
        parts = []
        parts.append("Fig. 7a/b: K tile size sweep")
        parts.append(format_table([p.__dict__ for p in self.tile_sweep]))
        parts.append("\nFig. 7c: pattern count sweep")
        parts.append(format_table([p.__dict__ for p in self.pattern_sweep]))
        parts.append("\nFig. 7d: buffer size sweep")
        parts.append(format_table([p.__dict__ for p in self.buffer_sweep]))
        return "\n".join(parts)


def _phi_relative_cycles(workload: ModelWorkload, config: PhiConfig) -> tuple[float, float, float, float, float, float]:
    """Densities and normalised theoretical cycle counts for one config."""
    calibrator = PhiCalibrator(config)
    breakdown_pairs = []
    counts = []
    for layer in workload:
        calibration = calibrator.calibrate_layer(layer.name, layer.activations)
        decomposition = calibration.decompose(layer.activations)
        breakdown_pairs.append(
            (sparsity_breakdown(decomposition), layer.activations.size)
        )
        counts.append(operation_counts(decomposition))
    totals = aggregate_operation_counts(counts)
    from ..core.metrics import aggregate_breakdowns

    breakdown = aggregate_breakdowns(breakdown_pairs)
    bit_ops = totals.bit_sparse_ops
    phi_ops = totals.phi_ops
    # "Optimal" cycles: only the Level 2 corrections of a hypothetical
    # perfect pattern assignment, approximated by the best achievable
    # element count (one correction per mismatching bit with an oracle
    # pattern per row); the paper uses the converged large-q limit.
    optimal_ops = totals.phi_level2_ops + totals.phi_level1_ops // 2
    bit = 1.0
    phi = phi_ops / bit_ops if bit_ops else 0.0
    optimal = optimal_ops / bit_ops if bit_ops else 0.0
    return (
        breakdown.level2_density,
        breakdown.level1_vector_density / max(config.partition_size, 1),
        breakdown.level2_density
        + breakdown.level1_vector_density / max(config.partition_size, 1),
        bit,
        phi,
        optimal,
    )


def run_fig7_tile_sweep(
    scale: ExperimentScale = SMALL,
    *,
    model_name: str = "vgg16",
    dataset_name: str = "cifar100",
    tile_sizes: tuple[int, ...] = (4, 8, 16, 32, 64),
) -> list[TileSizePoint]:
    """Fig. 7a/b: sweep the K partition size."""
    workload = get_workload(model_name, dataset_name, scale)
    points = []
    for k in tile_sizes:
        # Narrow partitions cannot host more than 2**k distinct patterns.
        patterns = min(scale.num_patterns, 2 ** min(k, 16))
        config = scale.phi_config(partition_size=k, num_patterns=patterns)
        element, vector, total, bit, phi, optimal = _phi_relative_cycles(workload, config)
        points.append(
            TileSizePoint(
                k_tile=k,
                element_density=element,
                vector_density=vector,
                total_density=total,
                bit_cycles=bit,
                phi_cycles=phi,
                optimal_cycles=optimal,
            )
        )
    return points


def run_fig7_pattern_sweep(
    scale: ExperimentScale = SMALL,
    *,
    model_name: str = "vgg16",
    dataset_name: str = "cifar100",
    pattern_counts: tuple[int, ...] = (8, 16, 32, 64, 128, 256),
) -> list[PatternCountPoint]:
    """Fig. 7c: sweep the number of patterns per partition."""
    workload = get_workload(model_name, dataset_name, scale)
    points = []
    for q in pattern_counts:
        config = scale.phi_config(num_patterns=q)
        simulator = PhiSimulator(scale.arch_config(num_patterns=q), config)
        result = simulator.run(workload)
        totals = result.aggregate_operations()
        bit_ops = totals.bit_sparse_ops
        points.append(
            PatternCountPoint(
                num_patterns=q,
                phi_cycles=totals.phi_ops / bit_ops if bit_ops else 0.0,
                bit_cycles=1.0,
                optimal_cycles=(
                    totals.phi_level2_ops / bit_ops if bit_ops else 0.0
                ),
                pwp_memory_bytes=sum(l.pwp_bytes_prefetched for l in result.layers),
            )
        )
    return points


def run_fig7_buffer_sweep(
    scale: ExperimentScale = SMALL,
    *,
    model_name: str = "vgg16",
    dataset_name: str = "cifar100",
    buffer_scales: tuple[float, ...] = (0.5, 0.75, 1.0, 1.5, 3.0),
) -> list[BufferSizePoint]:
    """Fig. 7d: sweep the total on-chip buffer capacity."""
    workload = get_workload(model_name, dataset_name, scale)
    base_sizes = BufferSizes()
    points = []
    for factor in buffer_scales:
        sizes = base_sizes.scaled(factor)
        arch = scale.arch_config(buffers=sizes)
        energy_model = PhiEnergyModel(arch, buffer_scale=factor)
        simulator = PhiSimulator(arch, scale.phi_config(), energy_model=energy_model)
        result = simulator.run(workload)
        dram_energy = result.total_dram_bytes * DRAM_ENERGY_PER_BYTE_PJ * 1e-12
        dram_power = dram_energy / max(result.runtime_seconds, 1e-12)
        points.append(
            BufferSizePoint(
                buffer_kb=sizes.total / 1024.0,
                dram_power=dram_power,
                buffer_power=energy_model.power_report()["buffer"],
                buffer_area=energy_model.area_report().components["buffer"],
            )
        )
    return points


def run_fig7(scale: ExperimentScale = SMALL, **kwargs) -> Fig7Result:
    """Run all three design-space sweeps."""
    return Fig7Result(
        tile_sweep=run_fig7_tile_sweep(scale, **kwargs),
        pattern_sweep=run_fig7_pattern_sweep(scale, **kwargs),
        buffer_sweep=run_fig7_buffer_sweep(scale, **kwargs),
    )
