"""Figure 7: design-space exploration.

Four sweeps justify the architecture configuration:

* **Fig. 7a** — element (L2), vector (L1) and total density versus the K
  partition size.
* **Fig. 7b** — normalised compute cycles (bit sparsity vs Phi vs the
  optimal lower bound) versus the K partition size.
* **Fig. 7c** — compute cycles and PWP memory access versus the number of
  patterns per partition.
* **Fig. 7d** — DRAM power, buffer power and buffer area versus the total
  on-chip buffer size.

All three sweeps are expressed as :class:`~repro.runner.SweepPoint` grids
and executed through a :class:`~repro.runner.SweepEngine`, so they run in
parallel with ``--jobs`` and reuse cached results across invocations
(``python -m repro.runner fig7``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.config import BufferSizes
from ..hw.energy import DRAM_ENERGY_PER_BYTE_PJ, PhiEnergyModel
from ..runner.engine import DECOMPOSITION, SweepEngine, SweepPoint, default_engine
from .common import SMALL, ExperimentScale, format_table


@dataclass(frozen=True)
class TileSizePoint:
    """One K-tile-size point of Fig. 7a/b."""

    k_tile: int
    element_density: float
    vector_density: float
    total_density: float
    bit_cycles: float
    phi_cycles: float
    optimal_cycles: float


@dataclass(frozen=True)
class PatternCountPoint:
    """One pattern-count point of Fig. 7c."""

    num_patterns: int
    phi_cycles: float
    bit_cycles: float
    optimal_cycles: float
    pwp_memory_bytes: float


@dataclass(frozen=True)
class BufferSizePoint:
    """One buffer-size point of Fig. 7d."""

    buffer_kb: float
    dram_power: float
    buffer_power: float
    buffer_area: float


@dataclass
class Fig7Result:
    """All four sweeps of the design-space exploration."""

    tile_sweep: list[TileSizePoint] = field(default_factory=list)
    pattern_sweep: list[PatternCountPoint] = field(default_factory=list)
    buffer_sweep: list[BufferSizePoint] = field(default_factory=list)

    def best_tile_size(self) -> int:
        """The K tile size with the lowest total density (paper: 16)."""
        return min(self.tile_sweep, key=lambda p: p.total_density).k_tile

    def formatted(self) -> str:
        """Aligned text rendering of all three sweeps."""
        parts = []
        parts.append("Fig. 7a/b: K tile size sweep")
        parts.append(format_table([p.__dict__ for p in self.tile_sweep]))
        parts.append("\nFig. 7c: pattern count sweep")
        parts.append(format_table([p.__dict__ for p in self.pattern_sweep]))
        parts.append("\nFig. 7d: buffer size sweep")
        parts.append(format_table([p.__dict__ for p in self.buffer_sweep]))
        return "\n".join(parts)


def _tile_point(k_tile: int, partition_size: int, record: dict) -> TileSizePoint:
    """Fig. 7a/b metrics from one decomposition record."""
    breakdown = record["breakdown"]
    counts = record["operation_counts"]
    bit_ops = counts["bit_sparse_ops"]
    phi_ops = counts["phi_level1_ops"] + counts["phi_level2_ops"]
    # "Optimal" cycles: only the Level 2 corrections of a hypothetical
    # perfect pattern assignment, approximated by the best achievable
    # element count (one correction per mismatching bit with an oracle
    # pattern per row); the paper uses the converged large-q limit.
    optimal_ops = counts["phi_level2_ops"] + counts["phi_level1_ops"] // 2
    vector = breakdown["level1_vector_density"] / max(partition_size, 1)
    return TileSizePoint(
        k_tile=k_tile,
        element_density=breakdown["level2_density"],
        vector_density=vector,
        total_density=breakdown["level2_density"] + vector,
        bit_cycles=1.0,
        phi_cycles=phi_ops / bit_ops if bit_ops else 0.0,
        optimal_cycles=optimal_ops / bit_ops if bit_ops else 0.0,
    )


def run_fig7_tile_sweep(
    scale: ExperimentScale = SMALL,
    *,
    model_name: str = "vgg16",
    dataset_name: str = "cifar100",
    tile_sizes: tuple[int, ...] = (4, 8, 16, 32, 64),
    engine: SweepEngine | None = None,
) -> list[TileSizePoint]:
    """Fig. 7a/b: sweep the K partition size."""
    engine = engine or default_engine()
    spec = scale.workload_spec(model_name, dataset_name)
    configs = []
    for k in tile_sizes:
        # Narrow partitions cannot host more than 2**k distinct patterns.
        patterns = min(scale.num_patterns, 2 ** min(k, 16))
        configs.append(scale.phi_config(partition_size=k, num_patterns=patterns))
    points = [
        SweepPoint(
            workload=spec,
            arch=scale.arch_config(),
            phi=config,
            accelerator=DECOMPOSITION,
            label=f"fig7ab:{spec.key}:k={k}",
        )
        for k, config in zip(tile_sizes, configs)
    ]
    records = engine.run(points)
    return [
        _tile_point(k, config.partition_size, record)
        for k, config, record in zip(tile_sizes, configs, records)
    ]


def run_fig7_pattern_sweep(
    scale: ExperimentScale = SMALL,
    *,
    model_name: str = "vgg16",
    dataset_name: str = "cifar100",
    pattern_counts: tuple[int, ...] = (8, 16, 32, 64, 128, 256),
    engine: SweepEngine | None = None,
) -> list[PatternCountPoint]:
    """Fig. 7c: sweep the number of patterns per partition."""
    engine = engine or default_engine()
    spec = scale.workload_spec(model_name, dataset_name)
    points = [
        SweepPoint(
            workload=spec,
            arch=scale.arch_config(num_patterns=q),
            phi=scale.phi_config(num_patterns=q),
            label=f"fig7c:{spec.key}:q={q}",
        )
        for q in pattern_counts
    ]
    records = engine.run(points)
    results = []
    for q, record in zip(pattern_counts, records):
        counts = record["operation_counts"]
        bit_ops = counts["bit_sparse_ops"]
        phi_ops = counts["phi_level1_ops"] + counts["phi_level2_ops"]
        pwp_bytes = sum(layer["pwp_bytes_prefetched"] for layer in record["layers"])
        results.append(
            PatternCountPoint(
                num_patterns=q,
                phi_cycles=phi_ops / bit_ops if bit_ops else 0.0,
                bit_cycles=1.0,
                optimal_cycles=(
                    counts["phi_level2_ops"] / bit_ops if bit_ops else 0.0
                ),
                pwp_memory_bytes=pwp_bytes,
            )
        )
    return results


def run_fig7_buffer_sweep(
    scale: ExperimentScale = SMALL,
    *,
    model_name: str = "vgg16",
    dataset_name: str = "cifar100",
    buffer_scales: tuple[float, ...] = (0.5, 0.75, 1.0, 1.5, 3.0),
    engine: SweepEngine | None = None,
) -> list[BufferSizePoint]:
    """Fig. 7d: sweep the total on-chip buffer capacity."""
    engine = engine or default_engine()
    spec = scale.workload_spec(model_name, dataset_name)
    base_sizes = BufferSizes()
    archs = [
        scale.arch_config(buffers=base_sizes.scaled(factor))
        for factor in buffer_scales
    ]
    points = [
        SweepPoint(
            workload=spec,
            arch=arch,
            phi=scale.phi_config(),
            buffer_scale=factor,
            label=f"fig7d:{spec.key}:x{factor}",
        )
        for factor, arch in zip(buffer_scales, archs)
    ]
    records = engine.run(points)
    results = []
    for factor, arch, record in zip(buffer_scales, archs, records):
        energy_model = PhiEnergyModel(arch, buffer_scale=factor)
        dram_energy = record["total_dram_bytes"] * DRAM_ENERGY_PER_BYTE_PJ * 1e-12
        dram_power = dram_energy / max(record["runtime_seconds"], 1e-12)
        results.append(
            BufferSizePoint(
                buffer_kb=arch.buffers.total / 1024.0,
                dram_power=dram_power,
                buffer_power=energy_model.power_report()["buffer"],
                buffer_area=energy_model.area_report().components["buffer"],
            )
        )
    return results


def run_fig7(
    scale: ExperimentScale = SMALL,
    *,
    engine: SweepEngine | None = None,
    **kwargs,
) -> Fig7Result:
    """Run all three design-space sweeps."""
    engine = engine or default_engine()
    return Fig7Result(
        tile_sweep=run_fig7_tile_sweep(scale, engine=engine, **kwargs),
        pattern_sweep=run_fig7_pattern_sweep(scale, engine=engine, **kwargs),
        buffer_sweep=run_fig7_buffer_sweep(scale, engine=engine, **kwargs),
    )
