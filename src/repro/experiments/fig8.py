"""Figure 8: speedup and energy across the full model zoo.

For every model/dataset pair of the evaluation, the harness runs all
baseline accelerators, Phi without PAFT and Phi with PAFT, and reports
speedup (normalised to Spiking Eyeriss) and energy (normalised to Phi
without PAFT), plus the geometric means across workloads — the same
normalisations the paper's Fig. 8 uses.

Every (accelerator, workload) pair is one :class:`~repro.runner.SweepPoint`;
the whole figure is a single :class:`~repro.runner.SweepEngine` batch, so
``python -m repro.runner fig8 --jobs N`` simulates the grid N-wide and a
re-run with a warm cache costs only the normalisation arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..baselines.registry import BASELINE_ORDER
from ..core.metrics import geometric_mean
from ..runner.engine import (
    SweepEngine,
    SweepPoint,
    aligned_workload,
    default_engine,
)
from .common import SMALL, ExperimentScale, format_table

#: Default Fig. 8 workload list (subset of the paper's 12 pairs chosen to
#: cover every model family; pass ``workloads=`` to run more).
DEFAULT_WORKLOADS: tuple[tuple[str, str], ...] = (
    ("vgg16", "cifar10"),
    ("vgg16", "cifar100"),
    ("resnet18", "cifar100"),
    ("spikformer", "cifar10dvs"),
    ("sdt", "cifar100"),
    ("spikebert", "sst2"),
    ("spikingbert", "mnli"),
)

#: The paper's full 12-workload list.
FULL_WORKLOADS: tuple[tuple[str, str], ...] = (
    ("vgg16", "cifar10"),
    ("vgg16", "cifar100"),
    ("resnet18", "cifar10"),
    ("resnet18", "cifar100"),
    ("spikformer", "cifar10dvs"),
    ("spikformer", "cifar100"),
    ("sdt", "cifar10dvs"),
    ("sdt", "cifar100"),
    ("spikebert", "sst2"),
    ("spikebert", "sst5"),
    ("spikingbert", "sst2"),
    ("spikingbert", "mnli"),
)

#: Accelerator ordering used in the Fig. 8 bars.
ACCELERATORS: tuple[str, ...] = BASELINE_ORDER + ("phi", "phi_paft")


@dataclass
class WorkloadComparison:
    """Speedup / energy of every accelerator on one workload."""

    model: str
    dataset: str
    speedup: dict[str, float] = field(default_factory=dict)
    energy: dict[str, float] = field(default_factory=dict)
    throughput_gops: dict[str, float] = field(default_factory=dict)
    energy_joules: dict[str, float] = field(default_factory=dict)

    @property
    def key(self) -> str:
        """Canonical workload identifier."""
        return f"{self.model}/{self.dataset}"


@dataclass
class Fig8Result:
    """All workload comparisons plus geometric means."""

    comparisons: list[WorkloadComparison] = field(default_factory=list)

    def geomean_speedup(self) -> dict[str, float]:
        """Geometric-mean speedup per accelerator (normalised to Eyeriss)."""
        result = {}
        for accel in ACCELERATORS:
            values = [c.speedup[accel] for c in self.comparisons if accel in c.speedup]
            if values:
                result[accel] = geometric_mean(values)
        return result

    def geomean_energy(self) -> dict[str, float]:
        """Geometric-mean energy per accelerator (normalised to Phi w/o PAFT)."""
        result = {}
        for accel in ACCELERATORS:
            values = [c.energy[accel] for c in self.comparisons if accel in c.energy]
            if values:
                result[accel] = geometric_mean(values)
        return result

    def formatted(self) -> str:
        """Aligned text rendering of the speedup table."""
        rows = []
        for comparison in self.comparisons:
            row = {"workload": comparison.key}
            row.update({a: comparison.speedup.get(a) for a in ACCELERATORS})
            rows.append(row)
        geo = {"workload": "geomean"}
        geo.update(self.geomean_speedup())
        rows.append(geo)
        return format_table(rows)


def apply_paft_to_workload(
    workload,
    scale: ExperimentScale,
    *,
    alignment_strength: float = 0.5,
    seed: int = 0,
):
    """Produce the post-PAFT version of a workload.

    Pattern-aware fine-tuning pushes activations towards their assigned
    patterns; the aligner applies that statistical effect directly to the
    recorded spike matrices (see :class:`repro.core.paft.ActivationAligner`
    and :func:`repro.runner.aligned_workload`, which this wraps).
    """
    return aligned_workload(
        workload, scale.phi_config(), strength=alignment_strength, seed=seed
    )


def _workload_points(
    model_name: str,
    dataset_name: str,
    scale: ExperimentScale,
    paft_strength: float,
) -> list[tuple[str, SweepPoint]]:
    """The (accelerator name, sweep point) grid of one Fig. 8 column."""
    spec = scale.workload_spec(model_name, dataset_name)
    arch = scale.arch_config()
    phi = scale.phi_config()
    points = [
        (
            name,
            SweepPoint(
                workload=spec,
                arch=arch,
                accelerator=name,
                label=f"fig8:{spec.key}:{name}",
            ),
        )
        for name in BASELINE_ORDER
    ]
    points.append(
        (
            "phi",
            SweepPoint(
                workload=spec, arch=arch, phi=phi, label=f"fig8:{spec.key}:phi"
            ),
        )
    )
    paft_spec = replace(spec, paft_strength=paft_strength)
    points.append(
        (
            "phi_paft",
            SweepPoint(
                workload=paft_spec,
                arch=arch,
                phi=phi,
                label=f"fig8:{spec.key}:phi_paft",
            ),
        )
    )
    return points


def _comparison_from_records(
    model_name: str,
    dataset_name: str,
    named_records: dict[str, dict],
) -> WorkloadComparison:
    """Normalise one workload's records into a Fig. 8 comparison."""
    comparison = WorkloadComparison(model=model_name, dataset=dataset_name)
    eyeriss_throughput = named_records["eyeriss"]["throughput_gops"]
    phi_energy = named_records["phi"]["energy_joules"]
    # The PAFT run executes fewer real operations, but speedup/energy are
    # normalised against the same nominal OP count as the original model.
    nominal_ops = named_records["phi"]["total_operations"]
    for name, record in named_records.items():
        if name == "phi_paft":
            runtime = record["runtime_seconds"]
            throughput = nominal_ops / runtime / 1e9 if runtime else 0.0
        else:
            throughput = record["throughput_gops"]
        comparison.throughput_gops[name] = throughput
        comparison.speedup[name] = throughput / eyeriss_throughput
        comparison.energy_joules[name] = record["energy_joules"]
        comparison.energy[name] = record["energy_joules"] / phi_energy
    return comparison


def compare_workload(
    model_name: str,
    dataset_name: str,
    scale: ExperimentScale = SMALL,
    *,
    paft_strength: float = 0.5,
    engine: SweepEngine | None = None,
) -> WorkloadComparison:
    """Run all accelerators on one workload and normalise the results."""
    engine = engine or default_engine()
    named_points = _workload_points(model_name, dataset_name, scale, paft_strength)
    records = engine.run([point for _, point in named_points])
    named_records = {name: record for (name, _), record in zip(named_points, records)}
    return _comparison_from_records(model_name, dataset_name, named_records)


def run_fig8(
    scale: ExperimentScale = SMALL,
    *,
    workloads: tuple[tuple[str, str], ...] = DEFAULT_WORKLOADS,
    paft_strength: float = 0.5,
    engine: SweepEngine | None = None,
) -> Fig8Result:
    """Reproduce Fig. 8 across the selected workloads.

    The entire (workload x accelerator) grid is submitted to the engine as
    one batch so every point can run in parallel.
    """
    engine = engine or default_engine()
    grids = [
        _workload_points(model_name, dataset_name, scale, paft_strength)
        for model_name, dataset_name in workloads
    ]
    flat_points = [point for grid in grids for _, point in grid]
    records = iter(engine.run(flat_points))

    result = Fig8Result()
    for (model_name, dataset_name), grid in zip(workloads, grids):
        named_records = {name: next(records) for name, _ in grid}
        result.comparisons.append(
            _comparison_from_records(model_name, dataset_name, named_records)
        )
    return result
