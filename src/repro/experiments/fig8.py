"""Figure 8: speedup and energy across the full model zoo.

For every model/dataset pair of the evaluation, the harness runs all
baseline accelerators, Phi without PAFT and Phi with PAFT, and reports
speedup (normalised to Spiking Eyeriss) and energy (normalised to Phi
without PAFT), plus the geometric means across workloads — the same
normalisations the paper's Fig. 8 uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines.registry import BASELINE_ORDER, PhiAccelerator, get_baseline
from ..core.metrics import geometric_mean
from ..core.paft import ActivationAligner
from ..workloads.workload import LayerWorkload, ModelWorkload
from .common import (
    SMALL,
    ExperimentScale,
    calibrate_workload,
    format_table,
    get_workload,
)

#: Default Fig. 8 workload list (subset of the paper's 12 pairs chosen to
#: cover every model family; pass ``workloads=`` to run more).
DEFAULT_WORKLOADS: tuple[tuple[str, str], ...] = (
    ("vgg16", "cifar10"),
    ("vgg16", "cifar100"),
    ("resnet18", "cifar100"),
    ("spikformer", "cifar10dvs"),
    ("sdt", "cifar100"),
    ("spikebert", "sst2"),
    ("spikingbert", "mnli"),
)

#: The paper's full 12-workload list.
FULL_WORKLOADS: tuple[tuple[str, str], ...] = (
    ("vgg16", "cifar10"),
    ("vgg16", "cifar100"),
    ("resnet18", "cifar10"),
    ("resnet18", "cifar100"),
    ("spikformer", "cifar10dvs"),
    ("spikformer", "cifar100"),
    ("sdt", "cifar10dvs"),
    ("sdt", "cifar100"),
    ("spikebert", "sst2"),
    ("spikebert", "sst5"),
    ("spikingbert", "sst2"),
    ("spikingbert", "mnli"),
)

#: Accelerator ordering used in the Fig. 8 bars.
ACCELERATORS: tuple[str, ...] = BASELINE_ORDER + ("phi", "phi_paft")


@dataclass
class WorkloadComparison:
    """Speedup / energy of every accelerator on one workload."""

    model: str
    dataset: str
    speedup: dict[str, float] = field(default_factory=dict)
    energy: dict[str, float] = field(default_factory=dict)
    throughput_gops: dict[str, float] = field(default_factory=dict)
    energy_joules: dict[str, float] = field(default_factory=dict)

    @property
    def key(self) -> str:
        """Canonical workload identifier."""
        return f"{self.model}/{self.dataset}"


@dataclass
class Fig8Result:
    """All workload comparisons plus geometric means."""

    comparisons: list[WorkloadComparison] = field(default_factory=list)

    def geomean_speedup(self) -> dict[str, float]:
        """Geometric-mean speedup per accelerator (normalised to Eyeriss)."""
        result = {}
        for accel in ACCELERATORS:
            values = [c.speedup[accel] for c in self.comparisons if accel in c.speedup]
            if values:
                result[accel] = geometric_mean(values)
        return result

    def geomean_energy(self) -> dict[str, float]:
        """Geometric-mean energy per accelerator (normalised to Phi w/o PAFT)."""
        result = {}
        for accel in ACCELERATORS:
            values = [c.energy[accel] for c in self.comparisons if accel in c.energy]
            if values:
                result[accel] = geometric_mean(values)
        return result

    def formatted(self) -> str:
        """Aligned text rendering of the speedup table."""
        rows = []
        for comparison in self.comparisons:
            row = {"workload": comparison.key}
            row.update({a: comparison.speedup.get(a) for a in ACCELERATORS})
            rows.append(row)
        geo = {"workload": "geomean"}
        geo.update(self.geomean_speedup())
        rows.append(geo)
        return format_table(rows)


def apply_paft_to_workload(
    workload: ModelWorkload,
    scale: ExperimentScale,
    *,
    alignment_strength: float = 0.5,
    seed: int = 0,
) -> ModelWorkload:
    """Produce the post-PAFT version of a workload.

    Pattern-aware fine-tuning pushes activations towards their assigned
    patterns; the aligner applies that statistical effect directly to the
    recorded spike matrices (see :class:`repro.core.paft.ActivationAligner`).
    """
    calibration = calibrate_workload(workload, scale)
    aligner = ActivationAligner(alignment_strength=alignment_strength, seed=seed)
    aligned = ModelWorkload(
        model_name=workload.model_name, dataset_name=workload.dataset_name
    )
    for layer in workload:
        if layer.name in calibration:
            activations = aligner.align_layer(layer.activations, calibration[layer.name])
        else:
            activations = layer.activations
        aligned.add(
            LayerWorkload(
                name=layer.name,
                activations=activations,
                weights=layer.weights,
            )
        )
    return aligned


def compare_workload(
    model_name: str,
    dataset_name: str,
    scale: ExperimentScale = SMALL,
    *,
    paft_strength: float = 0.5,
) -> WorkloadComparison:
    """Run all accelerators on one workload and normalise the results."""
    workload = get_workload(model_name, dataset_name, scale)
    comparison = WorkloadComparison(model=model_name, dataset=dataset_name)

    reports = {}
    for name in BASELINE_ORDER:
        reports[name] = get_baseline(name, scale.arch_config()).simulate(workload)

    phi = PhiAccelerator(scale.arch_config(), scale.phi_config())
    reports["phi"] = phi.simulate(workload)
    paft_workload = apply_paft_to_workload(workload, scale, alignment_strength=paft_strength)
    paft_report = phi.simulate(paft_workload)
    # The PAFT run executes fewer real operations, but speedup/energy are
    # normalised against the same nominal OP count as the original model.
    reports["phi_paft"] = paft_report

    eyeriss_throughput = reports["eyeriss"].throughput_gops
    phi_energy = reports["phi"].energy_joules
    nominal_ops = reports["phi"].total_operations
    for name, report in reports.items():
        if name == "phi_paft":
            runtime = report.runtime_seconds
            throughput = nominal_ops / runtime / 1e9 if runtime else 0.0
        else:
            throughput = report.throughput_gops
        comparison.throughput_gops[name] = throughput
        comparison.speedup[name] = throughput / eyeriss_throughput
        comparison.energy_joules[name] = report.energy_joules
        comparison.energy[name] = report.energy_joules / phi_energy
    return comparison


def run_fig8(
    scale: ExperimentScale = SMALL,
    *,
    workloads: tuple[tuple[str, str], ...] = DEFAULT_WORKLOADS,
    paft_strength: float = 0.5,
) -> Fig8Result:
    """Reproduce Fig. 8 across the selected workloads."""
    result = Fig8Result()
    for model_name, dataset_name in workloads:
        result.comparisons.append(
            compare_workload(
                model_name, dataset_name, scale, paft_strength=paft_strength
            )
        )
    return result
