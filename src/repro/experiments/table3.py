"""Table 3: Phi area and power breakdown per component."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.config import ArchConfig
from ..hw.energy import PhiEnergyModel
from .common import format_table


@dataclass(frozen=True)
class ComponentRow:
    """Area / power entry of one hardware component."""

    component: str
    area_mm2: float
    power_mw: float


@dataclass
class Table3Result:
    """The full Table 3 breakdown."""

    rows: list[ComponentRow] = field(default_factory=list)

    @property
    def total_area_mm2(self) -> float:
        """Total accelerator area."""
        return sum(row.area_mm2 for row in self.rows)

    @property
    def total_power_mw(self) -> float:
        """Total accelerator power."""
        return sum(row.power_mw for row in self.rows)

    def row(self, component: str) -> ComponentRow:
        """Look up one component's row."""
        for row in self.rows:
            if row.component == component:
                return row
        raise KeyError(component)

    def as_dicts(self) -> list[dict]:
        """Rows plus a total line as dictionaries."""
        data = [
            {"component": r.component, "area_mm2": r.area_mm2, "power_mw": r.power_mw}
            for r in self.rows
        ]
        data.append(
            {
                "component": "total",
                "area_mm2": self.total_area_mm2,
                "power_mw": self.total_power_mw,
            }
        )
        return data

    def formatted(self) -> str:
        """Aligned text rendering."""
        return format_table(self.as_dicts())


def run_table3(arch: ArchConfig | None = None) -> Table3Result:
    """Reproduce the Table 3 area / power breakdown."""
    model = PhiEnergyModel(arch or ArchConfig())
    areas = model.area_report().components
    powers = model.power_report()
    result = Table3Result()
    for component in areas:
        result.rows.append(
            ComponentRow(
                component=component,
                area_mm2=areas[component],
                power_mw=powers[component],
            )
        )
    return result
