"""Figure 1: activation distribution visualisation (normal vs DNN vs SNN).

The paper's motivation figure shows t-SNE projections of (a) normally
distributed noise, (b) DNN (ViT) activations and (c) SNN (Spikformer)
spike activations: the SNN rows form by far the tightest clusters.  The
harness reproduces the three embeddings and attaches quantitative
clustering scores so the conclusion can be asserted programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.clustering import top_pattern_coverage
from ..analysis.tsne import TSNEResult, tsne
from .common import SMALL, ExperimentScale, get_workload


@dataclass(frozen=True)
class DistributionSummary:
    """t-SNE embedding plus clustering statistics for one data source."""

    name: str
    embedding: TSNEResult
    cluster_spread: float
    pattern_coverage: float


@dataclass(frozen=True)
class Fig1Result:
    """Comparison of the three activation distributions of Fig. 1."""

    normal: DistributionSummary
    dnn: DistributionSummary
    snn: DistributionSummary

    def spreads(self) -> dict[str, float]:
        """Cluster-spread score per source (lower = more clustered)."""
        return {
            "normal": self.normal.cluster_spread,
            "dnn": self.dnn.cluster_spread,
            "snn": self.snn.cluster_spread,
        }


def _cluster_spread(embedding: np.ndarray, num_clusters: int = 8, seed: int = 0) -> float:
    """Mean within-cluster spread of a 2-D embedding, normalised by its scale.

    A simple Euclidean k-means on the embedding; the score is the average
    distance of points to their cluster centre divided by the overall
    standard deviation, so 1.0 means no visible cluster structure.
    """
    rng = np.random.default_rng(seed)
    points = np.asarray(embedding, dtype=np.float64)
    scale = float(points.std()) or 1.0
    centers = points[rng.choice(points.shape[0], size=num_clusters, replace=False)]
    for _ in range(20):
        distances = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        assign = distances.argmin(axis=1)
        for c in range(num_clusters):
            members = points[assign == c]
            if members.shape[0]:
                centers[c] = members.mean(axis=0)
    distances = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
    nearest = np.sqrt(distances.min(axis=1))
    return float(nearest.mean() / scale)


def run_fig1(
    scale: ExperimentScale = SMALL,
    *,
    num_rows: int = 256,
    seed: int = 0,
    tsne_iterations: int = 200,
) -> Fig1Result:
    """Reproduce the Fig. 1 comparison of activation distributions."""
    rng = np.random.default_rng(seed)

    # SNN spike activations: a Spikformer attention-projection layer.
    workload = get_workload("spikformer", "cifar100", scale)
    snn_rows = None
    for layer in workload:
        if layer.k >= 32 and layer.m >= num_rows:
            snn_rows = layer.activations[:num_rows].astype(np.float64)
            break
    if snn_rows is None:
        snn_rows = workload[0].activations[:num_rows].astype(np.float64)
    width = snn_rows.shape[1]

    # DNN-like activations: smooth, correlated analog features (ReLU of a
    # low-rank Gaussian process stands in for ViT activations).
    basis = rng.standard_normal((8, width))
    coefficients = rng.standard_normal((snn_rows.shape[0], 8))
    dnn_rows = np.maximum(coefficients @ basis + 0.3 * rng.standard_normal(
        (snn_rows.shape[0], width)), 0.0)

    # Normally distributed noise.
    normal_rows = rng.standard_normal(snn_rows.shape)

    def summarise(name: str, rows: np.ndarray, binary: bool) -> DistributionSummary:
        embedding = tsne(rows, num_iterations=tsne_iterations, seed=seed)
        # Pattern coverage is measured on partition-width (16-bit) slices,
        # exactly as Phi partitions the activation matrix.
        coverage = (
            top_pattern_coverage(rows.astype(np.uint8)[:, :16], top_k=32)
            if binary
            else 0.0
        )
        return DistributionSummary(
            name=name,
            embedding=embedding,
            cluster_spread=_cluster_spread(embedding.embedding, seed=seed),
            pattern_coverage=coverage,
        )

    return Fig1Result(
        normal=summarise("normal", normal_rows, binary=False),
        dnn=summarise("dnn", dnn_rows, binary=False),
        snn=summarise("snn", snn_rows, binary=True),
    )
