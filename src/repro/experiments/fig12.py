"""Figure 12: memory-traffic reduction from compression and prefetching."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.traffic import (
    ActivationTraffic,
    WeightTraffic,
    activation_traffic_from_layers,
    weight_traffic_from_layers,
)
from ..core.metrics import geometric_mean
from ..runner.engine import SweepEngine, SweepPoint, default_engine
from .common import SMALL, ExperimentScale, format_table

#: Model/dataset pairs of Fig. 12 (one per model family).
FIG12_WORKLOADS: tuple[tuple[str, str], ...] = (
    ("vgg16", "cifar100"),
    ("resnet18", "cifar100"),
    ("spikformer", "cifar100"),
    ("sdt", "cifar100"),
    ("spikebert", "sst2"),
    ("spikingbert", "mnli"),
)


@dataclass(frozen=True)
class TrafficRow:
    """Activation and weight traffic of one workload."""

    model: str
    dataset: str
    activation: ActivationTraffic
    weight: WeightTraffic


@dataclass
class Fig12Result:
    """Traffic comparison across workloads."""

    rows: list[TrafficRow] = field(default_factory=list)

    def geomean_activation_ratio(self) -> float:
        """Geometric mean of compressed-activation traffic vs dense."""
        return geometric_mean(r.activation.compressed_ratio for r in self.rows)

    def geomean_weight_ratios(self) -> tuple[float, float]:
        """Geometric means of (w/o prefetch, w/ prefetch) weight ratios."""
        without = geometric_mean(r.weight.without_prefetch_ratio for r in self.rows)
        with_prefetch = geometric_mean(r.weight.with_prefetch_ratio for r in self.rows)
        return without, with_prefetch

    def formatted(self) -> str:
        """Aligned text rendering."""
        rows = []
        for r in self.rows:
            rows.append(
                {
                    "workload": f"{r.model}/{r.dataset}",
                    "act_dense": r.activation.dense,
                    "act_uncompressed": r.activation.phi_uncompressed,
                    "act_compressed": r.activation.phi_compressed,
                    "w_dense": r.weight.dense,
                    "w_no_prefetch": r.weight.phi_without_prefetch,
                    "w_prefetch": r.weight.phi_with_prefetch,
                }
            )
        return format_table(rows)


def run_fig12(
    scale: ExperimentScale = SMALL,
    *,
    workloads: tuple[tuple[str, str], ...] = FIG12_WORKLOADS,
    engine: SweepEngine | None = None,
) -> Fig12Result:
    """Reproduce the Fig. 12 memory-traffic comparison.

    One sweep point per workload, submitted as a single engine batch so
    ``--jobs`` parallelises across workloads and repeat runs come from the
    result cache.
    """
    engine = engine or default_engine()
    arch = scale.arch_config()
    phi = scale.phi_config()
    points = [
        SweepPoint(
            workload=scale.workload_spec(model_name, dataset_name),
            arch=arch,
            phi=phi,
            label=f"fig12:{model_name}/{dataset_name}",
        )
        for model_name, dataset_name in workloads
    ]
    records = engine.run(points)
    result = Fig12Result()
    for (model_name, dataset_name), record in zip(workloads, records):
        result.rows.append(
            TrafficRow(
                model=model_name,
                dataset=dataset_name,
                activation=activation_traffic_from_layers(record["layers"]),
                weight=weight_traffic_from_layers(record["layers"]),
            )
        )
    return result
