"""Figure 9: PAFT's effect on activation clustering (t-SNE comparison).

The paper shows three t-SNE plots of VGG16 first-conv-layer activations on
CIFAR-100: (a) training vs test rows overlap, (b) the test set without
PAFT, and (c) the test set with PAFT forming fewer but denser clusters.
This harness reproduces the same comparison quantitatively: train/test
pattern-distribution overlap, and clustering scores before and after the
PAFT alignment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.clustering import ClusterStats, cluster_stats, distribution_overlap
from ..analysis.tsne import TSNEResult, tsne
from ..core.paft import ActivationAligner
from .common import SMALL, ExperimentScale, calibrate_workload, get_workload


@dataclass(frozen=True)
class Fig9Result:
    """Train/test consistency and PAFT clustering improvement."""

    train_test_overlap: float
    stats_without_paft: ClusterStats
    stats_with_paft: ClusterStats
    embedding_without_paft: TSNEResult | None
    embedding_with_paft: TSNEResult | None

    @property
    def clustering_improved(self) -> bool:
        """True when PAFT tightened the clusters (lower distance to centres)."""
        return (
            self.stats_with_paft.mean_distance_to_center
            <= self.stats_without_paft.mean_distance_to_center
        )


def run_fig9(
    scale: ExperimentScale = SMALL,
    *,
    model_name: str = "vgg16",
    dataset_name: str = "cifar100",
    layer_index: int = 0,
    num_rows: int = 384,
    alignment_strength: float = 0.6,
    compute_embeddings: bool = False,
    seed: int = 0,
) -> Fig9Result:
    """Reproduce the Fig. 9 PAFT clustering analysis."""
    test_workload = get_workload(model_name, dataset_name, scale)
    train_workload = get_workload(model_name, dataset_name, scale)

    layer = test_workload[layer_index]
    # Split the recorded rows into disjoint "train" and "test" halves so
    # the overlap measurement is meaningful even on the cached workload.
    rows = layer.activations
    half = rows.shape[0] // 2
    train_rows = rows[:half]
    test_rows = rows[half:]
    width = min(rows.shape[1], scale.partition_size * 4)
    train_rows = train_rows[:, :width]
    test_rows = test_rows[:, :width]
    _ = train_workload

    overlap = distribution_overlap(
        train_rows[:, : scale.partition_size], test_rows[:, : scale.partition_size]
    )

    calibration = calibrate_workload(test_workload, scale)
    aligner = ActivationAligner(alignment_strength=alignment_strength, seed=seed)
    aligned = aligner.align_layer(layer.activations, calibration[layer.name])

    sample = slice(0, min(num_rows, test_rows.shape[0]))
    stats_before = cluster_stats(layer.activations[sample, :width], seed=seed)
    stats_after = cluster_stats(aligned[sample, :width], seed=seed)

    embedding_before = embedding_after = None
    if compute_embeddings:
        embedding_before = tsne(
            layer.activations[sample, :width].astype(float), num_iterations=150, seed=seed
        )
        embedding_after = tsne(
            aligned[sample, :width].astype(float), num_iterations=150, seed=seed
        )

    return Fig9Result(
        train_test_overlap=overlap,
        stats_without_paft=stats_before,
        stats_with_paft=stats_after,
        embedding_without_paft=embedding_before,
        embedding_with_paft=embedding_after,
    )
