"""Figure 11: accuracy of DNN, bit sparsity, Phi without PAFT, Phi with PAFT.

The paper's accuracy claims are: (1) Phi without PAFT is *lossless* — its
accuracy equals the plain bit-sparse SNN because the decomposition is
exact; (2) PAFT trades a small accuracy drop for higher sparsity; (3) the
DNN counterpart is usually a little better on frame-based tasks and not
applicable to event data.  This harness trains small spiking models on the
synthetic tasks, verifies the lossless property *exactly* (logit-level
comparison through the Phi decomposition), and measures the PAFT drop by
fine-tuning with the regulariser.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.paft import PAFTConfig
from ..datasets.synthetic import make_dataset
from ..snn.models import build_model
from ..snn.training import SGDTrainer
from ..core.calibration import PhiCalibrator
from .common import SMALL, ExperimentScale, format_table


@dataclass(frozen=True)
class AccuracyRow:
    """Accuracy of one model/dataset pair under the four schemes."""

    model: str
    dataset: str
    dnn_accuracy: float
    bit_sparsity_accuracy: float
    phi_without_paft_accuracy: float
    phi_with_paft_accuracy: float
    lossless_verified: bool

    @property
    def paft_drop(self) -> float:
        """Accuracy cost of PAFT."""
        return self.phi_without_paft_accuracy - self.phi_with_paft_accuracy


@dataclass
class Fig11Result:
    """Accuracy comparison across workloads."""

    rows: list[AccuracyRow] = field(default_factory=list)

    def formatted(self) -> str:
        """Aligned text rendering."""
        return format_table([r.__dict__ for r in self.rows])


def _train_dnn_counterpart(
    train_data: np.ndarray,
    train_labels: np.ndarray,
    test_data: np.ndarray,
    test_labels: np.ndarray,
    num_classes: int,
    *,
    epochs: int = 30,
    learning_rate: float = 0.5,
    seed: int = 0,
) -> float:
    """Multinomial logistic regression on flattened inputs (DNN stand-in)."""
    rng = np.random.default_rng(seed)
    x_train = train_data.reshape(train_data.shape[0], -1)
    x_test = test_data.reshape(test_data.shape[0], -1)
    weights = rng.normal(0.0, 0.01, size=(x_train.shape[1], num_classes))
    bias = np.zeros(num_classes)
    onehot = np.eye(num_classes)[train_labels]
    for _ in range(epochs):
        logits = x_train @ weights + bias
        logits -= logits.max(axis=1, keepdims=True)
        probs = np.exp(logits)
        probs /= probs.sum(axis=1, keepdims=True)
        grad = (probs - onehot) / x_train.shape[0]
        weights -= learning_rate * (x_train.T @ grad)
        bias -= learning_rate * grad.sum(axis=0)
    predictions = np.argmax(x_test @ weights + bias, axis=1)
    return float(np.mean(predictions == test_labels))


def _verify_lossless(network, data: np.ndarray, scale: ExperimentScale) -> bool:
    """Check that Phi-decomposed GEMMs reproduce the exact layer outputs."""
    _, records = network.record_activations(data)
    calibrator = PhiCalibrator(scale.phi_config())
    matmuls = {layer.name: layer for layer in network.matmul_layers()}
    for name, record in records.items():
        if not record.matrices or not record.is_binary:
            continue
        activations = record.stacked().astype(np.uint8)
        calibration = calibrator.calibrate_layer(name, activations)
        decomposition = calibration.decompose(activations)
        weights = matmuls[name].weight_matrix()
        reference = activations.astype(np.float64) @ weights
        if not np.allclose(decomposition.compute_output(weights), reference):
            return False
    return True


def evaluate_model_accuracy(
    model_name: str,
    dataset_name: str,
    scale: ExperimentScale = SMALL,
    *,
    train_epochs: int = 3,
    paft_epochs: int = 1,
    paft_lambda: float = 5e-4,
    num_train: int = 96,
    num_test: int = 48,
    seed: int = 0,
) -> AccuracyRow:
    """Train a small spiking model and measure the four Fig. 11 accuracies."""
    dataset = make_dataset(dataset_name, num_train=num_train, num_test=num_test)
    if dataset.kind != "image":
        raise ValueError("accuracy experiments use the image datasets")
    channels, image_size, _ = dataset.input_shape
    network = build_model(
        model_name,
        num_classes=dataset.num_classes,
        in_channels=channels,
        image_size=image_size,
        num_steps=scale.num_steps,
        seed=seed,
    )

    trainer = SGDTrainer(network, learning_rate=0.05, momentum=0.9)
    trainer.fit(
        dataset.train_data,
        dataset.train_labels,
        epochs=train_epochs,
        batch_size=16,
        seed=seed,
    )
    bit_accuracy = trainer.evaluate(dataset.test_data, dataset.test_labels)

    # Phi without PAFT is lossless by construction; verify it exactly on a
    # test batch by comparing decomposed GEMM outputs to the references.
    lossless = _verify_lossless(network, dataset.test_data[:8], scale)
    phi_accuracy = bit_accuracy if lossless else float("nan")

    # DNN counterpart.
    dnn_accuracy = _train_dnn_counterpart(
        dataset.train_data,
        dataset.train_labels,
        dataset.test_data,
        dataset.test_labels,
        dataset.num_classes,
        seed=seed,
    )

    # PAFT fine-tuning: calibrate patterns, then fine-tune with the
    # Hamming-distance regulariser for a few epochs.
    _, records = network.record_activations(dataset.train_data[: scale.batch_size])
    calibrator = PhiCalibrator(scale.phi_config())
    layer_activations = {
        name: record.stacked().astype(np.uint8)
        for name, record in records.items()
        if record.matrices and record.is_binary
    }
    calibration = calibrator.calibrate_model(layer_activations)
    trainer.enable_paft(
        calibration, PAFTConfig(lam=paft_lambda, learning_rate=5e-3, epochs=paft_epochs)
    )
    trainer.fit(
        dataset.train_data,
        dataset.train_labels,
        epochs=paft_epochs,
        batch_size=16,
        seed=seed + 1,
    )
    paft_accuracy = trainer.evaluate(dataset.test_data, dataset.test_labels)

    return AccuracyRow(
        model=model_name,
        dataset=dataset_name,
        dnn_accuracy=dnn_accuracy,
        bit_sparsity_accuracy=bit_accuracy,
        phi_without_paft_accuracy=phi_accuracy,
        phi_with_paft_accuracy=paft_accuracy,
        lossless_verified=lossless,
    )


def run_fig11(
    scale: ExperimentScale = SMALL,
    *,
    workloads: tuple[tuple[str, str], ...] = (("vgg16", "cifar10"), ("resnet18", "cifar10")),
    train_epochs: int = 3,
) -> Fig11Result:
    """Reproduce the Fig. 11 accuracy comparison on the image workloads."""
    result = Fig11Result()
    for model_name, dataset_name in workloads:
        result.rows.append(
            evaluate_model_accuracy(
                model_name, dataset_name, scale, train_epochs=train_epochs
            )
        )
    return result
