"""Table 2: Phi vs baselines on VGG-16 / CIFAR100.

Reports throughput (GOP/s), energy efficiency (GOP/J) and area efficiency
(GOP/s/mm^2) for Spiking Eyeriss, PTB, SATO, SpinalFlow, Stellar and Phi,
all normalised to Spiking Eyeriss as in the paper.

Every accelerator is one :class:`~repro.runner.SweepPoint` and the whole
table is a single :class:`~repro.runner.SweepEngine` batch, so re-runs
come from the result cache and ``--jobs`` parallelises across rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines.registry import BASELINE_ORDER
from ..runner.engine import SweepEngine, SweepPoint, default_engine
from .common import SMALL, ExperimentScale, format_table


@dataclass(frozen=True)
class AcceleratorRow:
    """One row of the Table 2 comparison."""

    accelerator: str
    area_mm2: float
    throughput_gops: float
    energy_efficiency_gopj: float
    area_efficiency_gops_mm2: float
    speedup_vs_eyeriss: float
    energy_ratio_vs_eyeriss: float


@dataclass
class Table2Result:
    """All rows of the Table 2 reproduction."""

    model_name: str
    dataset_name: str
    rows: list[AcceleratorRow] = field(default_factory=list)

    def row(self, accelerator: str) -> AcceleratorRow:
        """Look up one accelerator's row."""
        for row in self.rows:
            if row.accelerator == accelerator:
                return row
        raise KeyError(accelerator)

    def as_dicts(self) -> list[dict]:
        """Rows as plain dictionaries (for printing / serialisation)."""
        return [
            {
                "accelerator": r.accelerator,
                "area_mm2": r.area_mm2,
                "GOP/s": r.throughput_gops,
                "GOP/J": r.energy_efficiency_gopj,
                "GOP/s/mm2": r.area_efficiency_gops_mm2,
                "speedup": r.speedup_vs_eyeriss,
                "energy_ratio": r.energy_ratio_vs_eyeriss,
            }
            for r in self.rows
        ]

    def formatted(self) -> str:
        """Aligned text rendering of the table."""
        return format_table(self.as_dicts())


def run_table2(
    scale: ExperimentScale = SMALL,
    *,
    model_name: str = "vgg16",
    dataset_name: str = "cifar100",
    use_train_calibration: bool = False,
    engine: SweepEngine | None = None,
) -> Table2Result:
    """Reproduce Table 2 on the scaled VGG-16 / CIFAR100 workload.

    Parameters
    ----------
    scale:
        Experiment scale tier.
    model_name, dataset_name:
        The workload the table compares accelerators on.
    use_train_calibration:
        Retained for API compatibility; both values produce identical
        results.  Calibration is deterministic, so the simulator's
        per-layer self-calibration and an explicit whole-workload
        calibration yield the same patterns (see DESIGN.md, "The
        engine"), and the engine shares one memoised calibration either
        way.
    engine:
        Sweep engine to execute the per-accelerator points on; defaults to
        a serial, cache-less engine.

    Returns
    -------
    Table2Result
        One :class:`AcceleratorRow` per baseline plus Phi, normalised to
        Spiking Eyeriss.
    """
    engine = engine or default_engine()
    spec = scale.workload_spec(model_name, dataset_name)
    arch = scale.arch_config()
    names = BASELINE_ORDER + ("phi",)
    points = [
        SweepPoint(
            workload=spec,
            arch=arch,
            phi=scale.phi_config() if name == "phi" else None,
            accelerator=name,
            label=f"table2:{spec.key}:{name}",
        )
        for name in names
    ]
    records = dict(zip(names, engine.run(points)))

    baseline = records["eyeriss"]
    result = Table2Result(model_name=model_name, dataset_name=dataset_name)
    for name in names:
        record = records[name]
        result.rows.append(
            AcceleratorRow(
                accelerator=name,
                area_mm2=record["area_mm2"],
                throughput_gops=record["throughput_gops"],
                energy_efficiency_gopj=record["energy_efficiency_gops_per_joule"],
                area_efficiency_gops_mm2=record["area_efficiency_gops_per_mm2"],
                speedup_vs_eyeriss=(
                    record["throughput_gops"] / baseline["throughput_gops"]
                ),
                energy_ratio_vs_eyeriss=(
                    record["energy_efficiency_gops_per_joule"]
                    / baseline["energy_efficiency_gops_per_joule"]
                ),
            )
        )
    return result
