"""Table 2: Phi vs baselines on VGG-16 / CIFAR100.

Reports throughput (GOP/s), energy efficiency (GOP/J) and area efficiency
(GOP/s/mm^2) for Spiking Eyeriss, PTB, SATO, SpinalFlow, Stellar and Phi,
all normalised to Spiking Eyeriss as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines.registry import BASELINE_ORDER, PhiAccelerator, get_baseline
from .common import SMALL, ExperimentScale, calibrate_workload, format_table, get_workload


@dataclass(frozen=True)
class AcceleratorRow:
    """One row of the Table 2 comparison."""

    accelerator: str
    area_mm2: float
    throughput_gops: float
    energy_efficiency_gopj: float
    area_efficiency_gops_mm2: float
    speedup_vs_eyeriss: float
    energy_ratio_vs_eyeriss: float


@dataclass
class Table2Result:
    """All rows of the Table 2 reproduction."""

    model_name: str
    dataset_name: str
    rows: list[AcceleratorRow] = field(default_factory=list)

    def row(self, accelerator: str) -> AcceleratorRow:
        """Look up one accelerator's row."""
        for row in self.rows:
            if row.accelerator == accelerator:
                return row
        raise KeyError(accelerator)

    def as_dicts(self) -> list[dict]:
        """Rows as plain dictionaries (for printing / serialisation)."""
        return [
            {
                "accelerator": r.accelerator,
                "area_mm2": r.area_mm2,
                "GOP/s": r.throughput_gops,
                "GOP/J": r.energy_efficiency_gopj,
                "GOP/s/mm2": r.area_efficiency_gops_mm2,
                "speedup": r.speedup_vs_eyeriss,
                "energy_ratio": r.energy_ratio_vs_eyeriss,
            }
            for r in self.rows
        ]

    def formatted(self) -> str:
        """Aligned text rendering of the table."""
        return format_table(self.as_dicts())


def run_table2(
    scale: ExperimentScale = SMALL,
    *,
    model_name: str = "vgg16",
    dataset_name: str = "cifar100",
    use_train_calibration: bool = False,
) -> Table2Result:
    """Reproduce Table 2 on the scaled VGG-16 / CIFAR100 workload."""
    workload = get_workload(model_name, dataset_name, scale)
    reports = {}
    for name in BASELINE_ORDER:
        reports[name] = get_baseline(name, scale.arch_config()).simulate(workload)

    phi = PhiAccelerator(scale.arch_config(), scale.phi_config())
    calibration = calibrate_workload(workload, scale) if use_train_calibration else None
    reports["phi"] = phi.simulate(workload, calibration=calibration)

    baseline = reports["eyeriss"]
    result = Table2Result(model_name=model_name, dataset_name=dataset_name)
    for name, report in reports.items():
        result.rows.append(
            AcceleratorRow(
                accelerator=name,
                area_mm2=report.area_mm2,
                throughput_gops=report.throughput_gops,
                energy_efficiency_gopj=report.energy_efficiency_gops_per_joule,
                area_efficiency_gops_mm2=report.area_efficiency_gops_per_mm2,
                speedup_vs_eyeriss=report.throughput_gops / baseline.throughput_gops,
                energy_ratio_vs_eyeriss=(
                    report.energy_efficiency_gops_per_joule
                    / baseline.energy_efficiency_gops_per_joule
                ),
            )
        )
    return result
