"""Table 4: Phi sparsity breakdown across models, datasets and random data.

For every model/dataset pair the table reports the bit density, the
Level 1 density, the +1 / -1 Level 2 densities, the theoretical speedup
over bit sparsity and over dense execution.  Rows for random binary
matrices of several densities show that patterns also emerge (to a lesser
degree) in unstructured data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.metrics import (
    OperationCounts,
    aggregate_breakdowns,
    aggregate_operation_counts,
    operation_counts,
    sparsity_breakdown,
)
from ..runner.engine import (
    DECOMPOSITION,
    SweepEngine,
    SweepPoint,
    WorkloadSpec,
    calibration_for,
    default_engine,
)
from ..workloads.workload import ModelWorkload
from .common import SMALL, ExperimentScale, format_table


@dataclass(frozen=True)
class SparsityRow:
    """One row of Table 4."""

    model: str
    dataset: str
    bit_density: float
    l1_density: float
    l2_positive_density: float
    l2_negative_density: float
    speedup_over_bit: float
    speedup_over_dense: float

    @property
    def l2_density(self) -> float:
        """Total Level 2 density."""
        return self.l2_positive_density + self.l2_negative_density


@dataclass
class Table4Result:
    """All rows of the Table 4 reproduction."""

    rows: list[SparsityRow] = field(default_factory=list)

    def row(self, model: str, dataset: str) -> SparsityRow:
        """Look up the row of one model/dataset pair."""
        for row in self.rows:
            if row.model == model and row.dataset == dataset:
                return row
        raise KeyError(f"{model}/{dataset}")

    def as_dicts(self) -> list[dict]:
        """Rows as dictionaries."""
        return [
            {
                "model": r.model,
                "dataset": r.dataset,
                "bit_density": r.bit_density,
                "L1_density": r.l1_density,
                "L2_+1": r.l2_positive_density,
                "L2_-1": r.l2_negative_density,
                "speedup_over_bit": r.speedup_over_bit,
                "speedup_over_dense": r.speedup_over_dense,
            }
            for r in self.rows
        ]

    def formatted(self) -> str:
        """Aligned text rendering."""
        return format_table(self.as_dicts())


def analyze_workload(workload: ModelWorkload, scale: ExperimentScale) -> SparsityRow:
    """Compute one Table 4 row for an arbitrary in-memory workload.

    This is the library path for workloads that cannot be described by a
    :class:`~repro.runner.WorkloadSpec` (e.g. freshly extracted ones);
    :func:`run_table4` routes its grid through the sweep engine instead.
    """
    calibration = calibration_for(workload, scale.phi_config())
    breakdowns = []
    counts = []
    for layer in workload:
        decomposition = calibration[layer.name].decompose(layer.activations)
        breakdowns.append((sparsity_breakdown(decomposition), layer.activations.size))
        counts.append(operation_counts(decomposition))
    breakdown = aggregate_breakdowns(breakdowns)
    totals = aggregate_operation_counts(counts)
    return SparsityRow(
        model=workload.model_name,
        dataset=workload.dataset_name,
        bit_density=breakdown.bit_density,
        l1_density=breakdown.level1_density,
        l2_positive_density=breakdown.level2_positive_density,
        l2_negative_density=breakdown.level2_negative_density,
        speedup_over_bit=totals.speedup_over_bit,
        speedup_over_dense=totals.speedup_over_dense,
    )


def _row_from_record(record: dict) -> SparsityRow:
    """Build one Table 4 row from a decomposition sweep record."""
    breakdown = record["breakdown"]
    totals = OperationCounts(**record["operation_counts"])
    return SparsityRow(
        model=record["model"],
        dataset=record["dataset"],
        bit_density=breakdown["bit_density"],
        l1_density=breakdown["level1_density"],
        l2_positive_density=breakdown["level2_positive_density"],
        l2_negative_density=breakdown["level2_negative_density"],
        speedup_over_bit=totals.speedup_over_bit,
        speedup_over_dense=totals.speedup_over_dense,
    )


#: The model/dataset pairs of Table 4 (a subset of the full Fig. 8 list).
TABLE4_WORKLOADS: tuple[tuple[str, str], ...] = (
    ("vgg16", "cifar10"),
    ("vgg16", "cifar100"),
    ("resnet18", "cifar10"),
    ("resnet18", "cifar100"),
    ("spikingbert", "sst2"),
    ("spikingbert", "mnli"),
    ("spikformer", "cifar10dvs"),
    ("spikformer", "cifar100"),
    ("sdt", "cifar10dvs"),
    ("sdt", "cifar100"),
)

#: Densities of the random-matrix rows of Table 4.
RANDOM_DENSITIES: tuple[float, ...] = (0.05, 0.10, 0.20, 0.50)


def run_table4(
    scale: ExperimentScale = SMALL,
    *,
    workloads: tuple[tuple[str, str], ...] = TABLE4_WORKLOADS,
    include_random: bool = True,
    engine: SweepEngine | None = None,
) -> Table4Result:
    """Reproduce Table 4 across the model zoo plus random matrices.

    Parameters
    ----------
    scale:
        Experiment scale tier.
    workloads:
        Model/dataset pairs to analyse.
    include_random:
        Append the random-matrix rows (densities ``RANDOM_DENSITIES``).
    engine:
        Sweep engine executing the decomposition points; defaults to a
        serial, cache-less engine.

    Returns
    -------
    Table4Result
        One :class:`SparsityRow` per workload (and per random density).
    """
    engine = engine or default_engine()
    specs = [
        scale.workload_spec(model_name, dataset_name)
        for model_name, dataset_name in workloads
    ]
    if include_random:
        specs.extend(
            WorkloadSpec.random(density, m=1024, k=128, n=64, seed=int(density * 100))
            for density in RANDOM_DENSITIES
        )
    points = [
        SweepPoint(
            workload=spec,
            arch=scale.arch_config(),
            phi=scale.phi_config(),
            accelerator=DECOMPOSITION,
            label=f"table4:{spec.key}",
        )
        for spec in specs
    ]
    result = Table4Result()
    result.rows.extend(_row_from_record(record) for record in engine.run(points))
    return result
