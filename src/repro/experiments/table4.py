"""Table 4: Phi sparsity breakdown across models, datasets and random data.

For every model/dataset pair the table reports the bit density, the
Level 1 density, the +1 / -1 Level 2 densities, the theoretical speedup
over bit sparsity and over dense execution.  Rows for random binary
matrices of several densities show that patterns also emerge (to a lesser
degree) in unstructured data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.calibration import PhiCalibrator
from ..core.metrics import (
    aggregate_breakdowns,
    aggregate_operation_counts,
    operation_counts,
    sparsity_breakdown,
)
from ..workloads.generator import generate_random_workload
from ..workloads.workload import ModelWorkload
from .common import SMALL, ExperimentScale, format_table, get_workload


@dataclass(frozen=True)
class SparsityRow:
    """One row of Table 4."""

    model: str
    dataset: str
    bit_density: float
    l1_density: float
    l2_positive_density: float
    l2_negative_density: float
    speedup_over_bit: float
    speedup_over_dense: float

    @property
    def l2_density(self) -> float:
        """Total Level 2 density."""
        return self.l2_positive_density + self.l2_negative_density


@dataclass
class Table4Result:
    """All rows of the Table 4 reproduction."""

    rows: list[SparsityRow] = field(default_factory=list)

    def row(self, model: str, dataset: str) -> SparsityRow:
        """Look up the row of one model/dataset pair."""
        for row in self.rows:
            if row.model == model and row.dataset == dataset:
                return row
        raise KeyError(f"{model}/{dataset}")

    def as_dicts(self) -> list[dict]:
        """Rows as dictionaries."""
        return [
            {
                "model": r.model,
                "dataset": r.dataset,
                "bit_density": r.bit_density,
                "L1_density": r.l1_density,
                "L2_+1": r.l2_positive_density,
                "L2_-1": r.l2_negative_density,
                "speedup_over_bit": r.speedup_over_bit,
                "speedup_over_dense": r.speedup_over_dense,
            }
            for r in self.rows
        ]

    def formatted(self) -> str:
        """Aligned text rendering."""
        return format_table(self.as_dicts())


def analyze_workload(workload: ModelWorkload, scale: ExperimentScale) -> SparsityRow:
    """Compute one Table 4 row for an arbitrary workload."""
    calibrator = PhiCalibrator(scale.phi_config())
    breakdowns = []
    counts = []
    for layer in workload:
        calibration = calibrator.calibrate_layer(layer.name, layer.activations)
        decomposition = calibration.decompose(layer.activations)
        breakdowns.append((sparsity_breakdown(decomposition), layer.activations.size))
        counts.append(operation_counts(decomposition))
    breakdown = aggregate_breakdowns(breakdowns)
    totals = aggregate_operation_counts(counts)
    return SparsityRow(
        model=workload.model_name,
        dataset=workload.dataset_name,
        bit_density=breakdown.bit_density,
        l1_density=breakdown.level1_density,
        l2_positive_density=breakdown.level2_positive_density,
        l2_negative_density=breakdown.level2_negative_density,
        speedup_over_bit=totals.speedup_over_bit,
        speedup_over_dense=totals.speedup_over_dense,
    )


#: The model/dataset pairs of Table 4 (a subset of the full Fig. 8 list).
TABLE4_WORKLOADS: tuple[tuple[str, str], ...] = (
    ("vgg16", "cifar10"),
    ("vgg16", "cifar100"),
    ("resnet18", "cifar10"),
    ("resnet18", "cifar100"),
    ("spikingbert", "sst2"),
    ("spikingbert", "mnli"),
    ("spikformer", "cifar10dvs"),
    ("spikformer", "cifar100"),
    ("sdt", "cifar10dvs"),
    ("sdt", "cifar100"),
)

#: Densities of the random-matrix rows of Table 4.
RANDOM_DENSITIES: tuple[float, ...] = (0.05, 0.10, 0.20, 0.50)


def run_table4(
    scale: ExperimentScale = SMALL,
    *,
    workloads: tuple[tuple[str, str], ...] = TABLE4_WORKLOADS,
    include_random: bool = True,
) -> Table4Result:
    """Reproduce Table 4 across the model zoo plus random matrices."""
    result = Table4Result()
    for model_name, dataset_name in workloads:
        workload = get_workload(model_name, dataset_name, scale)
        result.rows.append(analyze_workload(workload, scale))
    if include_random:
        for density in RANDOM_DENSITIES:
            random_workload = generate_random_workload(
                density=density, m=1024, k=128, n=64, seed=int(density * 100)
            )
            row = analyze_workload(random_workload, scale)
            result.rows.append(row)
    return result
