"""Section 6.1: benefit and cost of the Phi preprocessing.

The pattern matcher compares every activation row with every calibrated
pattern, which costs energy — but it removes far more accumulation work in
the L1/L2 processors than it spends.  The paper reports an average benefit
to cost ratio of about 75x across the SNN models; this harness computes
the same ratio from the simulator's activity counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines.base import BUFFER_BYTES_PER_ACCUMULATION
from ..hw.energy import ACCUMULATE_ENERGY_PJ, BUFFER_ENERGY_PER_BYTE_PJ, MATCH_ENERGY_PJ
from ..runner.engine import SweepEngine, SweepPoint, default_engine
from .common import SMALL, ExperimentScale, format_table

#: Model/dataset pairs used for the preprocessing cost analysis.
DISCUSSION_WORKLOADS: tuple[tuple[str, str], ...] = (
    ("vgg16", "cifar100"),
    ("resnet18", "cifar100"),
    ("spikformer", "cifar100"),
    ("spikebert", "sst2"),
)


@dataclass(frozen=True)
class OverheadRow:
    """Preprocessing cost vs accumulation savings of one workload."""

    model: str
    dataset: str
    preprocessing_energy: float
    saved_accumulation_energy: float

    @property
    def benefit_cost_ratio(self) -> float:
        """Energy saved per unit of preprocessing energy."""
        if self.preprocessing_energy == 0:
            return float("inf")
        return self.saved_accumulation_energy / self.preprocessing_energy


@dataclass
class DiscussionResult:
    """Benefit/cost analysis across workloads."""

    rows: list[OverheadRow] = field(default_factory=list)

    def average_ratio(self) -> float:
        """Mean benefit/cost ratio."""
        ratios = [r.benefit_cost_ratio for r in self.rows]
        return sum(ratios) / len(ratios) if ratios else 0.0

    def formatted(self) -> str:
        """Aligned text rendering."""
        rows = [
            {
                "workload": f"{r.model}/{r.dataset}",
                "preproc_energy_J": r.preprocessing_energy,
                "saved_energy_J": r.saved_accumulation_energy,
                "benefit_cost": r.benefit_cost_ratio,
            }
            for r in self.rows
        ]
        return format_table(rows)


def run_discussion(
    scale: ExperimentScale = SMALL,
    *,
    workloads: tuple[tuple[str, str], ...] = DISCUSSION_WORKLOADS,
    engine: SweepEngine | None = None,
) -> DiscussionResult:
    """Reproduce the Section 6.1 preprocessing benefit/cost analysis.

    Parameters
    ----------
    scale:
        Experiment scale tier.
    workloads:
        Model/dataset pairs to analyse.
    engine:
        Sweep engine executing the Phi simulation points; defaults to a
        serial, cache-less engine.

    Returns
    -------
    DiscussionResult
        One :class:`OverheadRow` per workload, computed from the
        simulator's per-layer activity counters in the sweep records.
    """
    engine = engine or default_engine()
    points = [
        SweepPoint(
            workload=scale.workload_spec(model_name, dataset_name),
            arch=scale.arch_config(),
            phi=scale.phi_config(),
            label=f"discussion:{model_name}/{dataset_name}",
        )
        for model_name, dataset_name in workloads
    ]
    records = engine.run(points)
    result = DiscussionResult()
    for (model_name, dataset_name), record in zip(workloads, records):
        layers = record["layers"]
        match_ops = sum(layer["pattern_match_comparisons"] for layer in layers)
        preprocessing_energy = match_ops * MATCH_ENERGY_PJ * 1e-12
        # Saved accumulations: the difference between the bit-sparse work
        # and the Phi work, expanded over the output width of each layer.
        # Each skipped accumulation also saves its weight / partial-sum
        # SRAM accesses, which dominate the per-accumulation energy.
        saved_scalar_accumulations = sum(
            (
                layer["operation_counts"]["bit_sparse_ops"]
                - layer["operation_counts"]["phi_level1_ops"]
                - layer["operation_counts"]["phi_level2_ops"]
            )
            * layer["n"]
            for layer in layers
        )
        energy_per_accumulation = (
            ACCUMULATE_ENERGY_PJ
            + BUFFER_BYTES_PER_ACCUMULATION * BUFFER_ENERGY_PER_BYTE_PJ
        )
        saved_energy = (
            max(saved_scalar_accumulations, 0) * energy_per_accumulation * 1e-12
        )
        result.rows.append(
            OverheadRow(
                model=model_name,
                dataset=dataset_name,
                preprocessing_energy=preprocessing_energy,
                saved_accumulation_energy=saved_energy,
            )
        )
    return result
