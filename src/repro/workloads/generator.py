"""Workload generation: run models on synthetic data and extract GEMMs.

The generator wires together the model zoo and the synthetic datasets,
runs a recording forward pass, and packages every GEMM whose input is a
binary spike matrix into a :class:`~repro.workloads.workload.ModelWorkload`.
A small in-process cache avoids repeating the (relatively expensive)
network forward passes across experiments and benchmarks.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..datasets.synthetic import Dataset, make_dataset
from ..snn.encoding import event_stream_encode
from ..snn.models import PAPER_WORKLOADS, ModelSpec, build_model
from ..snn.network import SpikingNetwork
from .workload import LayerWorkload, ModelWorkload


def _build_model_for_dataset(
    spec: ModelSpec, dataset: Dataset, *, num_steps: int, seed: int
) -> SpikingNetwork:
    """Construct the model sized for the dataset's input shape."""
    kwargs: dict = {"num_classes": dataset.num_classes, "num_steps": num_steps, "seed": seed}
    if dataset.kind == "image":
        channels, image_size, _ = dataset.input_shape
        kwargs.update(in_channels=channels, image_size=image_size)
    elif dataset.kind == "event":
        _, channels, image_size, _ = dataset.input_shape
        kwargs.update(in_channels=channels, image_size=image_size)
    elif dataset.kind == "text":
        seq_len = dataset.input_shape[0]
        kwargs.update(seq_len=seq_len)
    elif dataset.kind == "sequence":
        _, num_features = dataset.input_shape
        kwargs.update(num_features=num_features)
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown dataset kind {dataset.kind!r}")
    return build_model(spec.model_name, **kwargs)


def extract_workload(
    network: SpikingNetwork,
    inputs: np.ndarray,
    *,
    dataset_name: str = "custom",
    binary_only: bool = True,
    pre_encoded: bool = False,
) -> ModelWorkload:
    """Run ``inputs`` through ``network`` and capture every GEMM.

    Parameters
    ----------
    network:
        The spiking network to profile.
    inputs:
        A batch of inputs, or a pre-encoded ``(T, batch, ...)`` train for
        event data together with ``pre_encoded=True``.
    binary_only:
        Keep only GEMMs whose recorded input is binary — these are the
        spike-driven matrix multiplications Phi accelerates.  Layers fed
        analog inputs (e.g. the first convolution under direct coding) are
        skipped, matching the paper's focus on spike activations.
    pre_encoded:
        Set when ``inputs`` already carries the leading time dimension.
    """
    _, records = network.record_activations(inputs, pre_encoded=pre_encoded)
    matmul_layers = {layer.name: layer for layer in network.matmul_layers()}
    workload = ModelWorkload(model_name=network.name, dataset_name=dataset_name)
    for layer_name, record in records.items():
        if not record.matrices:
            continue
        if binary_only and not record.is_binary:
            continue
        activations = record.stacked()
        weights = matmul_layers[layer_name].weight_matrix()
        workload.add(
            LayerWorkload(
                name=layer_name,
                activations=activations.astype(np.uint8),
                weights=np.asarray(weights, dtype=np.float64),
            )
        )
    return workload


def generate_workload(
    model_name: str,
    dataset_name: str,
    *,
    batch_size: int = 4,
    num_steps: int = 4,
    seed: int = 0,
    split: str = "test",
) -> ModelWorkload:
    """Build model + dataset, run a batch, and return the recorded workload."""
    dataset = make_dataset(dataset_name)
    spec = ModelSpec(model_name, dataset_name, dataset.kind)
    network = _build_model_for_dataset(spec, dataset, num_steps=num_steps, seed=seed)

    data = dataset.test_data if split == "test" else dataset.train_data
    batch = data[:batch_size]
    pre_encoded = dataset.kind in ("event", "sequence")
    if pre_encoded:
        # Event data is (B, T, C, H, W) and sequence data (B, T, F);
        # re-bin the frames to the network's time-step count and move
        # time to the front: (T, B, ...).
        batch = np.stack(
            [event_stream_encode(sample, num_steps) for sample in batch], axis=1
        )
    return extract_workload(
        network, batch, dataset_name=dataset_name, pre_encoded=pre_encoded
    )


@lru_cache(maxsize=32)
def cached_workload(
    model_name: str,
    dataset_name: str,
    *,
    batch_size: int = 4,
    num_steps: int = 4,
    seed: int = 0,
    split: str = "test",
) -> ModelWorkload:
    """Memoised version of :func:`generate_workload` (treat result as read-only)."""
    return generate_workload(
        model_name,
        dataset_name,
        batch_size=batch_size,
        num_steps=num_steps,
        seed=seed,
        split=split,
    )


def paper_workload_specs() -> tuple[ModelSpec, ...]:
    """The model/dataset pairs evaluated in Fig. 8 and Table 4."""
    return PAPER_WORKLOADS


def generate_random_workload(
    *,
    density: float,
    m: int = 512,
    k: int = 128,
    n: int = 64,
    seed: int = 0,
    name: str | None = None,
) -> ModelWorkload:
    """Random binary activation matrices (Table 4, "Random" rows).

    Parameters
    ----------
    density:
        Probability of a 1 at each activation position.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must be in [0, 1]")
    rng = np.random.default_rng(seed)
    activations = (rng.random((m, k)) < density).astype(np.uint8)
    weights = rng.standard_normal((k, n))
    workload = ModelWorkload(
        model_name=name or f"random{int(density * 100)}",
        dataset_name="random",
    )
    workload.add(LayerWorkload(name="random_gemm", activations=activations, weights=weights))
    return workload
