"""Temporal workloads: per-timestep spike GEMMs kept separate.

The standard generator stacks a layer's recorded activations over time
(``record.stacked()``) into one tall GEMM, which erases *when* each spike
happened.  For recurrent models — whose sparsity structure varies step to
step as membrane state accumulates — that distinction is the whole point,
so this module unrolls each recorded time step into its own
:class:`~repro.workloads.workload.LayerWorkload` whose name carries the
step index (``"rnn0.input@t2"``).  The duplicate-layer-name guard in
:meth:`~repro.workloads.workload.ModelWorkload.add` is what keeps this
unrolling collision-free.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..datasets.synthetic import make_dataset
from ..snn.encoding import event_stream_encode
from ..snn.models import ModelSpec
from ..snn.network import SpikingNetwork
from .generator import _build_model_for_dataset
from .workload import LayerWorkload, ModelWorkload

#: Separator between the base layer name and the time-step index.
TIMESTEP_SEPARATOR = "@t"


def timestep_layer_name(base_name: str, step: int) -> str:
    """Name of the unrolled GEMM of ``base_name`` at time step ``step``."""
    if step < 0:
        raise ValueError("step must be >= 0")
    return f"{base_name}{TIMESTEP_SEPARATOR}{step}"


def split_timestep_name(name: str) -> tuple[str, int | None]:
    """Split an unrolled layer name into ``(base_name, step)``.

    Returns ``(name, None)`` when the name carries no time-step suffix.
    """
    base, sep, suffix = name.rpartition(TIMESTEP_SEPARATOR)
    if sep and suffix.isdigit():
        return base, int(suffix)
    return name, None


def extract_temporal_workload(
    network: SpikingNetwork,
    inputs: np.ndarray,
    *,
    dataset_name: str = "custom",
    binary_only: bool = True,
    pre_encoded: bool = False,
) -> ModelWorkload:
    """Run ``inputs`` through ``network`` and capture every GEMM *per step*.

    Mirrors :func:`~repro.workloads.generator.extract_workload`, but
    instead of stacking each layer's recorded matrices it emits one
    :class:`~repro.workloads.workload.LayerWorkload` per ``(layer, time
    step)`` pair, named via :func:`timestep_layer_name`.  Layer order is
    preserved and steps of one layer stay adjacent, so per-step sparsity
    can be read straight off the workload summary.
    """
    _, records = network.record_activations(inputs, pre_encoded=pre_encoded)
    matmul_layers = {layer.name: layer for layer in network.matmul_layers()}
    workload = ModelWorkload(model_name=network.name, dataset_name=dataset_name)
    for layer_name, record in records.items():
        if not record.matrices:
            continue
        if binary_only and not record.is_binary:
            continue
        weights = np.asarray(matmul_layers[layer_name].weight_matrix(), dtype=np.float64)
        for step, matrix in enumerate(record.matrices):
            workload.add(
                LayerWorkload(
                    name=timestep_layer_name(layer_name, step),
                    activations=matrix.astype(np.uint8),
                    weights=weights,
                )
            )
    return workload


def generate_temporal_workload(
    model_name: str,
    dataset_name: str,
    *,
    batch_size: int = 4,
    num_steps: int = 4,
    seed: int = 0,
    split: str = "test",
) -> ModelWorkload:
    """Build model + dataset and return the per-timestep unrolled workload."""
    dataset = make_dataset(dataset_name)
    spec = ModelSpec(model_name, dataset_name, dataset.kind)
    network = _build_model_for_dataset(spec, dataset, num_steps=num_steps, seed=seed)

    data = dataset.test_data if split == "test" else dataset.train_data
    batch = data[:batch_size]
    pre_encoded = dataset.kind in ("event", "sequence")
    if pre_encoded:
        batch = np.stack(
            [event_stream_encode(sample, num_steps) for sample in batch], axis=1
        )
    return extract_temporal_workload(
        network, batch, dataset_name=dataset_name, pre_encoded=pre_encoded
    )


@lru_cache(maxsize=32)
def cached_temporal_workload(
    model_name: str,
    dataset_name: str,
    *,
    batch_size: int = 4,
    num_steps: int = 4,
    seed: int = 0,
    split: str = "test",
) -> ModelWorkload:
    """Memoised :func:`generate_temporal_workload` (treat result as read-only)."""
    return generate_temporal_workload(
        model_name,
        dataset_name,
        batch_size=batch_size,
        num_steps=num_steps,
        seed=seed,
        split=split,
    )


def temporal_density_profile(workload: ModelWorkload) -> dict[int, float]:
    """Element-weighted activation bit density per time step.

    Layers without a time-step suffix are ignored; the result maps each
    step index to the density across every unrolled GEMM of that step.
    """
    ones: dict[int, int] = {}
    elements: dict[int, int] = {}
    for layer in workload:
        _, step = split_timestep_name(layer.name)
        if step is None:
            continue
        ones[step] = ones.get(step, 0) + int(layer.activations.sum())
        elements[step] = elements.get(step, 0) + int(layer.activations.size)
    return {
        step: (ones[step] / elements[step] if elements[step] else 0.0)
        for step in sorted(elements)
    }
