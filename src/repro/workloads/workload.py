"""Workload containers: per-layer activation and weight matrices.

The accelerator simulator, the baselines and all experiments consume the
same representation: a :class:`LayerWorkload` is one GEMM (binary spike
activation matrix times weight matrix) and a :class:`ModelWorkload`
collects the GEMMs of a whole network in execution order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..core.patterns import is_binary_matrix


@dataclass(frozen=True)
class LayerWorkload:
    """A single spike-matrix multiplication extracted from a model.

    Attributes
    ----------
    name:
        Layer identifier (matches the network layer name).
    activations:
        Binary matrix of shape ``(M, K)`` — the spike inputs of the GEMM.
    weights:
        Weight matrix of shape ``(K, N)``.
    """

    name: str
    activations: np.ndarray
    weights: np.ndarray

    def __post_init__(self) -> None:
        activations = np.asarray(self.activations)
        weights = np.asarray(self.weights, dtype=np.float64)
        if activations.ndim != 2 or weights.ndim != 2:
            raise ValueError("activations and weights must be 2-D")
        if activations.shape[1] != weights.shape[0]:
            raise ValueError(
                f"K mismatch: activations K={activations.shape[1]}, "
                f"weights K={weights.shape[0]}"
            )
        if not is_binary_matrix(activations):
            raise ValueError("activations must be binary (0/1)")
        object.__setattr__(self, "activations", activations.astype(np.uint8))
        object.__setattr__(self, "weights", weights)

    @property
    def m(self) -> int:
        """Number of activation rows (M dimension)."""
        return int(self.activations.shape[0])

    @property
    def k(self) -> int:
        """Reduction width (K dimension)."""
        return int(self.activations.shape[1])

    @property
    def n(self) -> int:
        """Output width (N dimension)."""
        return int(self.weights.shape[1])

    @property
    def bit_density(self) -> float:
        """Fraction of 1 bits in the activation matrix."""
        if self.activations.size == 0:
            return 0.0
        return float(self.activations.mean())

    @property
    def dense_macs(self) -> int:
        """Number of multiply-accumulates a dense accelerator performs."""
        return self.m * self.k * self.n

    @property
    def nonzero_accumulations(self) -> int:
        """Number of weight-row accumulations under plain bit sparsity."""
        return int(self.activations.sum()) * self.n

    def reference_output(self) -> np.ndarray:
        """Exact GEMM output ``activations @ weights`` (golden reference)."""
        return self.activations.astype(np.float64) @ self.weights


@dataclass
class ModelWorkload:
    """All GEMMs of a model on a particular dataset, in execution order."""

    model_name: str
    dataset_name: str
    layers: list[LayerWorkload] = field(default_factory=list)

    @property
    def key(self) -> str:
        """Canonical identifier, e.g. ``"vgg16/cifar10"``."""
        return f"{self.model_name}/{self.dataset_name}"

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterator[LayerWorkload]:
        return iter(self.layers)

    def __getitem__(self, index: int) -> LayerWorkload:
        return self.layers[index]

    def add(self, layer: LayerWorkload) -> None:
        """Append a layer workload.

        Layer names must be unique within a model:
        :meth:`activation_matrices`, :meth:`weight_matrices` and
        :meth:`summary` key their results by name, so a duplicate would
        silently shadow an earlier layer in every consumer.
        """
        if any(existing.name == layer.name for existing in self.layers):
            raise ValueError(
                f"duplicate layer name {layer.name!r} in workload {self.key!r}; "
                "layer names must be unique (temporal unrolling should encode "
                "the time step in the name, e.g. 'fc1@t0')"
            )
        self.layers.append(layer)

    def layer_names(self) -> list[str]:
        """Names of all layers in order."""
        return [layer.name for layer in self.layers]

    @property
    def total_dense_macs(self) -> int:
        """Dense MAC count summed over all layers."""
        return sum(layer.dense_macs for layer in self.layers)

    @property
    def total_bit_sparse_ops(self) -> int:
        """Bit-sparse accumulation count summed over all layers."""
        return sum(layer.nonzero_accumulations for layer in self.layers)

    @property
    def average_bit_density(self) -> float:
        """Element-weighted average activation bit density."""
        total = sum(layer.activations.size for layer in self.layers)
        if total == 0:
            return 0.0
        ones = sum(int(layer.activations.sum()) for layer in self.layers)
        return ones / total

    def activation_matrices(self) -> dict[str, np.ndarray]:
        """Mapping layer name -> binary activation matrix."""
        return {layer.name: layer.activations for layer in self.layers}

    def weight_matrices(self) -> dict[str, np.ndarray]:
        """Mapping layer name -> weight matrix."""
        return {layer.name: layer.weights for layer in self.layers}

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-layer shape and density summary for reports."""
        return {
            layer.name: {
                "M": layer.m,
                "K": layer.k,
                "N": layer.n,
                "bit_density": layer.bit_density,
            }
            for layer in self.layers
        }
