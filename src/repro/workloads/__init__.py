"""Workload extraction: per-layer spike activation / weight matrices."""

from .generator import (
    cached_workload,
    extract_workload,
    generate_random_workload,
    generate_workload,
    paper_workload_specs,
)
from .workload import LayerWorkload, ModelWorkload

__all__ = [
    "LayerWorkload",
    "ModelWorkload",
    "extract_workload",
    "generate_workload",
    "cached_workload",
    "generate_random_workload",
    "paper_workload_specs",
]
