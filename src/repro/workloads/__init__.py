"""Workload extraction: per-layer spike activation / weight matrices."""

from .generator import (
    cached_workload,
    extract_workload,
    generate_random_workload,
    generate_workload,
    paper_workload_specs,
)
from .temporal import (
    cached_temporal_workload,
    extract_temporal_workload,
    generate_temporal_workload,
    split_timestep_name,
    temporal_density_profile,
    timestep_layer_name,
)
from .workload import LayerWorkload, ModelWorkload

__all__ = [
    "LayerWorkload",
    "ModelWorkload",
    "extract_workload",
    "generate_workload",
    "cached_workload",
    "generate_random_workload",
    "paper_workload_specs",
    "extract_temporal_workload",
    "generate_temporal_workload",
    "cached_temporal_workload",
    "temporal_density_profile",
    "timestep_layer_name",
    "split_timestep_name",
]
