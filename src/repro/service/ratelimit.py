"""Per-client rolling-window rate limiting for the sweep service.

A single slow-loop client (or a buggy retry loop) must not be able to
monopolise the handler threads or the dispatcher queue.  The limiter is
a classic rolling window: each client key keeps the timestamps of its
recent requests; a request is allowed while fewer than ``limit``
timestamps fall inside the trailing ``window`` seconds, and otherwise
refused together with the number of seconds after which the oldest
timestamp ages out — exactly what the HTTP layer forwards as a 429
``Retry-After`` header, and what :class:`~repro.service.client.RetryPolicy`
sleeps on before retrying.

Clients are keyed by *token-or-peer*: authenticated requests share one
bucket per token, anonymous requests one bucket per peer address (see
``repro.service.http``).  The limiter itself is transport-agnostic and
clock-injectable, so it unit-tests without sleeping.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

#: Idle client buckets are pruned once the key table grows past this,
#: so a scan of spoofed peer addresses cannot grow memory unboundedly.
_PRUNE_THRESHOLD = 1024


class RateLimiter:
    """A thread-safe rolling-window request limiter.

    Parameters
    ----------
    limit:
        Maximum requests allowed per key inside any trailing window.
    window:
        Window length in seconds.
    clock:
        Monotonic time source; injectable for tests.
    """

    def __init__(
        self,
        limit: int,
        window: float = 60.0,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if limit < 1:
            raise ValueError("limit must be >= 1")
        if window <= 0:
            raise ValueError("window must be > 0")
        self.limit = limit
        self.window = float(window)
        self._clock = clock
        self._lock = threading.Lock()
        self._hits: dict[str, deque[float]] = {}

    def allow(self, key: str) -> tuple[bool, float]:
        """Account one request for ``key`` and decide whether it may run.

        Parameters
        ----------
        key:
            The client identity (token digest or peer address).

        Returns
        -------
        tuple of (bool, float)
            ``(True, 0.0)`` when the request is within budget (and has
            been counted), or ``(False, retry_after_seconds)`` when the
            client must back off — refused requests are *not* counted,
            so a client that honours ``Retry-After`` is never pushed
            further into the red by its own retries.
        """
        now = self._clock()
        horizon = now - self.window
        with self._lock:
            hits = self._hits.get(key)
            if hits is None:
                hits = self._hits[key] = deque()
            while hits and hits[0] <= horizon:
                hits.popleft()
            if len(hits) < self.limit:
                hits.append(now)
                if len(self._hits) > _PRUNE_THRESHOLD:
                    self._prune(horizon)
                return True, 0.0
            return False, max(hits[0] - horizon, 0.0)

    def _prune(self, horizon: float) -> None:
        """Drop keys whose entire history predates ``horizon`` (lock held)."""
        stale = [
            key
            for key, hits in self._hits.items()
            if not hits or hits[-1] <= horizon
        ]
        for key in stale:
            del self._hits[key]
