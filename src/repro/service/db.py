"""The durable journal behind the sweep service: sqlite, WAL, fsync.

:class:`ServiceDB` is the persistence layer of the durable fabric.  It
journals three kinds of state:

``jobs``
    One row per accepted job, upserted on every state transition.  On
    boot :meth:`load_jobs` replays them — terminal jobs are restored
    verbatim (their payloads and record keys included), queued and
    orphaned running jobs are re-enqueued by the
    :class:`~repro.service.jobs.JobService`.
``workers``
    Worker registrations and their last observed heartbeat, for
    post-mortem inspection of which nodes served a sweep.
``leases``
    An append-only event journal (grant / renew / expire / complete /
    requeue) — the durable audit trail of the lease state machine.

Design constraints, in order:

* **stdlib only** — ``sqlite3``, no ORM.
* **WAL mode, ``synchronous=FULL``** — every commit is fsynced, so a
  SIGKILL between commits loses at most the uncommitted transition; a
  job is never half-written (commits are atomic).
* **Single write connection** — one ``sqlite3.Connection`` opened with
  ``check_same_thread=False`` and guarded by one lock.  The service's
  write volume is per *job transition*, not per sweep point, so
  serialising writers costs nothing measurable and sidesteps
  ``SQLITE_BUSY`` entirely.
* **Schema-versioned** — the version lives in the ``meta`` table and a
  mismatch refuses to open (no silent migrations of a journal that
  guards durability).
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any

#: Bump on any change to the table layout below.  There are no in-place
#: migrations: the journal is a recovery aid, not an archive, and a
#: version mismatch must fail loudly rather than replay garbage.
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    id          TEXT PRIMARY KEY,
    seq         INTEGER NOT NULL,
    key         TEXT NOT NULL,
    status      TEXT NOT NULL,
    request     TEXT NOT NULL,
    error       TEXT,
    payload     TEXT,
    record_keys TEXT NOT NULL DEFAULT '[]',
    created     REAL NOT NULL,
    started     REAL,
    finished    REAL
);
CREATE TABLE IF NOT EXISTS workers (
    id         TEXT PRIMARY KEY,
    state      TEXT NOT NULL,
    registered REAL NOT NULL,
    last_seen  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS leases (
    ts     REAL NOT NULL,
    unit   TEXT NOT NULL,
    worker TEXT,
    event  TEXT NOT NULL,
    detail TEXT NOT NULL DEFAULT '{}'
);
"""


class SchemaMismatch(RuntimeError):
    """The on-disk journal was written by an incompatible schema version."""


class ServiceDB:
    """WAL-mode sqlite journal for jobs, workers and lease events.

    Parameters
    ----------
    path:
        The database file.  Created (with its parent directory) on
        first open; reopening an existing journal verifies the schema
        version and raises :class:`SchemaMismatch` on skew.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        # One shared write connection: sqlite objects refuse cross-thread
        # use by default, but every access below holds self._lock, which
        # is exactly the discipline check_same_thread enforces per-object.
        self._conn = sqlite3.connect(
            str(self.path), check_same_thread=False, timeout=10.0
        )
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        # FULL fsyncs the WAL on every commit: a power cut or SIGKILL
        # loses at most the transition being written, never a committed
        # one.  The write volume (per job transition / lease event) is
        # far too low for this to matter on any benchmark.
        self._conn.execute("PRAGMA synchronous=FULL")
        self._init_schema()

    def _init_schema(self) -> None:
        with self._lock, self._conn:
            self._conn.executescript(_SCHEMA)
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema', ?)",
                    (str(SCHEMA_VERSION),),
                )
            elif int(row["value"]) != SCHEMA_VERSION:
                raise SchemaMismatch(
                    f"service journal {self.path} has schema version "
                    f"{row['value']}, this build expects {SCHEMA_VERSION}; "
                    "move the file aside to start a fresh journal"
                )

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            try:
                self._conn.close()
            except sqlite3.ProgrammingError:  # pragma: no cover - already closed
                pass

    def __enter__(self) -> "ServiceDB":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Jobs
    # ------------------------------------------------------------------ #
    def save_job(self, view: dict[str, Any]) -> None:
        """Upsert one job row from a journal view (see ``Job.journal_view``).

        Called on submit and on every state transition; the upsert makes
        replays and out-of-order snapshots harmless — the last committed
        view wins, and a stale intermediate view only ever re-runs work
        whose results are already in the content-addressed cache.
        """
        with self._lock, self._conn:
            self._conn.execute(
                """
                INSERT INTO jobs (id, seq, key, status, request, error,
                                  payload, record_keys, created, started, finished)
                VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                ON CONFLICT(id) DO UPDATE SET
                    status = excluded.status,
                    error = excluded.error,
                    payload = excluded.payload,
                    record_keys = excluded.record_keys,
                    started = excluded.started,
                    finished = excluded.finished
                """,
                (
                    view["id"],
                    view["seq"],
                    view["key"],
                    view["status"],
                    json.dumps(view["request"]),
                    view.get("error"),
                    json.dumps(view["payload"])
                    if view.get("payload") is not None
                    else None,
                    json.dumps(sorted(view.get("record_keys", []))),
                    view["created"],
                    view.get("started"),
                    view.get("finished"),
                ),
            )

    def delete_job(self, job_id: str) -> None:
        """Drop an evicted job's row (its records stay in the cache)."""
        with self._lock, self._conn:
            self._conn.execute("DELETE FROM jobs WHERE id = ?", (job_id,))

    def load_jobs(self) -> list[dict[str, Any]]:
        """Every journaled job, in submission (``seq``) order."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM jobs ORDER BY seq"
            ).fetchall()
        jobs = []
        for row in rows:
            jobs.append(
                {
                    "id": row["id"],
                    "seq": row["seq"],
                    "key": row["key"],
                    "status": row["status"],
                    "request": json.loads(row["request"]),
                    "error": row["error"],
                    "payload": json.loads(row["payload"])
                    if row["payload"] is not None
                    else None,
                    "record_keys": json.loads(row["record_keys"]),
                    "created": row["created"],
                    "started": row["started"],
                    "finished": row["finished"],
                }
            )
        return jobs

    def max_job_seq(self) -> int:
        """The highest journaled job sequence number (0 when empty)."""
        with self._lock:
            row = self._conn.execute("SELECT MAX(seq) AS m FROM jobs").fetchone()
        return int(row["m"] or 0)

    # ------------------------------------------------------------------ #
    # Workers
    # ------------------------------------------------------------------ #
    def save_worker(self, worker_id: str, state: str) -> None:
        """Upsert a worker registration row with a fresh ``last_seen``."""
        now = time.time()
        with self._lock, self._conn:
            self._conn.execute(
                """
                INSERT INTO workers (id, state, registered, last_seen)
                VALUES (?, ?, ?, ?)
                ON CONFLICT(id) DO UPDATE SET
                    state = excluded.state,
                    last_seen = excluded.last_seen
                """,
                (worker_id, state, now, now),
            )

    def load_workers(self) -> list[dict[str, Any]]:
        """Every journaled worker registration, oldest first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM workers ORDER BY registered"
            ).fetchall()
        return [dict(row) for row in rows]

    # ------------------------------------------------------------------ #
    # Lease journal (append-only)
    # ------------------------------------------------------------------ #
    def lease_event(
        self, unit: str, worker: str | None, event: str, **detail: Any
    ) -> None:
        """Append one lease state-machine event to the journal."""
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT INTO leases (ts, unit, worker, event, detail) "
                "VALUES (?, ?, ?, ?, ?)",
                (time.time(), unit, worker, event, json.dumps(detail)),
            )

    def lease_events(self) -> list[dict[str, Any]]:
        """The full lease journal, oldest first."""
        with self._lock:
            rows = self._conn.execute("SELECT * FROM leases ORDER BY ts").fetchall()
        return [
            {
                "ts": row["ts"],
                "unit": row["unit"],
                "worker": row["worker"],
                "event": row["event"],
                "detail": json.loads(row["detail"]),
            }
            for row in rows
        ]
