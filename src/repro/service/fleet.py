"""Worker-fleet coordination: leases, heartbeats and record ingest.

The :class:`FleetCoordinator` is the server half of the durable sweep
fabric.  It sits between the engine and the HTTP surface:

* The engine (via its ``dispatcher`` hook) calls :meth:`dispatch` with
  pending ``{cache_key: point}`` work; the coordinator groups the points
  into ``(workload spec, PhiConfig)`` *units* — the same granularity as
  the engine's own dispatch — and blocks until workers complete them or
  they fall back to local execution.
* Workers (over HTTP) call :meth:`register`, :meth:`heartbeat`,
  :meth:`lease` and :meth:`ingest`.

The lease state machine generalises the engine's in-process dead-owner
fallback (``_InFlight``) across processes:

* a unit is **queued**, then **leased** to exactly one worker with a
  TTL that heartbeats renew;
* a lease whose TTL lapses (worker crashed, hung, or partitioned) is
  **expired** and the unit requeued — at-least-once execution, with the
  content-addressed cache making duplicate completions harmless;
* a unit that fails too many leases, or whose fleet empties out, is
  **withdrawn** and the engine simulates it locally — remote execution
  is an accelerator, never a correctness dependency;
* ingested records are schema-validated, checked against the unit's
  expected cache keys, idempotent on duplicates, and written through to
  the result cache immediately so a server crash after ingest never
  loses remote work.

Expiry is *lazy*: there is no reaper thread.  Every lease/ingest call
and every tick of a waiting :meth:`dispatch` loop sweeps expired
workers and leases first, so a dead worker is detected within one
dispatch tick without any background machinery to shut down.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
import warnings
from collections import deque
from typing import Any

from ..runner.cache import ResultCache
from ..runner.engine import SweepPoint, _unit_key, validate_record
from .audit import AuditLog
from .db import ServiceDB

#: Unit lifecycle states.
UNIT_QUEUED = "queued"
UNIT_LEASED = "leased"
UNIT_DONE = "done"
UNIT_WITHDRAWN = "withdrawn"


class FleetError(ValueError):
    """A malformed or inconsistent fleet-protocol request (HTTP 4xx)."""


class UnknownWorker(FleetError):
    """The worker id is not (or no longer) registered (HTTP 404).

    Workers treat this as a signal to re-register: it is the normal
    aftermath of a server restart or of missing heartbeats past the TTL.
    """


class WorkUnit:
    """One leased batch of sweep points sharing every derived artifact."""

    __slots__ = (
        "id",
        "points",
        "keys",
        "state",
        "owner",
        "expires",
        "failures",
        "records",
    )

    def __init__(self, unit_id: str, points: list[SweepPoint], keys: list[str]) -> None:
        self.id = unit_id
        self.points = points
        self.keys = keys
        self.state = UNIT_QUEUED
        self.owner: str | None = None
        self.expires: float | None = None
        self.failures = 0
        self.records: dict[str, dict] = {}


class _Worker:
    """Server-side view of one registered worker."""

    __slots__ = ("id", "expires", "completed")

    def __init__(self, worker_id: str, expires: float) -> None:
        self.id = worker_id
        self.expires = expires
        self.completed = 0


class FleetCoordinator:
    """Lease queue + registry bridging the engine and remote workers.

    Parameters
    ----------
    cache:
        The engine's result cache; ingested records are written through
        to it immediately (durability) in addition to being handed back
        to the waiting :meth:`dispatch` call.  ``None`` disables the
        write-through.
    audit:
        Optional audit log for lease state-machine events.
    db:
        Optional :class:`~repro.service.db.ServiceDB`; worker
        registrations and lease events are journaled into it.
    lease_ttl:
        Seconds a lease (and a worker registration) stays valid without
        a heartbeat.  Workers are told to heartbeat at a third of this.
    max_unit_failures:
        Lease failures (expiry or explicit worker error) after which a
        unit stops being offered to the fleet and runs locally instead.
    """

    def __init__(
        self,
        *,
        cache: ResultCache | None = None,
        audit: AuditLog | None = None,
        db: ServiceDB | None = None,
        lease_ttl: float = 10.0,
        max_unit_failures: int = 3,
    ) -> None:
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be > 0")
        self.cache = cache
        self.audit = audit
        self.db = db
        self.lease_ttl = float(lease_ttl)
        self.max_unit_failures = max_unit_failures
        self._cond = threading.Condition()
        self._workers: dict[str, _Worker] = {}
        self._units: dict[str, WorkUnit] = {}
        self._queue: deque[str] = deque()
        self._counter = itertools.count(1)
        self._draining = False
        self._warned_cache_unwritable = False
        # Lifetime counters for /healthz.
        self._leases_granted = 0
        self._leases_expired = 0
        self._units_completed = 0

    # ------------------------------------------------------------------ #
    def _audit(self, event: str, **fields: Any) -> None:
        if self.audit is not None:
            self.audit.record(event, **fields)

    def _journal(self, unit: str, worker: str | None, event: str, **detail) -> None:
        if self.db is not None:
            self.db.lease_event(unit, worker, event, **detail)

    # ------------------------------------------------------------------ #
    # Worker lifecycle (HTTP side)
    # ------------------------------------------------------------------ #
    def register(self, *, actor: str | None = None) -> dict[str, Any]:
        """Register a new worker; returns its id and heartbeat contract."""
        worker_id = f"worker-{uuid.uuid4().hex[:12]}"
        with self._cond:
            self._workers[worker_id] = _Worker(
                worker_id, time.monotonic() + self.lease_ttl
            )
        if self.db is not None:
            self.db.save_worker(worker_id, "alive")
        self._audit("worker.registered", worker=worker_id, actor=actor)
        return {
            "worker_id": worker_id,
            "ttl": self.lease_ttl,
            "heartbeat_interval": self.lease_ttl / 3.0,
        }

    def heartbeat(self, worker_id: str) -> dict[str, Any]:
        """Renew a worker's registration and every lease it holds."""
        now = time.monotonic()
        with self._cond:
            self._expire_locked(now)
            worker = self._workers.get(worker_id)
            if worker is None:
                raise UnknownWorker(f"unknown worker {worker_id!r}; re-register")
            worker.expires = now + self.lease_ttl
            renewed = 0
            for unit in self._units.values():
                if unit.state == UNIT_LEASED and unit.owner == worker_id:
                    unit.expires = now + self.lease_ttl
                    renewed += 1
        return {"ok": True, "leases_renewed": renewed}

    # ------------------------------------------------------------------ #
    # Lease / ingest (HTTP side)
    # ------------------------------------------------------------------ #
    def lease(self, worker_id: str) -> dict[str, Any] | None:
        """Grant the oldest queued unit to ``worker_id``, or ``None``.

        The grant is the wire view of the unit: serialised points, their
        expected cache keys, and the lease TTL.  The worker rebuilds the
        points with :meth:`SweepPoint.from_dict` and verifies the keys
        round-trip — version skew surfaces as a key mismatch there, not
        as a silently divergent record here.
        """
        now = time.monotonic()
        with self._cond:
            self._expire_locked(now)
            worker = self._workers.get(worker_id)
            if worker is None:
                raise UnknownWorker(f"unknown worker {worker_id!r}; re-register")
            worker.expires = now + self.lease_ttl
            if self._draining:
                return None
            while self._queue:
                unit = self._units.get(self._queue.popleft())
                if unit is None or unit.state != UNIT_QUEUED:
                    continue
                unit.state = UNIT_LEASED
                unit.owner = worker_id
                unit.expires = now + self.lease_ttl
                self._leases_granted += 1
                grant = {
                    "id": unit.id,
                    "points": [point.to_dict() for point in unit.points],
                    "keys": list(unit.keys),
                    "ttl": self.lease_ttl,
                }
                break
            else:
                return None
        self._journal(unit.id, worker_id, "granted", points=len(unit.keys))
        self._audit(
            "lease.granted", unit=unit.id, worker=worker_id, points=len(unit.keys)
        )
        return grant

    def fail(self, worker_id: str, unit_id: str, error: str) -> None:
        """A worker reports it could not complete a leased unit."""
        with self._cond:
            if worker_id not in self._workers:
                raise UnknownWorker(f"unknown worker {worker_id!r}; re-register")
            unit = self._units.get(unit_id)
            if unit is None or unit.state != UNIT_LEASED or unit.owner != worker_id:
                return  # already expired / completed elsewhere; nothing to do
            self._requeue_locked(unit, reason=f"worker error: {error}")
            self._cond.notify_all()
        self._audit("unit.failed", unit=unit_id, worker=worker_id, error=error)

    def ingest(
        self, worker_id: str, unit_id: str, records: dict[str, dict]
    ) -> dict[str, Any]:
        """Accept completed v3 records for a unit (idempotent, validated).

        Every record must map to one of the unit's expected cache keys
        and pass :func:`~repro.runner.engine.validate_record`; duplicate
        keys (late redelivery, two workers racing one requeued unit) are
        counted and discarded.  Records are accepted from any registered
        worker — content addressing makes the sender irrelevant to the
        result — so a worker whose lease expired but that finishes
        anyway still contributes instead of wasting its work.
        """
        now = time.monotonic()
        with self._cond:
            self._expire_locked(now)
            worker = self._workers.get(worker_id)
            if worker is None:
                raise UnknownWorker(f"unknown worker {worker_id!r}; re-register")
            worker.expires = now + self.lease_ttl
            unit = self._units.get(unit_id)
            if unit is None:
                raise FleetError(
                    f"unknown unit {unit_id!r} (completed, withdrawn or expired)"
                )
            problems: list[str] = []
            expected = set(unit.keys)
            for key, record in records.items():
                if key not in expected:
                    problems.append(f"unexpected record key {key!r}")
                    continue
                record_problems = (
                    validate_record(record)
                    if isinstance(record, dict)
                    else ["record is not an object"]
                )
                problems.extend(f"{key}: {p}" for p in record_problems)
            if problems:
                raise FleetError(
                    "rejected ingest: " + "; ".join(problems[:5])
                    + (f" (+{len(problems) - 5} more)" if len(problems) > 5 else "")
                )
            fresh = {
                key: record
                for key, record in records.items()
                if key not in unit.records
            }
            unit.records.update(fresh)
            duplicates = len(records) - len(fresh)
            done = set(unit.records) >= expected
            if done and unit.state != UNIT_DONE:
                unit.state = UNIT_DONE
                unit.owner = None
                worker.completed += 1
                self._units_completed += 1
                self._cond.notify_all()
        self._write_through(fresh)
        if fresh:
            self._audit(
                "records.ingested",
                unit=unit_id,
                worker=worker_id,
                records=len(fresh),
                duplicates=duplicates,
            )
        if done:
            self._journal(unit_id, worker_id, "completed", records=len(unit.records))
            self._audit("lease.completed", unit=unit_id, worker=worker_id)
        return {"ingested": len(fresh), "duplicates": duplicates, "done": done}

    def _write_through(self, records: dict[str, dict]) -> None:
        """Persist ingested records into the result cache immediately."""
        if self.cache is None:
            return
        for key, record in records.items():
            try:
                self.cache.put(key, record)
            except OSError as error:
                if not self._warned_cache_unwritable:
                    self._warned_cache_unwritable = True
                    warnings.warn(
                        f"result cache {self.cache.root} is unwritable "
                        f"({error}); ingested records are not persisted",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                return

    # ------------------------------------------------------------------ #
    # Engine side
    # ------------------------------------------------------------------ #
    def dispatch(self, points_by_key: dict[str, SweepPoint]) -> dict[str, dict]:
        """Offer pending points to the fleet; return the completed subset.

        Blocks while the fleet is making progress and returns early —
        possibly with a partial result, possibly empty — whenever the
        remainder is better run locally: no workers registered, the
        fleet emptied out mid-sweep, a unit burned through its failure
        budget, or the service is draining.  The engine simulates
        whatever is missing from the returned mapping.
        """
        if not points_by_key:
            return {}
        with self._cond:
            self._expire_locked(time.monotonic())
            if self._draining or not self._alive_locked():
                return {}
            mine: set[str] = set()
            grouped: dict[tuple, WorkUnit] = {}
            for key, point in points_by_key.items():
                group = _unit_key(point)
                unit = grouped.get(group)
                if unit is None:
                    unit = grouped[group] = WorkUnit(
                        f"unit-{next(self._counter):06d}", [], []
                    )
                    self._units[unit.id] = unit
                    self._queue.append(unit.id)
                    mine.add(unit.id)
                unit.points.append(point)
                unit.keys.append(key)
            self._cond.notify_all()

        completed: dict[str, dict] = {}
        with self._cond:
            while mine:
                now = time.monotonic()
                self._expire_locked(now)
                alive = self._alive_locked()
                for unit_id in list(mine):
                    unit = self._units[unit_id]
                    if unit.state == UNIT_DONE:
                        completed.update(unit.records)
                    elif unit.state == UNIT_QUEUED and (
                        self._draining
                        or not alive
                        or unit.failures >= self.max_unit_failures
                    ):
                        unit.state = UNIT_WITHDRAWN
                        self._audit(
                            "unit.withdrawn",
                            unit=unit.id,
                            failures=unit.failures,
                            workers=alive,
                        )
                    else:
                        continue
                    mine.discard(unit_id)
                    del self._units[unit_id]
                if mine:
                    self._cond.wait(timeout=0.2)
        return completed

    # ------------------------------------------------------------------ #
    # Internals (lock held)
    # ------------------------------------------------------------------ #
    def _alive_locked(self) -> int:
        return len(self._workers)

    def _requeue_locked(self, unit: WorkUnit, *, reason: str) -> None:
        unit.failures += 1
        unit.state = UNIT_QUEUED
        unit.owner = None
        unit.expires = None
        if unit.failures < self.max_unit_failures:
            self._queue.append(unit.id)
        self._journal(unit.id, None, "requeued", reason=reason, failures=unit.failures)
        self._audit(
            "unit.requeued", unit=unit.id, reason=reason, failures=unit.failures
        )

    def _expire_locked(self, now: float) -> None:
        """Lazily expire dead workers and lapsed leases (condition held)."""
        dead = [w for w in self._workers.values() if w.expires < now]
        for worker in dead:
            del self._workers[worker.id]
        lapsed = [
            unit
            for unit in self._units.values()
            if unit.state == UNIT_LEASED and unit.expires is not None
            and unit.expires < now
        ]
        for unit in lapsed:
            owner = unit.owner
            self._leases_expired += 1
            self._journal(unit.id, owner, "expired")
            self._audit("lease.expired", unit=unit.id, worker=owner)
            self._requeue_locked(unit, reason=f"lease expired (owner {owner})")
        if dead or lapsed:
            self._cond.notify_all()
        for worker in dead:
            if self.db is not None:
                self.db.save_worker(worker.id, "dead")
            self._audit("worker.expired", worker=worker.id)

    # ------------------------------------------------------------------ #
    def counts(self) -> dict[str, Any]:
        """Fleet summary for ``/healthz`` (operator-facing only)."""
        with self._cond:
            self._expire_locked(time.monotonic())
            states: dict[str, int] = {}
            for unit in self._units.values():
                states[unit.state] = states.get(unit.state, 0) + 1
            return {
                "workers": len(self._workers),
                "units": states,
                "leases_granted": self._leases_granted,
                "leases_expired": self._leases_expired,
                "units_completed": self._units_completed,
            }

    def drain(self) -> None:
        """Stop offering work to the fleet; waiting dispatches withdraw."""
        with self._cond:
            self._draining = True
            self._cond.notify_all()
