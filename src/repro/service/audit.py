"""Append-only JSONL audit log of every service mutation.

Before this module, a served repo had no answer to "who submitted the
job that filled the store?" or "did the service refuse that record, and
why?".  The audit log records one JSON object per line for every
job/record mutation the service performs — submissions (including
dedup hits), state transitions, records served and refused, auth and
rate-limit refusals, and drain/shutdown — so an operator can replay
exactly what happened to a long-lived service after the fact.

Properties the fault-injection suite relies on:

* **Append-only JSONL** — one ``json.dumps`` line per event, written
  under a lock and flushed immediately, so a SIGKILL can lose at most
  the final partial line and every complete line always parses.
* **Never a correctness dependency** — an unwritable log (full disk,
  revoked permissions) degrades to a one-time warning and the service
  keeps running; auditing is observability, not a gate.
* **No secrets** — actors are logged as token *digests* or peer
  addresses (see ``repro.service.http``), never raw tokens.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
import warnings
from typing import Any, Iterator, TextIO


class AuditLog:
    """A thread-safe append-only JSONL event log.

    Parameters
    ----------
    path:
        The log file; parent directories are created on first write and
        an existing file is appended to (restarts extend the history,
        they never truncate it).
    max_bytes:
        Size-based rotation threshold, or ``None``/``0`` for the
        historical unbounded behaviour.  When appending a line would
        grow the file past this many bytes, the current file is renamed
        to ``<path>.1`` (replacing any previous rotation — one
        generation is kept) and a fresh file is started.  Rotation
        happens on whole-line boundaries only, so both generations
        always parse line-by-line.
    """

    def __init__(
        self, path: pathlib.Path | str, *, max_bytes: int | None = None
    ) -> None:
        self.path = pathlib.Path(path)
        self.max_bytes = int(max_bytes) if max_bytes else None
        self._lock = threading.Lock()
        self._handle: TextIO | None = None
        self._size = 0
        self._warned_unwritable = False

    def _open_locked(self) -> None:
        """Open the append handle and learn the current size (lock held).

        The size is tracked in bytes written, not via ``tell()`` — text
        -mode ``tell`` returns an opaque cookie, not a byte offset.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a", encoding="utf-8")
        try:
            self._size = self.path.stat().st_size
        except OSError:
            self._size = 0

    @property
    def rotated_path(self) -> pathlib.Path:
        """Where the previous generation lands after a rotation."""
        return self.path.with_name(self.path.name + ".1")

    def record(self, event: str, **fields: Any) -> None:
        """Append one event line: ``{"ts": ..., "event": ..., **fields}``.

        Parameters
        ----------
        event:
            Dotted event name (``job.submitted``, ``record.refused``,
            ``service.draining``, ...).
        **fields:
            JSON-serialisable context for the event.
        """
        line = json.dumps({"ts": time.time(), "event": event, **fields})
        size = len(line.encode("utf-8")) + 1
        with self._lock:
            try:
                if self._handle is None:
                    self._open_locked()
                if (
                    self.max_bytes
                    and self._size > 0
                    and self._size + size > self.max_bytes
                ):
                    # Rotate on a whole-line boundary: close, rename the
                    # full generation to `.1` (atomically replacing the
                    # previous one) and start fresh.
                    self._handle.close()
                    self._handle = None
                    os.replace(self.path, self.rotated_path)
                    self._open_locked()
                self._handle.write(line + "\n")
                self._handle.flush()
                self._size += size
            except (OSError, ValueError):
                if not self._warned_unwritable:
                    self._warned_unwritable = True
                    warnings.warn(
                        f"audit log {self.path} is unwritable; "
                        "events will not be recorded",
                        RuntimeWarning,
                        stacklevel=2,
                    )

    def close(self) -> None:
        """Close the underlying file handle (idempotent)."""
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None

    def entries(self, *, include_rotated: bool = False) -> Iterator[dict]:
        """Yield every complete event in the log, oldest first.

        A trailing partial line (the SIGKILL case) is skipped rather
        than raised, matching the durability contract above.  With
        ``include_rotated`` the retained ``.1`` generation (when any)
        is replayed first, so the combined stream stays chronological.
        """
        paths = [self.rotated_path, self.path] if include_rotated else [self.path]
        for path in paths:
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                continue
            for line in text.splitlines():
                if not line.strip():
                    continue
                try:
                    yield json.loads(line)
                except ValueError:
                    continue
