"""Append-only JSONL audit log of every service mutation.

Before this module, a served repo had no answer to "who submitted the
job that filled the store?" or "did the service refuse that record, and
why?".  The audit log records one JSON object per line for every
job/record mutation the service performs — submissions (including
dedup hits), state transitions, records served and refused, auth and
rate-limit refusals, and drain/shutdown — so an operator can replay
exactly what happened to a long-lived service after the fact.

Properties the fault-injection suite relies on:

* **Append-only JSONL** — one ``json.dumps`` line per event, written
  under a lock and flushed immediately, so a SIGKILL can lose at most
  the final partial line and every complete line always parses.
* **Never a correctness dependency** — an unwritable log (full disk,
  revoked permissions) degrades to a one-time warning and the service
  keeps running; auditing is observability, not a gate.
* **No secrets** — actors are logged as token *digests* or peer
  addresses (see ``repro.service.http``), never raw tokens.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time
import warnings
from typing import Any, Iterator, TextIO


class AuditLog:
    """A thread-safe append-only JSONL event log.

    Parameters
    ----------
    path:
        The log file; parent directories are created on first write and
        an existing file is appended to (restarts extend the history,
        they never truncate it).
    """

    def __init__(self, path: pathlib.Path | str) -> None:
        self.path = pathlib.Path(path)
        self._lock = threading.Lock()
        self._handle: TextIO | None = None
        self._warned_unwritable = False

    def record(self, event: str, **fields: Any) -> None:
        """Append one event line: ``{"ts": ..., "event": ..., **fields}``.

        Parameters
        ----------
        event:
            Dotted event name (``job.submitted``, ``record.refused``,
            ``service.draining``, ...).
        **fields:
            JSON-serialisable context for the event.
        """
        line = json.dumps({"ts": time.time(), "event": event, **fields})
        with self._lock:
            try:
                if self._handle is None:
                    self.path.parent.mkdir(parents=True, exist_ok=True)
                    self._handle = self.path.open("a", encoding="utf-8")
                self._handle.write(line + "\n")
                self._handle.flush()
            except (OSError, ValueError):
                if not self._warned_unwritable:
                    self._warned_unwritable = True
                    warnings.warn(
                        f"audit log {self.path} is unwritable; "
                        "events will not be recorded",
                        RuntimeWarning,
                        stacklevel=2,
                    )

    def close(self) -> None:
        """Close the underlying file handle (idempotent)."""
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None

    def entries(self) -> Iterator[dict]:
        """Yield every complete event in the log, oldest first.

        A trailing partial line (the SIGKILL case) is skipped rather
        than raised, matching the durability contract above.
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                yield json.loads(line)
            except ValueError:
                continue
