"""Versioned request/response schemas for the sweep service.

Every response body the service emits carries a top-level ``version``
field (:data:`PROTOCOL_VERSION`), and every request body *may* carry
one.  A request that names a version this server does not speak is
rejected with a clear 400 — instead of the old failure mode where a
schema mismatch surfaced as a ``KeyError`` deep inside a handler (or,
worse, inside the client parsing a response shape it predates).

The rules are deliberately small:

* A request without a ``version`` field is treated as speaking the
  current protocol (clients predate the field; their bodies are
  validated structurally anyway).
* A request with ``version != PROTOCOL_VERSION`` is a 400 whose message
  names both versions, so a stale client fails actionably.
* Responses always embed ``version`` so clients can detect a server
  ahead of (or behind) them before touching any other field.

This module is import-leaf on purpose (no intra-package imports), so
the client, the job model and the HTTP layer can all share it without
cycles.
"""

from __future__ import annotations

from typing import Any, Mapping

#: The protocol version this build speaks.  Bump on any change to the
#: request or response shapes that an old peer could misparse.
PROTOCOL_VERSION = 1


def version_problem(payload: Any) -> str | None:
    """The reason ``payload``'s declared protocol version is unusable.

    Parameters
    ----------
    payload:
        A decoded request body (any JSON value; non-mappings carry no
        version and are fine at this layer).

    Returns
    -------
    str or None
        A human-readable rejection message, or ``None`` when the payload
        either declares the current version or declares none at all.
    """
    if not isinstance(payload, Mapping) or "version" not in payload:
        return None
    version = payload["version"]
    if isinstance(version, bool) or not isinstance(version, int):
        return (
            f"'version' must be an integer, got {version!r}; "
            f"this server speaks protocol version {PROTOCOL_VERSION}"
        )
    if version != PROTOCOL_VERSION:
        return (
            f"unsupported protocol version {version}; "
            f"this server speaks version {PROTOCOL_VERSION}"
        )
    return None


def versioned(body: Mapping[str, Any]) -> dict[str, Any]:
    """``body`` as a response object stamped with the protocol version."""
    return {"version": PROTOCOL_VERSION, **body}
