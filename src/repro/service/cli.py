"""Command-line entry point of the sweep service.

Examples
--------
Serve the shared engine on port 8731 with 2 simulator workers::

    python -m repro.service serve --port 8731 --jobs 2

Point clients at it::

    python -m repro.runner exp fig7 --scale tiny --remote http://127.0.0.1:8731
    python -m repro.report --scale tiny --remote http://127.0.0.1:8731

Add worker nodes to the fleet (each leases work units, simulates them
against the shared artifact store and streams records back; killing one
mid-sweep only requeues its lease)::

    python -m repro.service worker --server http://127.0.0.1:8731
    python -m repro.service worker --server http://127.0.0.1:8731

Stop it gracefully (drains queued and running jobs first)::

    python - <<'PY'
    from repro.service import ServiceClient
    ServiceClient("http://127.0.0.1:8731").shutdown()
    PY

``Ctrl-C`` / ``SIGTERM`` drain the same way.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import signal
import sys
import threading

from ..runner.cache import ResultCache, default_cache_dir
from ..runner.engine import SweepEngine
from ..runner.store import ArtifactStore, default_store_dir
from .audit import AuditLog
from .db import ServiceDB
from .http import DEFAULT_REQUEST_TIMEOUT, serve
from .jobs import JobService
from .ratelimit import RateLimiter
from .worker import FleetWorker


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.service`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve sweeps/experiments from one warm engine over HTTP+JSON.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p = sub.add_parser("serve", help="start the job service")
    p.add_argument("--host", default="127.0.0.1", help="bind address (default: %(default)s)")
    p.add_argument(
        "--port",
        type=int,
        default=8731,
        help="TCP port; 0 binds an ephemeral port (default: %(default)s)",
    )
    p.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="simulator worker processes of the shared engine (default: 1)",
    )
    p.add_argument(
        "--dispatchers",
        type=int,
        default=2,
        help="concurrent job dispatcher threads (default: %(default)s)",
    )
    p.add_argument(
        "--cache-dir",
        default=default_cache_dir(),
        help="result cache directory (default: %(default)s)",
    )
    p.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk result cache"
    )
    p.add_argument(
        "--store-dir",
        default=default_store_dir(),
        help="shared artifact store directory (default: %(default)s)",
    )
    p.add_argument(
        "--no-store",
        action="store_true",
        help="disable the shared workload/calibration store",
    )
    p.add_argument(
        "--auth-token",
        default=os.environ.get("REPRO_SERVICE_TOKEN"),
        help=(
            "static bearer token required on every endpoint except "
            "/healthz (default: $REPRO_SERVICE_TOKEN; unset disables auth)"
        ),
    )
    p.add_argument(
        "--rate-limit",
        type=int,
        default=0,
        metavar="N",
        help=(
            "allow at most N requests per client (token-or-peer) per "
            "rolling --rate-window; 0 disables (default: %(default)s)"
        ),
    )
    p.add_argument(
        "--rate-window",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="rolling rate-limit window length (default: %(default)s)",
    )
    p.add_argument(
        "--audit-log",
        default=None,
        metavar="PATH",
        help=(
            "append-only JSONL audit log of every job/record mutation "
            "(default: disabled)"
        ),
    )
    p.add_argument(
        "--audit-max-bytes",
        type=int,
        default=0,
        metavar="N",
        help=(
            "rotate the audit log to <path>.1 when it would exceed N "
            "bytes; 0 keeps it unbounded (default: %(default)s)"
        ),
    )
    p.add_argument(
        "--db",
        default=None,
        metavar="PATH",
        help=(
            "sqlite journal for jobs/leases/workers; on boot the service "
            "recovers from it — finished jobs are replayed, queued and "
            "orphaned running jobs re-enqueued (default: "
            "<cache-dir>/service.db when the cache is enabled)"
        ),
    )
    p.add_argument(
        "--no-db",
        action="store_true",
        help="disable the durable job journal (pre-fabric volatile behaviour)",
    )
    p.add_argument(
        "--lease-ttl",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help=(
            "worker heartbeat/lease TTL; a worker silent this long is "
            "declared dead and its leased units requeue (default: %(default)s)"
        ),
    )
    p.add_argument(
        "--request-timeout",
        type=float,
        default=DEFAULT_REQUEST_TIMEOUT,
        metavar="SECONDS",
        help=(
            "per-connection socket timeout bounding slow clients "
            "(default: %(default)s)"
        ),
    )
    p.add_argument(
        "--quiet", "-q", action="store_true", help="suppress access/progress logs"
    )
    p.set_defaults(func=_cmd_serve)

    w = sub.add_parser(
        "worker",
        help="join a service's worker fleet (lease units, simulate, ingest)",
    )
    w.add_argument(
        "--server",
        required=True,
        metavar="URL",
        help="base URL of the service to join (http://host:port)",
    )
    w.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="simulator worker processes of this node's engine (default: 1)",
    )
    w.add_argument(
        "--store-dir",
        default=default_store_dir(),
        help="shared artifact store directory (default: %(default)s)",
    )
    w.add_argument(
        "--no-store",
        action="store_true",
        help="disable the shared workload/calibration store",
    )
    w.add_argument(
        "--token",
        default=os.environ.get("REPRO_SERVICE_TOKEN"),
        help="bearer token for an authenticated service "
        "(default: $REPRO_SERVICE_TOKEN)",
    )
    w.add_argument(
        "--poll",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="idle sleep between lease attempts (default: %(default)s)",
    )
    w.add_argument(
        "--drag",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help=argparse.SUPPRESS,  # fault-injection aid: delay before simulating
    )
    w.add_argument(
        "--max-units",
        type=int,
        default=None,
        metavar="N",
        help="exit after completing N units (default: run until signalled)",
    )
    w.add_argument(
        "--quiet", "-q", action="store_true", help="suppress progress logs"
    )
    w.set_defaults(func=_cmd_worker)
    return parser


def _resolve_db_path(args: argparse.Namespace) -> pathlib.Path | None:
    """Where the sqlite journal lives, honouring --db/--no-db/--no-cache.

    The default placement — ``<cache-dir>/service.db`` — never collides
    with the cache's record layout: records live under two-hex-digit
    fan-out directories and are globbed as ``*/*.json``, so a file at
    the cache root is invisible to it.
    """
    if args.no_db:
        return None
    if args.db:
        return pathlib.Path(args.db)
    if args.no_cache:
        return None  # no default home for the journal without a cache dir
    return pathlib.Path(args.cache_dir) / "service.db"


def _cmd_serve(args: argparse.Namespace) -> int:
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    store = None if args.no_store else ArtifactStore(args.store_dir)
    engine = SweepEngine(cache=cache, jobs=args.jobs, store=store)
    # Fork the worker pool while this process is still single-threaded
    # (JobService and the HTTP server spawn threads next).
    engine.warm_up()
    audit = (
        AuditLog(args.audit_log, max_bytes=args.audit_max_bytes or None)
        if args.audit_log
        else None
    )
    limiter = (
        RateLimiter(args.rate_limit, args.rate_window)
        if args.rate_limit > 0
        else None
    )
    db_path = _resolve_db_path(args)
    db = ServiceDB(db_path) if db_path is not None else None
    service = JobService(
        engine,
        workers=args.dispatchers,
        audit=audit,
        db=db,
        lease_ttl=args.lease_ttl,
    )
    server = serve(
        service,
        host=args.host,
        port=args.port,
        quiet=args.quiet,
        auth_token=args.auth_token,
        rate_limiter=limiter,
        request_timeout=args.request_timeout,
    )

    def _drain(signum, frame) -> None:  # pragma: no cover - signal path
        server.trigger_shutdown()

    signal.signal(signal.SIGTERM, _drain)
    # The line clients and the bench harness parse to discover the port.
    print(f"serving on {server.url}", flush=True)
    if not args.quiet:
        print(
            f"engine: jobs={args.jobs}, "
            f"cache={None if cache is None else cache.root}, "
            f"store={None if store is None else store.root}; "
            f"dispatchers={args.dispatchers}, "
            f"auth={'on' if args.auth_token else 'off'}, "
            f"rate_limit={args.rate_limit or 'off'}, "
            f"audit={args.audit_log or 'off'}, "
            f"db={db_path or 'off'}, lease_ttl={args.lease_ttl}",
            file=sys.stderr,
            flush=True,
        )
    exit_code = 0
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    except Exception as error:  # noqa: BLE001 - top-level serve loop
        # An unexpected crash of the serve loop must not masquerade as a
        # clean stop: log the cause, still drain (accepted jobs finish,
        # the drain is acknowledged below), and exit non-zero so
        # supervisors restart the service.
        print(
            f"error: server loop failed: {type(error).__name__}: {error}",
            file=sys.stderr,
            flush=True,
        )
        exit_code = 1
    finally:
        service.drain()
        server.server_close()
        if audit is not None:
            audit.close()
    print(
        "drained; service stopped"
        if exit_code == 0
        else "drained; service stopped after error",
        flush=True,
    )
    return exit_code


def _cmd_worker(args: argparse.Namespace) -> int:
    store = None if args.no_store else ArtifactStore(args.store_dir)
    worker = FleetWorker(
        args.server,
        store=store,
        jobs=args.jobs,
        token=args.token,
        poll=args.poll,
        drag=args.drag,
        # The readiness line tests and the fleet-smoke CI job parse.
        on_register=lambda worker_id: print(
            f"worker {worker_id} registered with {args.server}", flush=True
        ),
    )
    stop = threading.Event()

    def _stop(signum, frame) -> None:  # pragma: no cover - signal path
        stop.set()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    completed = worker.run(stop, max_units=args.max_units)
    if not args.quiet:
        print(f"worker stopped after {completed} units", flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to the selected subcommand."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
