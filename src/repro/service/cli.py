"""Command-line entry point of the sweep service.

Examples
--------
Serve the shared engine on port 8731 with 2 simulator workers::

    python -m repro.service serve --port 8731 --jobs 2

Point clients at it::

    python -m repro.runner exp fig7 --scale tiny --remote http://127.0.0.1:8731
    python -m repro.report --scale tiny --remote http://127.0.0.1:8731

Stop it gracefully (drains queued and running jobs first)::

    python - <<'PY'
    from repro.service import ServiceClient
    ServiceClient("http://127.0.0.1:8731").shutdown()
    PY

``Ctrl-C`` / ``SIGTERM`` drain the same way.
"""

from __future__ import annotations

import argparse
import signal
import sys

from ..runner.cache import ResultCache, default_cache_dir
from ..runner.engine import SweepEngine
from ..runner.store import ArtifactStore, default_store_dir
from .http import serve
from .jobs import JobService


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.service`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve sweeps/experiments from one warm engine over HTTP+JSON.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p = sub.add_parser("serve", help="start the job service")
    p.add_argument("--host", default="127.0.0.1", help="bind address (default: %(default)s)")
    p.add_argument(
        "--port",
        type=int,
        default=8731,
        help="TCP port; 0 binds an ephemeral port (default: %(default)s)",
    )
    p.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="simulator worker processes of the shared engine (default: 1)",
    )
    p.add_argument(
        "--dispatchers",
        type=int,
        default=2,
        help="concurrent job dispatcher threads (default: %(default)s)",
    )
    p.add_argument(
        "--cache-dir",
        default=default_cache_dir(),
        help="result cache directory (default: %(default)s)",
    )
    p.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk result cache"
    )
    p.add_argument(
        "--store-dir",
        default=default_store_dir(),
        help="shared artifact store directory (default: %(default)s)",
    )
    p.add_argument(
        "--no-store",
        action="store_true",
        help="disable the shared workload/calibration store",
    )
    p.add_argument(
        "--quiet", "-q", action="store_true", help="suppress access/progress logs"
    )
    p.set_defaults(func=_cmd_serve)
    return parser


def _cmd_serve(args: argparse.Namespace) -> int:
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    store = None if args.no_store else ArtifactStore(args.store_dir)
    engine = SweepEngine(cache=cache, jobs=args.jobs, store=store)
    # Fork the worker pool while this process is still single-threaded
    # (JobService and the HTTP server spawn threads next).
    engine.warm_up()
    service = JobService(engine, workers=args.dispatchers)
    server = serve(service, host=args.host, port=args.port, quiet=args.quiet)

    def _drain(signum, frame) -> None:  # pragma: no cover - signal path
        server.trigger_shutdown()

    signal.signal(signal.SIGTERM, _drain)
    # The line clients and the bench harness parse to discover the port.
    print(f"serving on {server.url}", flush=True)
    if not args.quiet:
        print(
            f"engine: jobs={args.jobs}, "
            f"cache={None if cache is None else cache.root}, "
            f"store={None if store is None else store.root}; "
            f"dispatchers={args.dispatchers}",
            file=sys.stderr,
            flush=True,
        )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        service.drain()
        server.server_close()
    print("drained; service stopped", flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to the selected subcommand."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
