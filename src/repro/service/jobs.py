"""The job model and dispatcher of the sweep service.

A *job* is one validated client request — ``(experiment, scale,
overrides)`` against the experiment registry — moving through the
lifecycle ``queued → running → done | failed``.  The
:class:`JobService` owns a queue of jobs and a small pool of dispatcher
threads that execute them against one shared, warm
:class:`~repro.runner.SweepEngine`; the engine's re-entrant ``run()``
(see :func:`repro.runner.engine.progress_scope` and the in-flight table)
is what lets concurrent jobs overlap safely without ever simulating the
same point twice.

Deduplication levels, from cheapest to deepest:

1. **In-flight jobs** — a request identical to a queued/running job
   returns that job instead of creating a new one.
2. **Engine in-flight points** — overlapping *different* jobs that share
   sweep points wait on each other's simulations.
3. **ResultCache** — previously computed points load as records.
4. **ArtifactStore** — even a cache miss reuses the stored workload /
   calibration / decomposition.
"""

from __future__ import annotations

import itertools
import json
import queue
import re
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..experiments.registry import SCALES, get_experiment
from ..runner.cache import cache_key
from ..runner.engine import SweepEngine, SweepPoint, progress_scope, validate_record
from .audit import AuditLog
from .db import ServiceDB
from .fleet import FleetCoordinator
from .schemas import version_problem

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: The exact top-level fields a job request may carry (plus the optional
#: protocol ``version``); anything else is rejected with
#: :class:`RequestError` before it can reach a dispatcher.
REQUEST_FIELDS = ("experiment", "scale", "overrides")

#: A record cache key is exactly a lowercase SHA-256 hex digest.  The
#: format gate is what keeps client-supplied keys from reaching
#: ``ResultCache.path_for`` as path-traversal fragments.
_RECORD_KEY = re.compile(r"[0-9a-f]{64}")


class RequestError(ValueError):
    """A malformed or unknown client request (maps to HTTP 4xx)."""


class ServiceUnavailable(RuntimeError):
    """The service is draining and no longer accepts jobs (HTTP 503)."""


@dataclass(frozen=True)
class JobRequest:
    """One validated ``POST /jobs`` body.

    Parameters
    ----------
    experiment:
        A registered experiment name (see
        :func:`repro.experiments.registry.experiment_names`).
    scale:
        A named scale tier (``tiny``/``small``/``paper``).
    overrides:
        Extra keyword arguments for the harness, overriding the tier
        presets — exactly what :meth:`ExperimentSpec.run` accepts.
    """

    experiment: str
    scale: str = "small"
    overrides: Mapping[str, Any] = field(default_factory=dict)

    @classmethod
    def from_payload(cls, payload: Any) -> "JobRequest":
        """Validate an untrusted JSON body into a request.

        Raises
        ------
        RequestError
            On anything that is not a JSON object with exactly the known
            fields, a registered experiment, a named scale and a string
            -keyed JSON-serialisable overrides mapping.  Validation runs
            on the HTTP thread, so a bad request can never crash a
            dispatcher worker.
        """
        if not isinstance(payload, Mapping):
            raise RequestError(
                f"request body must be a JSON object, got {type(payload).__name__}"
            )
        # Protocol-version gate first: a client speaking another schema
        # version gets one clear message, not a field-level complaint
        # about a shape it was never meant to produce.
        problem = version_problem(payload)
        if problem is not None:
            raise RequestError(problem)
        unknown = set(payload) - set(REQUEST_FIELDS) - {"version"}
        if unknown:
            raise RequestError(
                f"unknown request fields {sorted(unknown)}; "
                f"expected only {list(REQUEST_FIELDS)}"
            )
        experiment = payload.get("experiment")
        if not isinstance(experiment, str):
            raise RequestError("request needs an 'experiment' name (string)")
        try:
            get_experiment(experiment)
        except KeyError as error:
            raise RequestError(str(error.args[0])) from None
        scale = payload.get("scale", "small")
        if not isinstance(scale, str) or scale not in SCALES:
            raise RequestError(
                f"unknown scale {scale!r}; expected one of {sorted(SCALES)}"
            )
        overrides = payload.get("overrides", {})
        if not isinstance(overrides, Mapping) or not all(
            isinstance(key, str) for key in overrides
        ):
            raise RequestError("'overrides' must be an object with string keys")
        try:
            json.dumps(dict(overrides))
        except (TypeError, ValueError) as error:
            raise RequestError(f"'overrides' must be JSON-serialisable: {error}")
        return cls(experiment=experiment, scale=scale, overrides=dict(overrides))

    def to_dict(self) -> dict[str, Any]:
        """The request as a plain JSON object (inverse of ``from_payload``)."""
        return {
            "experiment": self.experiment,
            "scale": self.scale,
            "overrides": dict(self.overrides),
        }

    @property
    def key(self) -> str:
        """Canonical dedup identity: the hash of the normalised body."""
        return cache_key(self.to_dict())


class Job:
    """One request moving through ``queued → running → done | failed``.

    All mutation happens on the dispatcher thread that executes the job;
    readers (HTTP threads) take :meth:`snapshot`, which locks just long
    enough to copy a consistent view — that is what keeps concurrent
    ``GET /jobs/<id>`` responses coherent while progress streams in.
    """

    def __init__(self, job_id: str, request: JobRequest, *, seq: int = 0) -> None:
        self.id = job_id
        self.seq = seq
        self.request = request
        self.status = QUEUED
        self.error: str | None = None
        self.payload: dict | None = None
        self.created = time.time()
        self.started: float | None = None
        self.finished: float | None = None
        self._record_keys: set[str] = set()
        self._progress = {
            "points": 0,
            "cache_hits": 0,
            "executed": 0,
            "inflight_hits": 0,
            "current_done": 0,
            "current_total": 0,
        }
        self._lock = threading.Lock()
        self._done_event = threading.Event()

    # ------------------------------------------------------------------ #
    @property
    def done(self) -> bool:
        """Whether the job reached a terminal state (done or failed)."""
        return self._done_event.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job is terminal; returns whether it is."""
        return self._done_event.wait(timeout)

    # ------------------------------------------------------------------ #
    # Dispatcher-side transitions
    # ------------------------------------------------------------------ #
    def mark_running(self) -> None:
        """Transition ``queued → running`` (dispatcher thread only)."""
        with self._lock:
            self.status = RUNNING
            self.started = time.time()

    def mark_done(self, payload: dict) -> None:
        """Transition ``running → done`` with the result payload."""
        with self._lock:
            self.payload = payload
            self.status = DONE
            self.finished = time.time()
        self._done_event.set()

    def mark_failed(self, error: str) -> None:
        """Transition ``running → failed`` with a human-readable error."""
        with self._lock:
            self.error = error
            self.status = FAILED
            self.finished = time.time()
        self._done_event.set()

    def on_progress(self, done: int, total: int, point: SweepPoint, origin: str) -> None:
        """Engine progress hook: accumulate streaming per-point counts."""
        key = point.cache_key()
        with self._lock:
            progress = self._progress
            progress["points"] += 1
            counter = {
                "cache": "cache_hits",
                "run": "executed",
                "inflight": "inflight_hits",
            }.get(origin)
            if counter is not None:
                progress[counter] += 1
            progress["current_done"] = done
            progress["current_total"] = total
            self._record_keys.add(key)

    # ------------------------------------------------------------------ #
    def summary(self) -> dict[str, Any]:
        """A cheap listing view: identity, status and progress counts only.

        ``GET /jobs`` serves this for every retained job; the full
        :meth:`snapshot` — record keys and result payload included —
        stays on ``GET /jobs/<id>``, so the listing endpoint does not
        scale its response with the number of sweep points per job.
        """
        with self._lock:
            return {
                "id": self.id,
                "status": self.status,
                "request": self.request.to_dict(),
                "created": self.created,
                "started": self.started,
                "finished": self.finished,
                "progress": dict(self._progress),
                "error": self.error,
            }

    def snapshot(self) -> dict[str, Any]:
        """A consistent JSON view of the job for ``GET /jobs/<id>``.

        Includes the live progress counters while running; the payload
        and the sorted sweep-record cache keys appear once the job is
        done, so clients can fetch every raw v3 record the job touched
        via ``GET /records/<key>``.
        """
        with self._lock:
            view: dict[str, Any] = {
                "id": self.id,
                "status": self.status,
                "request": self.request.to_dict(),
                "created": self.created,
                "started": self.started,
                "finished": self.finished,
                "progress": dict(self._progress),
                "record_keys": sorted(self._record_keys),
            }
            if self.error is not None:
                view["error"] = self.error
            if self.payload is not None:
                view["payload"] = self.payload
        return view

    # ------------------------------------------------------------------ #
    # Durability (see repro.service.db)
    # ------------------------------------------------------------------ #
    def journal_view(self) -> dict[str, Any]:
        """The consistent row :meth:`ServiceDB.save_job` persists."""
        with self._lock:
            return {
                "id": self.id,
                "seq": self.seq,
                "key": self.request.key,
                "status": self.status,
                "request": self.request.to_dict(),
                "error": self.error,
                "payload": self.payload,
                "record_keys": sorted(self._record_keys),
                "created": self.created,
                "started": self.started,
                "finished": self.finished,
            }

    @classmethod
    def restore(cls, row: dict[str, Any], request: JobRequest) -> "Job":
        """Rebuild a job from a journal row loaded at boot.

        Terminal rows come back verbatim (payload, record keys, error,
        timestamps, done-event set).  Non-terminal rows — queued jobs,
        and running jobs orphaned by a crash — come back ``queued`` with
        their progress zeroed: the re-run recounts from scratch, and the
        result cache makes the replay cheap.
        """
        job = cls(row["id"], request, seq=row["seq"])
        job.created = row["created"]
        if row["status"] in (DONE, FAILED):
            job.status = row["status"]
            job.error = row["error"]
            job.payload = row["payload"]
            job.started = row["started"]
            job.finished = row["finished"]
            job._record_keys = set(row.get("record_keys", []))
            job._done_event.set()
        return job


class JobService:
    """Queue + dispatcher pool executing jobs on one shared engine.

    Parameters
    ----------
    engine:
        The long-lived :class:`~repro.runner.SweepEngine` every job runs
        on.  The service owns it: :meth:`drain` closes it.
    workers:
        Dispatcher threads.  More than one lets independent jobs overlap
        (the engine's in-flight table keeps shared points exactly-once);
        ``1`` serialises job execution entirely.
    max_finished:
        Terminal (done/failed) jobs retained for polling.  A long-lived
        service accepts unboundedly many requests; beyond this many
        finished jobs the oldest are evicted — their ``GET /jobs/<id>``
        turns 404, but their *results* stay served by the record cache.
        Queued and running jobs are never evicted.
    audit:
        Optional :class:`~repro.service.audit.AuditLog`; every job
        mutation (submit, dedup hit, state transition, drain) is
        appended to it.  ``None`` disables auditing.
    db:
        Optional :class:`~repro.service.db.ServiceDB` journal.  With a
        journal, every submit and state transition is persisted, and
        construction *recovers* the previous incarnation before any
        dispatcher thread starts: terminal jobs are restored verbatim
        (payloads replayed from the journal, records still served by
        the cache), queued jobs re-enqueued, and jobs that were running
        when the process died re-enqueued with a ``job.requeued`` audit
        event.  The service owns the journal: :meth:`drain` closes it.
    lease_ttl:
        Heartbeat TTL for the worker fleet (see
        :class:`~repro.service.fleet.FleetCoordinator`).  The service
        always constructs a coordinator and installs it as the engine's
        ``dispatcher`` hook — with no workers registered it is a no-op
        and every sweep runs locally, exactly as before.
    """

    def __init__(
        self,
        engine: SweepEngine,
        *,
        workers: int = 2,
        max_finished: int = 256,
        audit: AuditLog | None = None,
        db: ServiceDB | None = None,
        lease_ttl: float = 10.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_finished < 1:
            raise ValueError("max_finished must be >= 1")
        self.engine = engine
        self.workers = workers
        self.max_finished = max_finished
        self.audit = audit
        self.db = db
        self.fleet = FleetCoordinator(
            cache=engine.cache, audit=audit, db=db, lease_ttl=lease_ttl
        )
        engine.dispatcher = self.fleet
        self._jobs: dict[str, Job] = {}
        self._active: dict[str, Job] = {}
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._lock = threading.Lock()
        self._counter = itertools.count(1)
        self._draining = False
        self._drained = False
        # Recover the journal BEFORE the dispatcher threads exist: the
        # replayed queue must be fully rebuilt (in original submission
        # order) by the time anything can pop from it.
        if db is not None:
            self._recover(db)
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"job-dispatcher-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    def _recover(self, db: ServiceDB) -> None:
        """Replay the journal into live state (constructor only, no locks)."""
        requeued = restored = dropped = 0
        for row in db.load_jobs():
            try:
                request = JobRequest.from_payload(row["request"])
            except RequestError as error:
                # The experiment registry (or the request schema) moved
                # under the journal; the row cannot be re-validated, let
                # alone re-run.  Drop it loudly rather than crash boot.
                db.delete_job(row["id"])
                dropped += 1
                self._audit("job.dropped", job=row["id"], reason=str(error))
                continue
            job = Job.restore(row, request)
            self._jobs[job.id] = job
            if job.done:
                restored += 1
                continue
            if row["status"] == RUNNING:
                # Orphaned by the crash: its lease owner (the dead
                # process) never finished.  Requeue — at-least-once
                # execution; the result cache absorbs the replay.
                self._audit("job.requeued", job=job.id, reason="orphaned running")
            self._active.setdefault(request.key, job)
            db.save_job(job.journal_view())
            self._queue.put(job)
            requeued += 1
        self._counter = itertools.count(db.max_job_seq() + 1)
        if requeued or restored or dropped:
            self._audit(
                "service.recovered",
                requeued=requeued,
                restored=restored,
                dropped=dropped,
            )

    # ------------------------------------------------------------------ #
    # Submission and lookup
    # ------------------------------------------------------------------ #
    def submit(
        self, request: JobRequest, *, actor: str | None = None
    ) -> tuple[Job, bool]:
        """Enqueue a request, deduplicating against in-flight jobs.

        Parameters
        ----------
        request:
            The validated request to execute.
        actor:
            Client identity for the audit trail (token digest or peer
            address); ``None`` for in-process callers.

        Returns
        -------
        tuple of (Job, bool)
            The job serving this request and whether it was deduplicated
            (``True`` means an identical queued/running job already
            existed and was returned instead of a new one).

        Raises
        ------
        ServiceUnavailable
            When the service is draining.
        """
        with self._lock:
            if self._draining:
                job, deduplicated = None, False
            else:
                existing = self._active.get(request.key)
                if existing is not None:
                    job, deduplicated = existing, True
                else:
                    seq = next(self._counter)
                    job = Job(f"job-{seq:06d}", request, seq=seq)
                    deduplicated = False
                    self._jobs[job.id] = job
                    self._active[request.key] = job
                    # Enqueue under the lock: after a release, drain()
                    # could slip in, push its sentinels and stop the
                    # dispatchers — the job would be accepted but never
                    # run.  SimpleQueue.put never blocks, so holding the
                    # lock here is safe.
                    self._queue.put(job)
        # Journal and audit outside the lock: disk I/O (the journal
        # fsyncs per commit) must never serialise submits.  A crash in
        # the gap between accept and journal loses only this job row —
        # the client's retry/wait path resubmits the same request.
        if job is not None and not deduplicated:
            self._journal(job)
        if job is None:
            self._audit(
                "job.refused",
                reason="draining",
                experiment=request.experiment,
                actor=actor,
            )
            raise ServiceUnavailable("service is draining; no new jobs accepted")
        if deduplicated:
            self._audit(
                "job.deduplicated", job=job.id, key=request.key, actor=actor
            )
        else:
            self._audit(
                "job.submitted",
                job=job.id,
                key=request.key,
                experiment=request.experiment,
                scale=request.scale,
                actor=actor,
            )
        return job, deduplicated

    def _audit(self, event: str, **fields) -> None:
        """Append an event to the audit log, when one is configured."""
        if self.audit is not None:
            self.audit.record(event, **fields)

    def _journal(self, job: Job) -> None:
        """Persist the job's current state, when a journal is configured."""
        if self.db is not None:
            self.db.save_job(job.journal_view())

    def get(self, job_id: str) -> Job | None:
        """The job with ``job_id``, or ``None`` when unknown."""
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """Every job this service has accepted, in submission order."""
        with self._lock:
            return list(self._jobs.values())

    def counts(self) -> dict[str, int]:
        """Job counts by status (the ``/healthz`` summary)."""
        summary = {QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0}
        for job in self.jobs():
            summary[job.status] = summary.get(job.status, 0) + 1
        return summary

    def job_index(
        self,
        *,
        status: str | None = None,
        offset: int = 0,
        limit: int = 100,
    ) -> tuple[list[dict[str, Any]], int]:
        """A filtered, paginated page of job summaries (``GET /jobs``).

        Parameters
        ----------
        status:
            Restrict to one lifecycle state, or ``None`` for all jobs.
        offset, limit:
            Slice of the filtered listing, in submission order.

        Returns
        -------
        tuple of (summaries, total)
            The page of :meth:`Job.summary` views and the *total* count
            of jobs matching the filter (so clients can page without a
            separate count request).

        Raises
        ------
        RequestError
            On an unknown status or a negative offset/limit.
        """
        if status is not None and status not in (QUEUED, RUNNING, DONE, FAILED):
            raise RequestError(
                f"unknown status {status!r}; expected one of "
                f"{[QUEUED, RUNNING, DONE, FAILED]}"
            )
        if offset < 0 or limit < 0:
            raise RequestError("offset and limit must be >= 0")
        jobs = self.jobs()
        if status is not None:
            jobs = [job for job in jobs if job.status == status]
        page = jobs[offset : offset + limit]
        return [job.summary() for job in page], len(jobs)

    def record(self, key: str) -> tuple[dict | None, list[str]]:
        """A validated v3 sweep record from the engine's result cache.

        Returns
        -------
        tuple of (record or None, problems)
            ``(None, [])`` on a miss (no cache configured, malformed or
            unknown key); ``(record, [])`` for a valid record; ``(None,
            problems)`` when the cached record exists but fails
            :func:`~repro.runner.engine.validate_record` — the service
            refuses to serve records that do not validate.  Keys that
            are not plain SHA-256 hex digests are treated as misses
            without ever touching the filesystem (path-traversal gate).
        """
        cache = self.engine.cache
        if cache is None or not _RECORD_KEY.fullmatch(key):
            return None, []
        record = cache.get(key)
        if record is None:
            return None, []
        problems = validate_record(record)
        if problems:
            return None, problems
        return record, []

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            self._execute(job)

    def _execute(self, job: Job) -> None:
        from ..report.emitters import build_payload

        job.mark_running()
        self._journal(job)
        self._audit("job.started", job=job.id, experiment=job.request.experiment)
        try:
            spec = get_experiment(job.request.experiment)
            with progress_scope(job.on_progress):
                result = spec.run(
                    job.request.scale,
                    engine=self.engine,
                    **dict(job.request.overrides),
                )
            job.mark_done(build_payload(spec, result))
            self._journal(job)
            progress = job.summary()["progress"]
            self._audit(
                "job.done",
                job=job.id,
                points=progress["points"],
                executed=progress["executed"],
                cache_hits=progress["cache_hits"],
                seconds=round((job.finished or 0) - (job.started or 0), 3),
            )
        except Exception as error:  # noqa: BLE001 - job isolation boundary
            job.mark_failed(f"{type(error).__name__}: {error}")
            self._journal(job)
            self._audit(
                "job.failed", job=job.id, error=f"{type(error).__name__}: {error}"
            )
        finally:
            with self._lock:
                if self._active.get(job.request.key) is job:
                    del self._active[job.request.key]
                self._evict_finished()

    def _evict_finished(self) -> None:
        """Drop the oldest terminal jobs beyond ``max_finished`` (lock held)."""
        finished = [job_id for job_id, job in self._jobs.items() if job.done]
        for job_id in finished[: max(0, len(finished) - self.max_finished)]:
            del self._jobs[job_id]
            if self.db is not None:
                self.db.delete_job(job_id)

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #
    def drain(self) -> None:
        """Graceful shutdown: refuse new jobs, finish accepted ones.

        Already-queued and running jobs complete normally (their clients
        can still poll them afterwards); then the dispatcher threads
        exit and the engine — including its warm worker pool — closes.
        Idempotent.
        """
        with self._lock:
            if self._drained:
                return
            already_draining = self._draining
            self._draining = True
        if not already_draining:
            self._audit("service.draining", jobs=self.counts())
        # Stop offering units to the fleet first: jobs finishing during
        # the drain fall back to local simulation instead of waiting on
        # leases that may never complete.
        self.fleet.drain()
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join()
        self.engine.close()
        with self._lock:
            if self._drained:
                return
            self._drained = True
        self._audit("service.drained", jobs=self.counts())
        if self.db is not None:
            self.db.close()

    @property
    def draining(self) -> bool:
        """Whether :meth:`drain` has been initiated."""
        with self._lock:
            return self._draining
