"""Thin stdlib HTTP client for the sweep service.

Used by ``python -m repro.runner <exp> --remote URL`` and
``python -m repro.report --remote URL``; also the convenient way to
drive a service from tests and notebooks::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8731")
    job = client.run("fig7", scale="tiny")     # submit + wait
    records = client.records_for(job)          # raw v3 records
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Mapping

from .jobs import DONE, FAILED


class ServiceError(RuntimeError):
    """An HTTP-level or job-level failure reported by the service.

    Attributes
    ----------
    status:
        The HTTP status code, or ``None`` for transport-level failures
        (connection refused, timeout).
    details:
        The decoded JSON error body, when the service sent one.
    """

    def __init__(
        self,
        message: str,
        *,
        status: int | None = None,
        details: Mapping[str, Any] | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.details = dict(details or {})


class ServiceClient:
    """A minimal JSON client bound to one service base URL.

    Parameters
    ----------
    base_url:
        ``http://host:port`` of a running ``python -m repro.service serve``.
    timeout:
        Per-request socket timeout in seconds.  Long-polling job waits
        add their wait window on top.
    """

    def __init__(self, base_url: str, *, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    def _request(
        self, method: str, path: str, payload: Mapping[str, Any] | None = None,
        *, timeout: float | None = None,
    ) -> dict:
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=timeout or self.timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            body = error.read().decode("utf-8", errors="replace")
            try:
                details = json.loads(body)
            except ValueError:
                details = {"error": body}
            raise ServiceError(
                f"{method} {path} failed with HTTP {error.code}: "
                f"{details.get('error', body)}",
                status=error.code,
                details=details,
            ) from None
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {error.reason}"
            ) from None

    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def experiments(self) -> dict:
        """``GET /experiments``: registry export + scale tier names."""
        return self._request("GET", "/experiments")

    def jobs(self) -> list[dict]:
        """``GET /jobs``: every job the service has accepted."""
        return self._request("GET", "/jobs")["jobs"]

    def submit(
        self,
        experiment: str,
        *,
        scale: str = "small",
        overrides: Mapping[str, Any] | None = None,
    ) -> dict:
        """``POST /jobs``: submit one request, returning the job view.

        The returned dict carries ``deduplicated=True`` when the service
        matched an identical in-flight job instead of queueing a new one.
        """
        return self._request(
            "POST",
            "/jobs",
            {
                "experiment": experiment,
                "scale": scale,
                "overrides": dict(overrides or {}),
            },
        )

    def job(self, job_id: str, *, wait: float | None = None) -> dict:
        """``GET /jobs/<id>``, optionally long-polling for ``wait`` seconds."""
        path = f"/jobs/{job_id}"
        if wait is not None:
            path += f"?wait={wait:g}"
            return self._request("GET", path, timeout=self.timeout + wait)
        return self._request("GET", path)

    def wait_for(self, job_id: str, *, timeout: float = 600.0, poll: float = 5.0) -> dict:
        """Block until a job is terminal; returns its final view.

        Raises
        ------
        ServiceError
            When the job finished as ``failed`` (the job's error message
            is surfaced) or ``timeout`` elapsed first.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError(f"timed out after {timeout:g}s waiting for {job_id}")
            view = self.job(job_id, wait=min(poll, remaining))
            if view["status"] == FAILED:
                raise ServiceError(
                    f"job {job_id} failed: {view.get('error', 'unknown error')}",
                    details=view,
                )
            if view["status"] == DONE:
                return view

    def run(
        self,
        experiment: str,
        *,
        scale: str = "small",
        overrides: Mapping[str, Any] | None = None,
        timeout: float = 600.0,
    ) -> dict:
        """Submit a request and wait for its terminal job view."""
        job = self.submit(experiment, scale=scale, overrides=overrides)
        if job["status"] == DONE:
            return job
        return self.wait_for(job["id"], timeout=timeout)

    def record(self, key: str) -> dict:
        """``GET /records/<key>``: one validated raw v3 sweep record."""
        return self._request("GET", f"/records/{key}")["record"]

    def records(self, keys: list[str]) -> dict[str, dict]:
        """``POST /records``: fetch many records in one round trip."""
        if not keys:
            return {}
        return self._request("POST", "/records", {"keys": list(keys)})["records"]

    def records_for(self, job: Mapping[str, Any]) -> dict[str, dict]:
        """Fetch every sweep record a finished job touched, keyed by hash."""
        return self.records(list(job.get("record_keys", ())))

    def shutdown(self) -> dict:
        """``POST /shutdown``: ask the service to drain and stop."""
        return self._request("POST", "/shutdown", {})
