"""Thin stdlib HTTP client for the sweep service, with retry/backoff.

Used by ``python -m repro.runner <exp> --remote URL`` and
``python -m repro.report --remote URL``; also the convenient way to
drive a service from tests and notebooks::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8731")
    job = client.run("fig7", scale="tiny")     # submit + wait
    records = client.records_for(job)          # raw v3 records

Transient-failure behaviour (the production-hardening contract):

* Transport failures (connection refused/reset, timeouts, torn reads)
  and transient 5xx responses are retried with exponential backoff and
  jitter (:class:`RetryPolicy`) — always for idempotent ``GET``s, and
  for ``POST /jobs`` / ``POST /records`` too: job submission is safe to
  replay because the service deduplicates identical in-flight requests
  onto one job, and the batch record fetch is a read.
* A 429 is always retried after honouring the server's ``Retry-After``
  header (a rate-limited request was never executed).
* A 503 (service draining) and plain 4xx are never retried — they are
  deterministic answers, not faults.
* :meth:`wait_for` survives a server restart: a 404 for a job id it was
  polling surfaces as :class:`JobNotFound`, and when the original
  request is known the wait *resubmits* it — landing on the restarted
  server as a fresh job (deduplicated against any identical in-flight
  one) instead of long-polling a now-unknown id into a 404 loop.

Authentication: pass ``token=`` or set ``$REPRO_SERVICE_TOKEN``; the
token is sent as ``Authorization: Bearer <token>`` on every request.
"""

from __future__ import annotations

import http.client
import json
import os
import random
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from .jobs import DONE, FAILED
from .schemas import PROTOCOL_VERSION

#: HTTP statuses retried on retryable requests (besides 429, which is
#: always retried): transient server-side failures.  503 is excluded —
#: this service only sends it while draining, which retries cannot fix.
RETRYABLE_STATUSES = frozenset({500, 502, 504})

#: Transport-level exceptions that mark an attempt as retryable.
TRANSIENT_ERRORS = (
    urllib.error.URLError,  # wraps most socket-level OSErrors
    http.client.HTTPException,  # torn reads: IncompleteRead, BadStatusLine
    ConnectionError,
    TimeoutError,
    OSError,
)


class ServiceError(RuntimeError):
    """An HTTP-level or job-level failure reported by the service.

    Attributes
    ----------
    status:
        The HTTP status code, or ``None`` for transport-level failures
        (connection refused, timeout).
    details:
        The decoded JSON error body, when the service sent one.
    """

    def __init__(
        self,
        message: str,
        *,
        status: int | None = None,
        details: Mapping[str, Any] | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.details = dict(details or {})


class JobNotFound(ServiceError):
    """``GET /jobs/<id>`` returned 404: the server no longer knows the job.

    Raised instead of a generic :class:`ServiceError` so callers can
    tell "this job id is gone" (server restarted, or the finished-job
    retention cap evicted it) apart from real protocol errors — and
    resubmit the request rather than keep polling a dead id.

    Attributes
    ----------
    job_id:
        The id the server did not recognise.
    """

    def __init__(
        self,
        job_id: str,
        *,
        details: Mapping[str, Any] | None = None,
    ) -> None:
        super().__init__(
            f"job {job_id!r} is unknown to the service (it may have "
            "restarted, or the job was evicted by the retention cap); "
            "resubmit the request to get a fresh job",
            status=404,
            details=details,
        )
        self.job_id = job_id


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for transient request failures.

    Parameters
    ----------
    attempts:
        Total tries per request (first attempt included).  ``1``
        disables retrying entirely.
    base_delay:
        Sleep before the first retry, in seconds.
    multiplier:
        Backoff growth factor per further retry.
    max_delay:
        Upper bound on any single sleep.
    jitter:
        Uniform jitter fraction: each sleep is scaled by a random
        factor in ``[1 - jitter, 1 + jitter]`` so synchronised clients
        do not stampede a recovering server.
    """

    attempts: int = 6
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 8.0
    jitter: float = 0.25

    def delay(self, failures: int) -> float:
        """The sleep before the retry following ``failures`` failures."""
        raw = min(
            self.base_delay * self.multiplier ** max(failures - 1, 0),
            self.max_delay,
        )
        if not self.jitter:
            return raw
        return raw * (1.0 + random.uniform(-self.jitter, self.jitter))


#: A policy that never retries (``attempts=1``): the pre-hardening
#: behaviour, for callers that want one-shot semantics.
NO_RETRY = RetryPolicy(attempts=1)


class ServiceClient:
    """A minimal JSON client bound to one service base URL.

    Parameters
    ----------
    base_url:
        ``http://host:port`` of a running ``python -m repro.service serve``.
    timeout:
        Per-request socket timeout in seconds.  Long-polling job waits
        add their wait window on top.
    token:
        Static auth token, sent as ``Authorization: Bearer <token>``.
        Defaults to ``$REPRO_SERVICE_TOKEN`` when set.
    retry:
        The :class:`RetryPolicy` for transient failures (pass
        :data:`NO_RETRY` to restore one-shot behaviour).
    sleep:
        Sleep function used between retries; injectable for tests.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 60.0,
        token: str | None = None,
        retry: RetryPolicy | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.token = token if token is not None else os.environ.get(
            "REPRO_SERVICE_TOKEN"
        )
        self.retry = retry if retry is not None else RetryPolicy()
        self._sleep = sleep

    # ------------------------------------------------------------------ #
    def _open(self, request: urllib.request.Request, timeout: float):
        """Perform one HTTP exchange (seam for fault-injection tests)."""
        return urllib.request.urlopen(request, timeout=timeout)

    def _attempt(
        self, method: str, path: str, data: bytes | None, timeout: float
    ) -> dict:
        headers = {}
        if data is not None:
            headers["Content-Type"] = "application/json"
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, method=method, headers=headers
        )
        with self._open(request, timeout) as response:
            return json.loads(response.read().decode("utf-8"))

    def _request(
        self, method: str, path: str, payload: Mapping[str, Any] | None = None,
        *, timeout: float | None = None, retryable: bool | None = None,
    ) -> dict:
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        # `timeout or self.timeout` would silently replace an explicit
        # falsy timeout (0 / 0.0) with the default; only None means
        # "use the client default".
        effective_timeout = self.timeout if timeout is None else timeout
        if retryable is None:
            retryable = method == "GET"
        failures = 0
        while True:
            try:
                return self._attempt(method, path, data, effective_timeout)
            except urllib.error.HTTPError as error:
                retry_after = _retry_after_seconds(error)
                body = error.read().decode("utf-8", errors="replace")
                try:
                    details = json.loads(body)
                except ValueError:
                    details = {"error": body}
                # 429: the request was refused before executing, so it
                # is always safe to retry — after the server-advised
                # delay.  Transient 5xx retry only on retryable requests.
                should_retry = error.code == 429 or (
                    retryable and error.code in RETRYABLE_STATUSES
                )
                failures += 1
                if not should_retry or failures >= self.retry.attempts:
                    raise ServiceError(
                        f"{method} {path} failed with HTTP {error.code}: "
                        f"{details.get('error', body)}",
                        status=error.code,
                        details=details,
                    ) from None
                delay = self.retry.delay(failures)
                if error.code == 429 and retry_after is not None:
                    delay = max(delay, retry_after)
                self._sleep(delay)
            except TRANSIENT_ERRORS as error:
                reason = getattr(error, "reason", None) or error
                failures += 1
                if not retryable or failures >= self.retry.attempts:
                    raise ServiceError(
                        f"cannot reach service at {self.base_url}: {reason}"
                    ) from None
                self._sleep(self.retry.delay(failures))

    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def experiments(self) -> dict:
        """``GET /experiments``: registry export + scale tier names."""
        return self._request("GET", "/experiments")

    def jobs(
        self,
        *,
        status: str | None = None,
        offset: int | None = None,
        limit: int | None = None,
    ) -> list[dict]:
        """``GET /jobs``: a page of job summaries, newest capped by ``limit``.

        Parameters mirror the endpoint: filter by lifecycle ``status``
        and page with ``offset``/``limit`` (server default: the first
        100 jobs in submission order).  Use :meth:`job_page` when the
        filtered ``total`` is needed for pagination.
        """
        return self.job_page(status=status, offset=offset, limit=limit)["jobs"]

    def job_page(
        self,
        *,
        status: str | None = None,
        offset: int | None = None,
        limit: int | None = None,
    ) -> dict:
        """``GET /jobs`` with the full pagination envelope.

        Returns the raw response: ``jobs`` (the page), ``total`` (the
        filtered count), ``offset`` and ``limit``.
        """
        params = []
        if status is not None:
            params.append(f"status={status}")
        if offset is not None:
            params.append(f"offset={offset}")
        if limit is not None:
            params.append(f"limit={limit}")
        query = "?" + "&".join(params) if params else ""
        return self._request("GET", f"/jobs{query}")

    def submit(
        self,
        experiment: str,
        *,
        scale: str = "small",
        overrides: Mapping[str, Any] | None = None,
    ) -> dict:
        """``POST /jobs``: submit one request, returning the job view.

        The returned dict carries ``deduplicated=True`` when the service
        matched an identical in-flight job instead of queueing a new one.
        That dedup is also what makes this call safe to retry: a
        submission whose response was lost to a dropped connection lands
        on the same job when replayed, never on a second simulation.
        """
        return self._request(
            "POST",
            "/jobs",
            {
                "version": PROTOCOL_VERSION,
                "experiment": experiment,
                "scale": scale,
                "overrides": dict(overrides or {}),
            },
            retryable=True,
        )

    def job(self, job_id: str, *, wait: float | None = None) -> dict:
        """``GET /jobs/<id>``, optionally long-polling for ``wait`` seconds.

        Raises
        ------
        JobNotFound
            When the service does not know ``job_id`` (restart or
            retention eviction) — distinct from other errors so callers
            can resubmit instead of failing.
        """
        path = f"/jobs/{job_id}"
        try:
            if wait is not None:
                path += f"?wait={wait:g}"
                return self._request("GET", path, timeout=self.timeout + wait)
            return self._request("GET", path)
        except ServiceError as error:
            if error.status == 404:
                raise JobNotFound(job_id, details=error.details) from None
            raise

    def wait_for(
        self,
        job_id: str,
        *,
        timeout: float = 600.0,
        poll: float = 5.0,
        request: Mapping[str, Any] | None = None,
    ) -> dict:
        """Block until a job is terminal; returns its final view.

        Parameters
        ----------
        job_id:
            The job to wait on.
        timeout:
            Overall deadline in seconds.
        poll:
            Long-poll window per ``GET /jobs/<id>`` request.
        request:
            The originating request (``experiment`` / ``scale`` /
            ``overrides``), when known.  With it, a :class:`JobNotFound`
            mid-wait — the server restarted, or the retention cap
            evicted the job — is survived by *resubmitting* the request
            and waiting on the fresh job id, instead of surfacing a 404
            for work that can still complete.

        Raises
        ------
        ServiceError
            When the job finished as ``failed`` (the job's error message
            is surfaced) or ``timeout`` elapsed first.
        JobNotFound
            When the job id is unknown and no ``request`` was given to
            resubmit.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError(f"timed out after {timeout:g}s waiting for {job_id}")
            try:
                view = self.job(job_id, wait=min(poll, remaining))
            except JobNotFound:
                if request is None:
                    raise
                job = self.submit(
                    request["experiment"],
                    scale=request.get("scale", "small"),
                    overrides=request.get("overrides"),
                )
                job_id = job["id"]
                if job["status"] in (DONE, FAILED):
                    view = job
                else:
                    continue
            if view["status"] == FAILED:
                raise ServiceError(
                    f"job {job_id} failed: {view.get('error', 'unknown error')}",
                    details=view,
                )
            if view["status"] == DONE:
                return view

    def run(
        self,
        experiment: str,
        *,
        scale: str = "small",
        overrides: Mapping[str, Any] | None = None,
        timeout: float = 600.0,
    ) -> dict:
        """Submit a request and wait for its terminal job view.

        The request is remembered across the wait, so a server restart
        mid-job resubmits instead of failing (see :meth:`wait_for`).
        """
        request = {
            "experiment": experiment,
            "scale": scale,
            "overrides": dict(overrides or {}),
        }
        job = self.submit(experiment, scale=scale, overrides=overrides)
        if job["status"] == DONE:
            return job
        return self.wait_for(job["id"], timeout=timeout, request=request)

    def record(self, key: str) -> dict:
        """``GET /records/<key>``: one validated raw v3 sweep record."""
        return self._request("GET", f"/records/{key}")["record"]

    def records(self, keys: list[str]) -> dict[str, dict]:
        """``POST /records``: fetch many records in one round trip."""
        if not keys:
            return {}
        return self._request(
            "POST",
            "/records",
            {"version": PROTOCOL_VERSION, "keys": list(keys)},
            retryable=True,
        )["records"]

    def records_for(self, job: Mapping[str, Any]) -> dict[str, dict]:
        """Fetch every sweep record a finished job touched, keyed by hash."""
        return self.records(list(job.get("record_keys", ())))

    # ------------------------------------------------------------------ #
    # Worker fleet protocol (used by `python -m repro.service worker`)
    # ------------------------------------------------------------------ #
    def register_worker(self) -> dict:
        """``POST /workers``: register as a fleet worker.

        Returns the registration contract: ``worker_id``, the lease
        ``ttl`` and the advised ``heartbeat_interval``.  Safe to retry:
        a duplicate registration just creates an extra worker id that
        expires unheartbeaten.
        """
        return self._request(
            "POST", "/workers", {"version": PROTOCOL_VERSION}, retryable=True
        )

    def worker_heartbeat(self, worker_id: str) -> dict:
        """``POST /workers/<id>/heartbeat``: renew registration + leases.

        Raises
        ------
        ServiceError
            With ``status == 404`` (and ``unknown_worker`` in the
            details) when the server no longer knows the id — the
            worker should re-register.
        """
        return self._request(
            "POST",
            f"/workers/{worker_id}/heartbeat",
            {"version": PROTOCOL_VERSION},
            retryable=True,
        )

    def lease(
        self, worker_id: str, *, failed: Mapping[str, Any] | None = None
    ) -> dict | None:
        """``POST /lease``: the next work unit, or ``None`` when idle.

        Parameters
        ----------
        worker_id:
            This worker's registered id.
        failed:
            Optional failure report for the previous unit
            (``{"unit": <id>, "error": <text>}``).

        Safe to retry: a grant whose response was lost simply expires
        at TTL and requeues.
        """
        body: dict[str, Any] = {"version": PROTOCOL_VERSION, "worker": worker_id}
        if failed is not None:
            body["failed"] = dict(failed)
        return self._request("POST", "/lease", body, retryable=True)["unit"]

    def ingest(
        self, worker_id: str, unit_id: str, records: Mapping[str, dict]
    ) -> dict:
        """``POST /records`` (ingest mode): deliver a unit's records.

        Idempotent by design (duplicate keys are counted and dropped),
        hence safe to retry.
        """
        return self._request(
            "POST",
            "/records",
            {
                "version": PROTOCOL_VERSION,
                "worker": worker_id,
                "unit": unit_id,
                "records": dict(records),
            },
            retryable=True,
        )

    def shutdown(self) -> dict:
        """``POST /shutdown``: ask the service to drain and stop.

        Not retried on transport failures: a dropped response most
        likely means the drain already started.
        """
        return self._request(
            "POST", "/shutdown", {"version": PROTOCOL_VERSION}, retryable=False
        )


def _retry_after_seconds(error: urllib.error.HTTPError) -> float | None:
    """The ``Retry-After`` header of a response, in seconds, if sane."""
    raw = error.headers.get("Retry-After") if error.headers else None
    if raw is None:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if 0 <= value < 3600 else None
