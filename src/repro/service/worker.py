"""The fleet worker: lease, simulate, ingest, repeat.

``python -m repro.service worker --server URL`` runs one
:class:`FleetWorker` against a served repo.  The loop is deliberately
stateless across iterations — every piece of durable state lives on the
server (the sqlite journal) or in the content-addressed caches — which
is what makes the worker crash-*recovering* rather than crash-safe:

* **Registration is disposable.**  A worker id is a lease on the
  server's attention, not an identity.  Any 404 with ``unknown_worker``
  (server restarted, heartbeats missed past the TTL) simply triggers
  re-registration.
* **Leased work is re-verified.**  The worker rebuilds each unit's
  :class:`~repro.runner.engine.SweepPoint` from the wire form and
  checks that the points hash to the exact cache keys the lease
  promised — any server/worker version skew surfaces as an explicit
  failure report instead of a silently divergent record.
* **Results are idempotent.**  Records are deterministic functions of
  their points, and the ingest endpoint discards duplicates, so a
  worker that loses a race (its lease expired and another worker
  finished first) wastes only its own time.
* **Dying is fine.**  ``kill -9`` mid-unit leaves a lease that expires
  at TTL; the server requeues the unit for the next worker — or, when
  the fleet is empty, withdraws it and simulates locally.

The worker shares the :class:`~repro.runner.store.ArtifactStore` (when
one is configured) but deliberately carries **no result cache**: the
server owns result durability, and a worker-local cache would only
hide version-skew bugs behind stale records.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..runner.engine import SweepEngine, SweepPoint
from ..runner.store import ArtifactStore
from .client import RetryPolicy, ServiceClient, ServiceError

#: Default retry for worker HTTP calls: short and shallow — the outer
#: loop already retries forever, so deep per-request backoff would only
#: delay noticing a restarted server.
WORKER_RETRY = RetryPolicy(attempts=3, base_delay=0.2, max_delay=2.0)


class FleetWorker:
    """One lease-driven simulation worker bound to a service URL.

    Parameters
    ----------
    server:
        Base URL of the service (``http://host:port``).
    store:
        Optional shared :class:`~repro.runner.store.ArtifactStore`; with
        it, workloads/calibrations/decompositions computed by any node
        are loaded instead of recomputed.
    jobs:
        Local simulation parallelism (forwarded to the worker's own
        :class:`~repro.runner.engine.SweepEngine`).
    token:
        Bearer token for an authenticated service.
    poll:
        Idle sleep between lease attempts when the server has no work.
    drag:
        Artificial delay (seconds) between winning a lease and starting
        the simulation.  A fault-injection aid: it gives tests and the
        CI fleet-smoke job a deterministic window in which to ``kill
        -9`` this worker *mid-unit*.  ``0`` (the default) disables it.
    on_register:
        Callback invoked with the worker id after every (re-)
        registration; the CLI uses it to print a readiness line.
    retry:
        Per-request :class:`RetryPolicy` (defaults to
        :data:`WORKER_RETRY`).
    """

    def __init__(
        self,
        server: str,
        *,
        store: ArtifactStore | None = None,
        jobs: int = 1,
        token: str | None = None,
        poll: float = 1.0,
        drag: float = 0.0,
        on_register: Callable[[str], None] | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.client = ServiceClient(
            server, token=token, retry=retry if retry is not None else WORKER_RETRY
        )
        self.engine = SweepEngine(jobs=jobs, store=store)
        self.poll = poll
        self.drag = drag
        self.on_register = on_register
        self._worker_id: str | None = None
        self._id_lock = threading.Lock()
        self._pending_failure: dict | None = None

    # ------------------------------------------------------------------ #
    def run(
        self,
        stop: threading.Event | None = None,
        *,
        max_units: int | None = None,
    ) -> int:
        """Serve leases until ``stop`` is set (or ``max_units`` complete).

        Returns the number of units completed and ingested.  Never
        raises on server trouble: connection failures and restarts are
        absorbed by re-registration and the idle poll.
        """
        stop = stop if stop is not None else threading.Event()
        completed = 0
        try:
            while not stop.is_set():
                if self._worker_id is None and not self._register(stop):
                    continue
                try:
                    failed, self._pending_failure = self._pending_failure, None
                    grant = self.client.lease(self._worker_id, failed=failed)
                except ServiceError as error:
                    self._pending_failure = failed  # re-deliver next time
                    if error.status == 404:
                        self._set_worker_id(None)  # re-register
                    else:
                        stop.wait(self.poll)  # server unreachable / draining
                    continue
                if grant is None:
                    stop.wait(self.poll)
                    continue
                completed += self._execute(grant, stop)
                if max_units is not None and completed >= max_units:
                    break
        finally:
            self._set_worker_id(None)
            self.engine.close()
        return completed

    # ------------------------------------------------------------------ #
    def _set_worker_id(self, worker_id: str | None) -> None:
        with self._id_lock:
            self._worker_id = worker_id

    def _register(self, stop: threading.Event) -> bool:
        """(Re-)register and start a fresh heartbeat thread."""
        try:
            contract = self.client.register_worker()
        except ServiceError:
            stop.wait(self.poll)
            return False
        worker_id = contract["worker_id"]
        interval = float(
            contract.get("heartbeat_interval") or contract.get("ttl", 9.0) / 3.0
        )
        self._set_worker_id(worker_id)
        threading.Thread(
            target=self._heartbeat_loop,
            args=(worker_id, interval, stop),
            name=f"heartbeat-{worker_id}",
            daemon=True,
        ).start()
        if self.on_register is not None:
            self.on_register(worker_id)
        return True

    def _heartbeat_loop(
        self, worker_id: str, interval: float, stop: threading.Event
    ) -> None:
        """Renew this registration until it is superseded or stopped.

        Heartbeats are what keep leases alive across simulations longer
        than the TTL, so this runs on its own thread.  A 404 means the
        server forgot us (restart); the thread exits and the main loop
        re-registers on its next lease attempt.
        """
        while not stop.wait(interval):
            with self._id_lock:
                if self._worker_id != worker_id:
                    return
            try:
                self.client.worker_heartbeat(worker_id)
            except ServiceError as error:
                if error.status == 404:
                    return
                # Unreachable server: keep trying — the main loop owns
                # the decision to re-register.

    def _execute(self, grant: dict, stop: threading.Event) -> int:
        """Simulate one leased unit and ingest its records.

        Returns 1 on a completed ingest, 0 otherwise (failures are
        reported back on the next lease call; late or unknown-unit
        deliveries are dropped — the server has already moved on).
        """
        unit_id = grant["id"]
        keys = grant["keys"]
        try:
            points = [SweepPoint.from_dict(data) for data in grant["points"]]
            actual = [point.cache_key() for point in points]
            if actual != keys:
                raise ValueError(
                    "leased cache keys do not round-trip; server/worker "
                    "version skew"
                )
        except Exception as error:  # noqa: BLE001 - report, don't die
            self._pending_failure = {
                "unit": unit_id,
                "error": f"{type(error).__name__}: {error}",
            }
            return 0
        if self.drag > 0:
            # Fault-injection window: a deliberately dragged worker can
            # be killed mid-unit deterministically by tests/CI.
            deadline = time.monotonic() + self.drag
            while time.monotonic() < deadline and not stop.is_set():
                time.sleep(min(0.05, self.drag))
        try:
            records = self.engine.run(points)
        except Exception as error:  # noqa: BLE001 - unit isolation boundary
            self._pending_failure = {
                "unit": unit_id,
                "error": f"{type(error).__name__}: {error}",
            }
            return 0
        try:
            self.client.ingest(self._worker_id, unit_id, dict(zip(keys, records)))
        except ServiceError as error:
            if error.status == 404:
                self._set_worker_id(None)
            # 400 "unknown unit": the lease expired and the unit
            # completed elsewhere or was withdrawn — the work is simply
            # lost, which at-least-once semantics explicitly allows.
            return 0
        return 1
