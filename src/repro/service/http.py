"""HTTP+JSON front-end of the sweep service.

A thin, stdlib-only layer over :class:`~repro.service.jobs.JobService`:
``ThreadingHTTPServer`` gives one thread per connection, the handler
parses/validates JSON and the job layer does everything else.  Every
response is materialised as one ``bytes`` body and sent with an exact
``Content-Length`` in a single write, so a client can never observe a
torn (partially written) JSON document — the concurrency suite asserts
this under load.

Endpoints
---------
``GET /healthz``
    Liveness + job counts + engine configuration.
``GET /experiments``
    The experiment registry (:func:`repro.experiments.registry.registry_json`)
    and the named scale tiers.
``POST /jobs``
    Submit ``{"experiment": ..., "scale": ..., "overrides": {...}}``;
    ``201`` with the job view, or ``200`` when deduplicated onto an
    in-flight job.  Unknown fields, experiments or scales are ``400``.
``GET /jobs[?status=&offset=&limit=]`` / ``GET /jobs/<id>[?wait=seconds]``
    List jobs (state-filterable, paginated, with the filtered ``total``
    so operators can page) / poll one job (optionally long-polling
    until it is terminal or the wait window elapses).  Running jobs
    stream progress counts; finished jobs carry the payload and their
    record keys.
``GET /records/<key>`` / ``POST /records`` (``{"keys": [...]}``)
    The raw v3 sweep record behind a cache key — singly, or batched in
    one round trip; ``404`` on miss and ``502`` when a cached record
    fails schema validation (the service refuses to serve invalid
    records).
``POST /records`` (``{"worker": ..., "unit": ..., "records": {...}}``)
    The fleet ingest path: a worker streams completed v3 records for a
    leased unit.  Schema-validated, checked against the unit's expected
    cache keys, idempotent on duplicates (see
    :class:`~repro.service.fleet.FleetCoordinator.ingest`).  The body
    shape — ``records`` vs ``keys`` — selects ingest vs batch fetch.
``POST /workers`` / ``POST /workers/<id>/heartbeat`` / ``POST /lease``
    The worker fleet protocol: register (201 with the worker id and
    heartbeat contract), renew registration + held leases, and lease
    the next queued work unit (``{"unit": null, "retry_after": ...}``
    when there is nothing to do).  A 404 with ``unknown_worker`` tells
    a worker to re-register — the normal aftermath of a server restart.
``POST /shutdown``
    Acknowledge, then drain gracefully and stop the server.

Production hardening (see DESIGN.md, "Service architecture"):

* **Auth** — with ``auth_token`` set, everything except ``GET /healthz``
  requires ``Authorization: Bearer <token>`` (401 otherwise, checked in
  constant time).
* **Rate limiting** — an optional rolling-window
  :class:`~repro.service.ratelimit.RateLimiter` keyed by token-or-peer;
  over-budget requests get 429 with a ``Retry-After`` header.
* **Versioned schemas** — every response embeds a protocol ``version``
  and requests declaring an unsupported version are a clear 400
  (:mod:`repro.service.schemas`).
* **Hostile/unlucky clients** — bodies are bounded and length-checked
  (half-written bodies are a 400 + connection close, never a hang), a
  per-connection socket timeout bounds slow-loris clients, and a peer
  that vanishes mid-response closes only its own connection.
* **Audit** — auth refusals, rate-limit hits, record serves/refusals
  and shutdown requests append to the service's audit log.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from .. import __version__
from ..experiments.registry import SCALES, registry_json
from .fleet import FleetError, UnknownWorker
from .jobs import JobRequest, JobService, RequestError, ServiceUnavailable
from .ratelimit import RateLimiter
from .schemas import version_problem, versioned

#: Longest server-side long-poll window per ``GET /jobs/<id>`` request.
MAX_WAIT_SECONDS = 30.0

#: Largest request body the service will read (requests are small JSON).
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Default per-connection socket timeout.  Bounds how long a slow-loris
#: client (trickling headers or body bytes) can pin a handler thread.
DEFAULT_REQUEST_TIMEOUT = 60.0

#: Exceptions a dead or misbehaving client can cause on our socket.
#: They terminate the connection, never the server.
_CLIENT_GONE = (
    BrokenPipeError,
    ConnectionResetError,
    ConnectionAbortedError,
    TimeoutError,
)


class ServiceServer(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` bound to one :class:`JobService`.

    Parameters
    ----------
    address:
        ``(host, port)`` to bind; port 0 binds an ephemeral port.
    service:
        The job service handling validated requests.
    quiet:
        Suppress the per-request access log.
    auth_token:
        Static bearer token.  When set, every endpoint except
        ``GET /healthz`` (liveness probes stay unauthenticated) requires
        ``Authorization: Bearer <token>`` and answers 401 otherwise.
    rate_limiter:
        Optional :class:`~repro.service.ratelimit.RateLimiter`; requests
        beyond a client's budget answer 429 with a ``Retry-After``
        header.  Clients are keyed by token-or-peer.
    request_timeout:
        Per-connection socket timeout in seconds (the slow-loris bound).
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: JobService,
        *,
        quiet: bool = True,
        auth_token: str | None = None,
        rate_limiter: RateLimiter | None = None,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.quiet = quiet
        self.auth_token = auth_token or None
        self.rate_limiter = rate_limiter
        self.request_timeout = request_timeout
        self._shutdown_thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``--port 0``)."""
        return self.server_address[1]

    @property
    def url(self) -> str:
        """The service base URL for clients on this host."""
        host = self.server_address[0]
        return f"http://{host}:{self.port}"

    def trigger_shutdown(self) -> None:
        """Drain the job service, then stop ``serve_forever`` (async).

        Runs in a background thread because it is called from a request
        handler, and ``shutdown()`` would deadlock the handler's own
        ``serve_forever`` loop.
        """
        if self._shutdown_thread is not None:
            return

        def _drain_and_stop() -> None:
            self.service.drain()
            self.shutdown()

        self._shutdown_thread = threading.Thread(
            target=_drain_and_stop, name="service-shutdown", daemon=True
        )
        self._shutdown_thread.start()


class _Handler(BaseHTTPRequestHandler):
    """Route table + JSON plumbing; all state lives on the server."""

    server_version = f"phi-repro-service/{__version__}"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    @property
    def service(self) -> JobService:
        """The job service this server fronts."""
        return self.server.service  # type: ignore[attr-defined]

    def setup(self) -> None:
        """Apply the server's slow-loris socket timeout, then set up."""
        self.timeout = self.server.request_timeout  # type: ignore[attr-defined]
        super().setup()

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Access log → stderr unless the server was started quiet."""
        if not self.server.quiet:  # type: ignore[attr-defined]
            sys.stderr.write(
                f"{self.address_string()} - {format % args}\n"
            )

    def _audit(self, event: str, **fields) -> None:
        """Append an event to the service's audit log, when configured."""
        audit = self.service.audit
        if audit is not None:
            audit.record(event, **fields)

    def _send(self, status: int, body: dict, *, headers: dict | None = None) -> None:
        """One complete JSON response: status, exact length, single body.

        Every body is stamped with the protocol ``version``.  A client
        that vanished mid-write (broken pipe, reset, send timeout) only
        closes this connection — the handler thread and the server
        survive, which is what the mid-response-drop fault test asserts.
        """
        payload = json.dumps(versioned(body)).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json; charset=utf-8")
            self.send_header("Content-Length", str(len(payload)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(payload)
        except _CLIENT_GONE:
            self.close_connection = True

    def _error(
        self, status: int, message: str, *, headers: dict | None = None, **extra
    ) -> None:
        self._send(status, {"error": message, **extra}, headers=headers)

    def _body_length(self) -> int:
        """The request body length, from an untrusted Content-Length.

        Raises
        ------
        RequestError
            On a non-numeric, negative or oversized value — a hostile
            header must produce a 400, never a blocked ``read(-1)`` or
            an unhandled ``ValueError`` in the handler thread.
        """
        raw = self.headers.get("Content-Length") or "0"
        try:
            length = int(raw)
        except ValueError:
            raise RequestError(f"invalid Content-Length header {raw!r}")
        if length < 0 or length > MAX_BODY_BYTES:
            raise RequestError(f"Content-Length {length} out of range")
        return length

    def _read_json(self):
        length = self._body_length()
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise RequestError("empty request body; expected a JSON object")
        if len(raw) < length:
            # The client promised more bytes than it sent (half-written
            # body, dropped connection): the stream is desynced, so the
            # connection must close after the error response.
            self.close_connection = True
            raise RequestError(
                f"request body truncated: Content-Length {length}, "
                f"received {len(raw)} bytes"
            )
        try:
            return json.loads(raw)
        except ValueError as error:
            raise RequestError(f"request body is not valid JSON: {error}")

    # ------------------------------------------------------------------ #
    # Auth + rate-limit gate
    # ------------------------------------------------------------------ #
    def _identity(self) -> tuple[str, bool]:
        """The client's ``(identity, token_ok)`` for this request.

        Identity is *token-or-peer*: a request presenting the correct
        bearer token is keyed (and audited) by a short digest of that
        token — never the token itself — and anything else by its peer
        address.
        """
        expected = self.server.auth_token  # type: ignore[attr-defined]
        presented = None
        header = self.headers.get("Authorization", "")
        if header.startswith("Bearer "):
            presented = header[len("Bearer "):].strip()
        elif self.headers.get("X-Auth-Token"):
            presented = self.headers["X-Auth-Token"].strip()
        token_ok = expected is None or (
            presented is not None and hmac.compare_digest(presented, expected)
        )
        if expected is not None and token_ok:
            digest = hashlib.sha256(presented.encode("utf-8")).hexdigest()[:8]
            return f"token:{digest}", True
        return f"peer:{self.client_address[0]}", token_ok

    def _gate(self, path: str, *, has_body: bool) -> bool:
        """Run the auth and rate-limit checks; ``True`` lets the request in.

        ``GET /healthz`` is exempt from both so liveness probes and
        load balancers never need credentials and can never be limited
        out of seeing a sick service.
        """
        self._actor, token_ok = self._identity()
        if path == "/healthz":
            return True
        if not token_ok:
            if has_body:
                self._drain_body()
            self._audit(
                "auth.refused", actor=self._actor, method=self.command, path=path
            )
            self._error(
                401,
                "missing or invalid auth token; send "
                "'Authorization: Bearer <token>'",
            )
            return False
        limiter: RateLimiter | None = self.server.rate_limiter  # type: ignore[attr-defined]
        if limiter is not None:
            allowed, retry_after = limiter.allow(self._actor)
            if not allowed:
                if has_body:
                    self._drain_body()
                self._audit(
                    "rate.limited",
                    actor=self._actor,
                    method=self.command,
                    path=path,
                    retry_after=round(retry_after, 3),
                )
                self._error(
                    429,
                    f"rate limit exceeded for {self._actor}; retry after "
                    f"{retry_after:.1f}s",
                    headers={"Retry-After": f"{max(retry_after, 0.1):.1f}"},
                    retry_after=round(retry_after, 3),
                )
                return False
        return True

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Dispatch GET endpoints."""
        url = urlparse(self.path)
        if not self._gate(url.path, has_body=False):
            return
        parts = [part for part in url.path.split("/") if part]
        if parts == ["healthz"]:
            return self._get_healthz()
        if parts == ["experiments"]:
            return self._send(
                200, {"experiments": registry_json(), "scales": sorted(SCALES)}
            )
        if parts == ["jobs"]:
            return self._get_jobs(parse_qs(url.query))
        if len(parts) == 2 and parts[0] == "jobs":
            return self._get_job(parts[1], parse_qs(url.query))
        if len(parts) == 2 and parts[0] == "records":
            return self._get_record(parts[1])
        self._error(404, f"unknown path {url.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """Dispatch POST endpoints."""
        parts = [part for part in urlparse(self.path).path.split("/") if part]
        if not self._gate(urlparse(self.path).path, has_body=True):
            return
        if parts == ["jobs"]:
            return self._post_job()
        if parts == ["records"]:
            return self._post_records()
        if parts == ["workers"]:
            return self._post_worker_register()
        if len(parts) == 3 and parts[0] == "workers" and parts[2] == "heartbeat":
            return self._post_worker_heartbeat(parts[1])
        if parts == ["lease"]:
            return self._post_lease()
        if parts == ["shutdown"]:
            self._drain_body()
            self._audit("service.shutdown_requested", actor=self._actor)
            self._send(200, {"status": "draining"})
            self.server.trigger_shutdown()  # type: ignore[attr-defined]
            return
        # Unconsumed body bytes would desync a keep-alive connection:
        # the next request on the socket would be parsed mid-body.
        self._drain_body()
        self._error(404, f"unknown path {self.path!r}")

    def _drain_body(self) -> None:
        try:
            self.rfile.read(self._body_length())
        except RequestError:
            pass  # garbage header: nothing sane to drain
        except _CLIENT_GONE:
            self.close_connection = True

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def _get_healthz(self) -> None:
        engine = self.service.engine
        self._send(
            200,
            {
                "status": "draining" if self.service.draining else "ok",
                # "version" is the protocol stamp (added by _send);
                # the package release lives under its own key.
                "service_version": __version__,
                "jobs": self.service.counts(),
                "engine": {
                    "jobs": engine.jobs,
                    # `is not None`: an *empty* cache/store is falsy (len 0)
                    # but still very much configured.
                    "cache": None if engine.cache is None else str(engine.cache.root),
                    "store": None if engine.store is None else str(engine.store.root),
                },
                # Operator-facing only: job progress views deliberately
                # never reveal how many nodes served a sweep.
                "fleet": self.service.fleet.counts(),
                "db": None if self.service.db is None else str(self.service.db.path),
            },
        )

    def _get_jobs(self, query: dict) -> None:
        """``GET /jobs``: the state-filterable, paginated job index."""

        def _int_param(name: str, default: int) -> int:
            raw = query.get(name)
            if not raw:
                return default
            try:
                return int(raw[0])
            except ValueError:
                raise RequestError(f"invalid {name} value {raw[0]!r}")

        try:
            status = query.get("status", [None])[0]
            offset = _int_param("offset", 0)
            limit = _int_param("limit", 100)
            summaries, total = self.service.job_index(
                status=status, offset=offset, limit=limit
            )
        except RequestError as error:
            return self._error(400, str(error))
        self._send(
            200,
            {"jobs": summaries, "total": total, "offset": offset, "limit": limit},
        )

    def _post_job(self) -> None:
        try:
            request = JobRequest.from_payload(self._read_json())
        except RequestError as error:
            return self._error(400, str(error))
        try:
            job, deduplicated = self.service.submit(request, actor=self._actor)
        except ServiceUnavailable as error:
            return self._error(503, str(error))
        body = job.snapshot()
        body["deduplicated"] = deduplicated
        self._send(200 if deduplicated else 201, body)

    def _get_job(self, job_id: str, query: dict) -> None:
        job = self.service.get(job_id)
        if job is None:
            return self._error(404, f"unknown job {job_id!r}")
        wait = query.get("wait")
        if wait:
            try:
                window = min(float(wait[0]), MAX_WAIT_SECONDS)
            except ValueError:
                return self._error(400, f"invalid wait value {wait[0]!r}")
            job.wait(max(window, 0.0))
        self._send(200, job.snapshot())

    def _post_records(self) -> None:
        """Batch record fetch: ``{"keys": [...]}`` → one round trip.

        A finished job can list hundreds of record keys; fetching them
        one ``GET /records/<key>`` at a time would make retrieval
        O(points) network round trips.  Missing keys are a 404 (listing
        them), validation failures a 502 (with per-key problems) — the
        same refusal contract as the single-record endpoint.
        """
        try:
            body = self._read_json()
        except RequestError as error:
            return self._error(400, str(error))
        problem = version_problem(body)
        if problem is not None:
            return self._error(400, problem)
        if isinstance(body, dict) and "records" in body:
            return self._ingest_records(body)
        keys = body.get("keys") if isinstance(body, dict) else None
        if not isinstance(keys, list) or not all(isinstance(k, str) for k in keys):
            return self._error(
                400,
                "body must be {'keys': [<record key>, ...]} (fetch) or "
                "{'worker': ..., 'unit': ..., 'records': {...}} (ingest)",
            )
        records: dict[str, dict] = {}
        missing: list[str] = []
        invalid: dict[str, list[str]] = {}
        for key in keys:
            record, problems = self.service.record(key)
            if problems:
                invalid[key] = problems
            elif record is None:
                missing.append(key)
            else:
                records[key] = record
        if invalid:
            self._audit(
                "record.refused",
                actor=self._actor,
                reason="invalid",
                keys=sorted(invalid),
            )
            return self._error(
                502, "cached records fail v3 schema validation", problems=invalid
            )
        if missing:
            self._audit(
                "record.refused",
                actor=self._actor,
                reason="missing",
                keys=sorted(missing),
            )
            return self._error(404, "no cached record for some keys", missing=missing)
        self._audit("record.served", actor=self._actor, count=len(records))
        self._send(200, {"records": records})

    # ------------------------------------------------------------------ #
    # Worker fleet protocol
    # ------------------------------------------------------------------ #
    def _ingest_records(self, body: dict) -> None:
        """``POST /records`` ingest mode: a worker delivers unit records."""
        worker = body.get("worker")
        unit = body.get("unit")
        records = body.get("records")
        if (
            not isinstance(worker, str)
            or not isinstance(unit, str)
            or not isinstance(records, dict)
        ):
            return self._error(
                400,
                "ingest body must be {'worker': <id>, 'unit': <id>, "
                "'records': {<key>: <record>, ...}}",
            )
        try:
            result = self.service.fleet.ingest(worker, unit, records)
        except UnknownWorker as error:
            return self._error(404, str(error), unknown_worker=True)
        except FleetError as error:
            self._audit(
                "record.refused",
                actor=self._actor,
                reason="ingest",
                unit=unit,
                worker=worker,
            )
            return self._error(400, str(error))
        self._send(200, result)

    def _post_worker_register(self) -> None:
        """``POST /workers``: register a worker (201 with the contract)."""
        try:
            body = self._read_json()
        except RequestError as error:
            # An empty body is fine for registration — there is nothing
            # a brand-new worker could usefully declare.
            if "empty request body" not in str(error):
                return self._error(400, str(error))
            body = {}
        problem = version_problem(body)
        if problem is not None:
            return self._error(400, problem)
        self._send(201, self.service.fleet.register(actor=self._actor))

    def _post_worker_heartbeat(self, worker_id: str) -> None:
        """``POST /workers/<id>/heartbeat``: renew registration + leases."""
        self._drain_body()
        try:
            self._send(200, self.service.fleet.heartbeat(worker_id))
        except UnknownWorker as error:
            self._error(404, str(error), unknown_worker=True)

    def _post_lease(self) -> None:
        """``POST /lease``: grant the next queued unit to a worker.

        The body may piggyback an explicit failure report for the
        worker's previous unit (``{"failed": {"unit": ..., "error":
        ...}}``) so a worker that *knows* it failed does not leave the
        unit parked until TTL expiry.
        """
        try:
            body = self._read_json()
        except RequestError as error:
            return self._error(400, str(error))
        problem = version_problem(body)
        if problem is not None:
            return self._error(400, problem)
        worker = body.get("worker") if isinstance(body, dict) else None
        if not isinstance(worker, str):
            return self._error(400, "lease body must carry a 'worker' id")
        failed = body.get("failed")
        try:
            if failed is not None:
                if not isinstance(failed, dict) or not isinstance(
                    failed.get("unit"), str
                ):
                    return self._error(
                        400, "'failed' must be {'unit': <id>, 'error': <text>}"
                    )
                self.service.fleet.fail(
                    worker, failed["unit"], str(failed.get("error", ""))
                )
            grant = self.service.fleet.lease(worker)
        except UnknownWorker as error:
            return self._error(404, str(error), unknown_worker=True)
        except FleetError as error:
            return self._error(400, str(error))
        if grant is None:
            retry_after = round(self.service.fleet.lease_ttl / 3.0, 3)
            return self._send(200, {"unit": None, "retry_after": retry_after})
        self._send(200, {"unit": grant})

    def _get_record(self, key: str) -> None:
        record, problems = self.service.record(key)
        if problems:
            self._audit(
                "record.refused", actor=self._actor, reason="invalid", keys=[key]
            )
            return self._error(
                502,
                f"cached record {key} fails v3 schema validation",
                problems=problems,
            )
        if record is None:
            self._audit(
                "record.refused", actor=self._actor, reason="missing", keys=[key]
            )
            return self._error(404, f"no cached record for key {key!r}")
        self._audit("record.served", actor=self._actor, count=1)
        self._send(200, {"key": key, "record": record})


def serve(
    service: JobService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
    auth_token: str | None = None,
    rate_limiter: RateLimiter | None = None,
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
) -> ServiceServer:
    """Bind a :class:`ServiceServer` for ``service`` (without serving yet).

    Callers run ``server.serve_forever()`` (the CLI does) or drive it
    from a background thread (the tests do); ``port=0`` binds an
    ephemeral port, reported by :attr:`ServiceServer.port`.  See
    :class:`ServiceServer` for the auth, rate-limit and slow-client
    protection parameters.
    """
    return ServiceServer(
        (host, port),
        service,
        quiet=quiet,
        auth_token=auth_token,
        rate_limiter=rate_limiter,
        request_timeout=request_timeout,
    )
