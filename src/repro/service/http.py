"""HTTP+JSON front-end of the sweep service.

A thin, stdlib-only layer over :class:`~repro.service.jobs.JobService`:
``ThreadingHTTPServer`` gives one thread per connection, the handler
parses/validates JSON and the job layer does everything else.  Every
response is materialised as one ``bytes`` body and sent with an exact
``Content-Length`` in a single write, so a client can never observe a
torn (partially written) JSON document — the concurrency suite asserts
this under load.

Endpoints
---------
``GET /healthz``
    Liveness + job counts + engine configuration.
``GET /experiments``
    The experiment registry (:func:`repro.experiments.registry.registry_json`)
    and the named scale tiers.
``POST /jobs``
    Submit ``{"experiment": ..., "scale": ..., "overrides": {...}}``;
    ``201`` with the job view, or ``200`` when deduplicated onto an
    in-flight job.  Unknown fields, experiments or scales are ``400``.
``GET /jobs`` / ``GET /jobs/<id>[?wait=seconds]``
    List jobs / poll one job (optionally long-polling until it is
    terminal or the wait window elapses).  Running jobs stream progress
    counts; finished jobs carry the payload and their record keys.
``GET /records/<key>`` / ``POST /records`` (``{"keys": [...]}``)
    The raw v3 sweep record behind a cache key — singly, or batched in
    one round trip; ``404`` on miss and ``502`` when a cached record
    fails schema validation (the service refuses to serve invalid
    records).
``POST /shutdown``
    Acknowledge, then drain gracefully and stop the server.
"""

from __future__ import annotations

import json
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from .. import __version__
from ..experiments.registry import SCALES, registry_json
from .jobs import JobRequest, JobService, RequestError, ServiceUnavailable

#: Longest server-side long-poll window per ``GET /jobs/<id>`` request.
MAX_WAIT_SECONDS = 30.0

#: Largest request body the service will read (requests are small JSON).
MAX_BODY_BYTES = 4 * 1024 * 1024


class ServiceServer(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` bound to one :class:`JobService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: JobService, *, quiet: bool = True) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.quiet = quiet
        self._shutdown_thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``--port 0``)."""
        return self.server_address[1]

    @property
    def url(self) -> str:
        """The service base URL for clients on this host."""
        host = self.server_address[0]
        return f"http://{host}:{self.port}"

    def trigger_shutdown(self) -> None:
        """Drain the job service, then stop ``serve_forever`` (async).

        Runs in a background thread because it is called from a request
        handler, and ``shutdown()`` would deadlock the handler's own
        ``serve_forever`` loop.
        """
        if self._shutdown_thread is not None:
            return

        def _drain_and_stop() -> None:
            self.service.drain()
            self.shutdown()

        self._shutdown_thread = threading.Thread(
            target=_drain_and_stop, name="service-shutdown", daemon=True
        )
        self._shutdown_thread.start()


class _Handler(BaseHTTPRequestHandler):
    """Route table + JSON plumbing; all state lives on the server."""

    server_version = f"phi-repro-service/{__version__}"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    @property
    def service(self) -> JobService:
        """The job service this server fronts."""
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Access log → stderr unless the server was started quiet."""
        if not self.server.quiet:  # type: ignore[attr-defined]
            sys.stderr.write(
                f"{self.address_string()} - {format % args}\n"
            )

    def _send(self, status: int, body: dict) -> None:
        """One complete JSON response: status, exact length, single body."""
        payload = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _error(self, status: int, message: str, **extra) -> None:
        self._send(status, {"error": message, **extra})

    def _body_length(self) -> int:
        """The request body length, from an untrusted Content-Length.

        Raises
        ------
        RequestError
            On a non-numeric, negative or oversized value — a hostile
            header must produce a 400, never a blocked ``read(-1)`` or
            an unhandled ``ValueError`` in the handler thread.
        """
        raw = self.headers.get("Content-Length") or "0"
        try:
            length = int(raw)
        except ValueError:
            raise RequestError(f"invalid Content-Length header {raw!r}")
        if length < 0 or length > MAX_BODY_BYTES:
            raise RequestError(f"Content-Length {length} out of range")
        return length

    def _read_json(self):
        length = self._body_length()
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise RequestError("empty request body; expected a JSON object")
        try:
            return json.loads(raw)
        except ValueError as error:
            raise RequestError(f"request body is not valid JSON: {error}")

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Dispatch GET endpoints."""
        url = urlparse(self.path)
        parts = [part for part in url.path.split("/") if part]
        if parts == ["healthz"]:
            return self._get_healthz()
        if parts == ["experiments"]:
            return self._send(
                200, {"experiments": registry_json(), "scales": sorted(SCALES)}
            )
        if parts == ["jobs"]:
            return self._send(
                200, {"jobs": [job.summary() for job in self.service.jobs()]}
            )
        if len(parts) == 2 and parts[0] == "jobs":
            return self._get_job(parts[1], parse_qs(url.query))
        if len(parts) == 2 and parts[0] == "records":
            return self._get_record(parts[1])
        self._error(404, f"unknown path {url.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """Dispatch POST endpoints."""
        parts = [part for part in urlparse(self.path).path.split("/") if part]
        if parts == ["jobs"]:
            return self._post_job()
        if parts == ["records"]:
            return self._post_records()
        if parts == ["shutdown"]:
            self._drain_body()
            self._send(200, {"status": "draining"})
            self.server.trigger_shutdown()  # type: ignore[attr-defined]
            return
        # Unconsumed body bytes would desync a keep-alive connection:
        # the next request on the socket would be parsed mid-body.
        self._drain_body()
        self._error(404, f"unknown path {self.path!r}")

    def _drain_body(self) -> None:
        try:
            self.rfile.read(self._body_length())
        except RequestError:
            pass  # garbage header: nothing sane to drain

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def _get_healthz(self) -> None:
        engine = self.service.engine
        self._send(
            200,
            {
                "status": "draining" if self.service.draining else "ok",
                "version": __version__,
                "jobs": self.service.counts(),
                "engine": {
                    "jobs": engine.jobs,
                    # `is not None`: an *empty* cache/store is falsy (len 0)
                    # but still very much configured.
                    "cache": None if engine.cache is None else str(engine.cache.root),
                    "store": None if engine.store is None else str(engine.store.root),
                },
            },
        )

    def _post_job(self) -> None:
        try:
            request = JobRequest.from_payload(self._read_json())
        except RequestError as error:
            return self._error(400, str(error))
        try:
            job, deduplicated = self.service.submit(request)
        except ServiceUnavailable as error:
            return self._error(503, str(error))
        body = job.snapshot()
        body["deduplicated"] = deduplicated
        self._send(200 if deduplicated else 201, body)

    def _get_job(self, job_id: str, query: dict) -> None:
        job = self.service.get(job_id)
        if job is None:
            return self._error(404, f"unknown job {job_id!r}")
        wait = query.get("wait")
        if wait:
            try:
                window = min(float(wait[0]), MAX_WAIT_SECONDS)
            except ValueError:
                return self._error(400, f"invalid wait value {wait[0]!r}")
            job.wait(max(window, 0.0))
        self._send(200, job.snapshot())

    def _post_records(self) -> None:
        """Batch record fetch: ``{"keys": [...]}`` → one round trip.

        A finished job can list hundreds of record keys; fetching them
        one ``GET /records/<key>`` at a time would make retrieval
        O(points) network round trips.  Missing keys are a 404 (listing
        them), validation failures a 502 (with per-key problems) — the
        same refusal contract as the single-record endpoint.
        """
        try:
            body = self._read_json()
        except RequestError as error:
            return self._error(400, str(error))
        keys = body.get("keys") if isinstance(body, dict) else None
        if not isinstance(keys, list) or not all(isinstance(k, str) for k in keys):
            return self._error(400, "body must be {'keys': [<record key>, ...]}")
        records: dict[str, dict] = {}
        missing: list[str] = []
        invalid: dict[str, list[str]] = {}
        for key in keys:
            record, problems = self.service.record(key)
            if problems:
                invalid[key] = problems
            elif record is None:
                missing.append(key)
            else:
                records[key] = record
        if invalid:
            return self._error(
                502, "cached records fail v3 schema validation", problems=invalid
            )
        if missing:
            return self._error(404, "no cached record for some keys", missing=missing)
        self._send(200, {"records": records})

    def _get_record(self, key: str) -> None:
        record, problems = self.service.record(key)
        if problems:
            return self._error(
                502,
                f"cached record {key} fails v3 schema validation",
                problems=problems,
            )
        if record is None:
            return self._error(404, f"no cached record for key {key!r}")
        self._send(200, {"key": key, "record": record})


def serve(
    service: JobService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> ServiceServer:
    """Bind a :class:`ServiceServer` for ``service`` (without serving yet).

    Callers run ``server.serve_forever()`` (the CLI does) or drive it
    from a background thread (the tests do); ``port=0`` binds an
    ephemeral port, reported by :attr:`ServiceServer.port`.
    """
    return ServiceServer((host, port), service, quiet=quiet)
