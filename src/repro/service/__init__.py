"""Sweep-as-a-service: a concurrent job service over the artifact store.

``python -m repro.service serve`` turns the one-shot CLI stack into a
long-lived front-end: one warm :class:`~repro.runner.SweepEngine` (result
cache + artifact store + worker pool) owned by a single process, serving
sweep/experiment/report requests from many simultaneous clients over
HTTP+JSON.  Work is deduplicated at three levels before any simulation
runs — identical *requests* collapse onto one in-flight job, identical
*points* collapse inside the re-entrant engine, and previously computed
points load from the :class:`~repro.runner.ResultCache` (with workloads,
calibrations and decompositions shared through the
:class:`~repro.runner.ArtifactStore` below that).

The package is stdlib-only on top of the existing runner layer:

* :mod:`repro.service.jobs` — the job model (submit → queued → running →
  done/failed) and the dispatcher that executes jobs on the shared engine.
* :mod:`repro.service.http` — the ``ThreadingHTTPServer`` front-end and
  its JSON request/response handling.
* :mod:`repro.service.client` — the thin ``urllib`` client used by
  ``python -m repro.runner ... --remote URL`` and
  ``python -m repro.report --remote URL``, with retry/backoff for
  transient failures and restart-surviving job waits.
* :mod:`repro.service.cli` — the ``serve`` entry point with graceful
  drain/shutdown.
* :mod:`repro.service.schemas` — the protocol version embedded in every
  request/response.
* :mod:`repro.service.ratelimit` — per-client rolling-window rate
  limiting (429 + ``Retry-After``).
* :mod:`repro.service.audit` — the append-only JSONL audit log of every
  job/record mutation.

See DESIGN.md ("Service architecture") for the job lifecycle and the
concurrency guarantees the test suite locks down.
"""

from .audit import AuditLog
from .client import (
    NO_RETRY,
    JobNotFound,
    RetryPolicy,
    ServiceClient,
    ServiceError,
)
from .http import ServiceServer, serve
from .jobs import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    JobRequest,
    JobService,
    RequestError,
    ServiceUnavailable,
)
from .ratelimit import RateLimiter
from .schemas import PROTOCOL_VERSION

__all__ = [
    "DONE",
    "FAILED",
    "NO_RETRY",
    "PROTOCOL_VERSION",
    "AuditLog",
    "Job",
    "JobNotFound",
    "JobRequest",
    "JobService",
    "QUEUED",
    "RUNNING",
    "RateLimiter",
    "RequestError",
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ServiceUnavailable",
    "serve",
]
