"""Sweep-as-a-service: a concurrent job service over the artifact store.

``python -m repro.service serve`` turns the one-shot CLI stack into a
long-lived front-end: one warm :class:`~repro.runner.SweepEngine` (result
cache + artifact store + worker pool) owned by a single process, serving
sweep/experiment/report requests from many simultaneous clients over
HTTP+JSON.  Work is deduplicated at three levels before any simulation
runs — identical *requests* collapse onto one in-flight job, identical
*points* collapse inside the re-entrant engine, and previously computed
points load from the :class:`~repro.runner.ResultCache` (with workloads,
calibrations and decompositions shared through the
:class:`~repro.runner.ArtifactStore` below that).

The package is stdlib-only on top of the existing runner layer:

* :mod:`repro.service.jobs` — the job model (submit → queued → running →
  done/failed) and the dispatcher that executes jobs on the shared engine.
* :mod:`repro.service.http` — the ``ThreadingHTTPServer`` front-end and
  its JSON request/response handling.
* :mod:`repro.service.client` — the thin ``urllib`` client used by
  ``python -m repro.runner ... --remote URL`` and
  ``python -m repro.report --remote URL``.
* :mod:`repro.service.cli` — the ``serve`` entry point with graceful
  drain/shutdown.

See DESIGN.md ("Service architecture") for the job lifecycle and the
concurrency guarantees the test suite locks down.
"""

from .client import ServiceClient, ServiceError
from .http import ServiceServer, serve
from .jobs import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    JobRequest,
    JobService,
    RequestError,
    ServiceUnavailable,
)

__all__ = [
    "DONE",
    "FAILED",
    "Job",
    "JobRequest",
    "JobService",
    "QUEUED",
    "RUNNING",
    "RequestError",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ServiceUnavailable",
    "serve",
]
