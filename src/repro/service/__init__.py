"""Sweep-as-a-service: a concurrent job service over the artifact store.

``python -m repro.service serve`` turns the one-shot CLI stack into a
long-lived front-end: one warm :class:`~repro.runner.SweepEngine` (result
cache + artifact store + worker pool) owned by a single process, serving
sweep/experiment/report requests from many simultaneous clients over
HTTP+JSON.  Work is deduplicated at three levels before any simulation
runs — identical *requests* collapse onto one in-flight job, identical
*points* collapse inside the re-entrant engine, and previously computed
points load from the :class:`~repro.runner.ResultCache` (with workloads,
calibrations and decompositions shared through the
:class:`~repro.runner.ArtifactStore` below that).

The package is stdlib-only on top of the existing runner layer:

* :mod:`repro.service.jobs` — the job model (submit → queued → running →
  done/failed) and the dispatcher that executes jobs on the shared engine.
* :mod:`repro.service.http` — the ``ThreadingHTTPServer`` front-end and
  its JSON request/response handling.
* :mod:`repro.service.client` — the thin ``urllib`` client used by
  ``python -m repro.runner ... --remote URL`` and
  ``python -m repro.report --remote URL``, with retry/backoff for
  transient failures and restart-surviving job waits.
* :mod:`repro.service.cli` — the ``serve`` / ``worker`` entry points
  with graceful drain/shutdown.
* :mod:`repro.service.schemas` — the protocol version embedded in every
  request/response.
* :mod:`repro.service.ratelimit` — per-client rolling-window rate
  limiting (429 + ``Retry-After``).
* :mod:`repro.service.audit` — the append-only JSONL audit log of every
  job/record mutation, with optional size-based rotation.
* :mod:`repro.service.db` — the WAL-mode sqlite journal that makes the
  job queue durable: jobs, worker registrations and lease events
  survive a SIGKILL and are recovered on boot.
* :mod:`repro.service.fleet` — the lease coordinator distributing
  ``(workload, config)`` units to registered workers, with heartbeat
  TTLs, automatic requeue of dead owners' leases and local fallback.
* :mod:`repro.service.worker` — the ``python -m repro.service worker``
  loop: register, lease, simulate, ingest, survive restarts.

See DESIGN.md ("Service architecture" and "Durable fabric") for the
job lifecycle, the lease state machine and the concurrency/recovery
guarantees the test suite locks down.
"""

from .audit import AuditLog
from .client import (
    NO_RETRY,
    JobNotFound,
    RetryPolicy,
    ServiceClient,
    ServiceError,
)
from .db import SCHEMA_VERSION, SchemaMismatch, ServiceDB
from .fleet import FleetCoordinator, FleetError, UnknownWorker, WorkUnit
from .http import ServiceServer, serve
from .jobs import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    JobRequest,
    JobService,
    RequestError,
    ServiceUnavailable,
)
from .ratelimit import RateLimiter
from .schemas import PROTOCOL_VERSION
from .worker import FleetWorker

__all__ = [
    "DONE",
    "FAILED",
    "NO_RETRY",
    "PROTOCOL_VERSION",
    "SCHEMA_VERSION",
    "AuditLog",
    "FleetCoordinator",
    "FleetError",
    "FleetWorker",
    "Job",
    "JobNotFound",
    "JobRequest",
    "JobService",
    "QUEUED",
    "RUNNING",
    "RateLimiter",
    "RequestError",
    "RetryPolicy",
    "SchemaMismatch",
    "ServiceClient",
    "ServiceDB",
    "ServiceError",
    "ServiceServer",
    "ServiceUnavailable",
    "UnknownWorker",
    "WorkUnit",
    "serve",
]
