"""``python -m repro.service`` dispatches to the service CLI."""

import sys

from .cli import main

sys.exit(main())
