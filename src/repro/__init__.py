"""Phi: Pattern-based Hierarchical Sparsity for High-Efficiency SNNs.

Reproduction of the ISCA 2025 paper.  The package is organised as:

* :mod:`repro.core` — the Phi sparsity algorithm (patterns, binary k-means
  calibration, Level 1 / Level 2 decomposition, PAFT).
* :mod:`repro.snn` — a NumPy spiking-neural-network substrate (LIF
  neurons, spiking conv / linear / attention layers, the model zoo and a
  surrogate-gradient trainer).
* :mod:`repro.datasets` — synthetic image / event / text datasets standing
  in for CIFAR, CIFAR10-DVS, SST and MNLI.
* :mod:`repro.workloads` — extraction of per-layer spike-activation and
  weight matrices from models.
* :mod:`repro.hw` — the Phi accelerator cycle-level simulator and its
  energy/area model.
* :mod:`repro.baselines` — analytical models of Spiking Eyeriss,
  SpinalFlow, SATO, PTB and Stellar.
* :mod:`repro.analysis` — t-SNE, clustering and memory-traffic analysis.
* :mod:`repro.experiments` — one harness per paper table / figure.
* :mod:`repro.runner` — the parallel sweep engine with its on-disk
  content-addressed result cache (``python -m repro.runner``).
* :mod:`repro.report` — the reproduction-report pipeline that runs the
  experiment registry and emits ``REPRODUCTION.md``
  (``python -m repro.report``).

Subpackages are imported lazily on attribute access to keep ``import
repro`` fast.
"""

from importlib import import_module

__version__ = "1.0.0"

_SUBPACKAGES = (
    "core",
    "snn",
    "datasets",
    "workloads",
    "hw",
    "baselines",
    "analysis",
    "experiments",
    "runner",
    "report",
)

__all__ = list(_SUBPACKAGES) + ["__version__"]


def __getattr__(name: str):
    """Lazily import subpackages on first access."""
    if name in _SUBPACKAGES:
        module = import_module(f"{__name__}.{name}")
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)
