"""Configuration objects for the Phi sparsity algorithm.

The paper's design-space exploration (Section 5.2) fixes the partition
(tile) width along the reduction dimension to ``k = 16`` and the number of
calibrated patterns per partition to ``q = 128``.  :class:`PhiConfig`
captures these together with the calibration and fine-tuning knobs so that
all downstream components (calibrator, decomposer, simulator, experiment
harness) share a single source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping


@dataclass(frozen=True)
class KMeansConfig:
    """Settings for the Hamming-distance binary k-means of Algorithm 1.

    Attributes
    ----------
    max_iterations:
        Upper bound on Lloyd iterations.  The paper notes the clustering
        converges quickly because rows are short binary vectors.
    tolerance:
        Stop early when the number of reassigned rows falls below this
        fraction of the dataset.
    seed:
        Seed for centre initialisation; calibration is deterministic for a
        fixed seed.
    empty_cluster_strategy:
        What to do when a cluster loses all members: ``"reseed"`` picks the
        row farthest from its centre, ``"drop"`` keeps the stale centre.
    """

    max_iterations: int = 25
    tolerance: float = 1e-3
    seed: int = 0
    empty_cluster_strategy: str = "reseed"

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if not 0.0 <= self.tolerance < 1.0:
            raise ValueError("tolerance must be in [0, 1)")
        if self.empty_cluster_strategy not in ("reseed", "drop"):
            raise ValueError(
                "empty_cluster_strategy must be 'reseed' or 'drop', got "
                f"{self.empty_cluster_strategy!r}"
            )


@dataclass(frozen=True)
class PhiConfig:
    """Top-level configuration of the Phi sparsity framework.

    Attributes
    ----------
    partition_size:
        Width ``k`` of each partition along the reduction (K) dimension.
        The paper selects 16 (Fig. 7a/b).
    num_patterns:
        Number ``q`` of calibrated patterns per partition.  The paper
        selects 128 (Fig. 7c).  Pattern index 0 is reserved for "no pattern
        assigned", so at most ``num_patterns`` real patterns exist per
        partition.
    calibration_samples:
        Number of calibration rows (per partition) sampled from the
        calibration set.  A small subset of the training data suffices
        (Section 3.2).
    filter_all_zero:
        Drop all-zero rows before clustering (they need no computation).
    filter_one_hot:
        Drop one-hot rows before clustering (a one-hot pattern's PWP equals
        a weight row, so it brings no benefit).
    kmeans:
        Settings for the binary k-means clustering.
    """

    partition_size: int = 16
    num_patterns: int = 128
    calibration_samples: int = 8192
    filter_all_zero: bool = True
    filter_one_hot: bool = True
    kmeans: KMeansConfig = field(default_factory=KMeansConfig)

    def __post_init__(self) -> None:
        if self.partition_size < 1:
            raise ValueError("partition_size must be >= 1")
        if self.num_patterns < 1:
            raise ValueError("num_patterns must be >= 1")
        if self.num_patterns > 2 ** self.partition_size:
            raise ValueError(
                "num_patterns cannot exceed the number of distinct binary "
                f"rows 2**{self.partition_size}"
            )
        if self.calibration_samples < 1:
            raise ValueError("calibration_samples must be >= 1")

    def with_overrides(self, **kwargs: Any) -> "PhiConfig":
        """Return a copy of this config with the given fields replaced."""
        return replace(self, **kwargs)

    def to_dict(self) -> dict:
        """Serialise the configuration to plain Python types."""
        return {
            "partition_size": self.partition_size,
            "num_patterns": self.num_patterns,
            "calibration_samples": self.calibration_samples,
            "filter_all_zero": self.filter_all_zero,
            "filter_one_hot": self.filter_one_hot,
            "kmeans": {
                "max_iterations": self.kmeans.max_iterations,
                "tolerance": self.kmeans.tolerance,
                "seed": self.kmeans.seed,
                "empty_cluster_strategy": self.kmeans.empty_cluster_strategy,
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PhiConfig":
        """Reconstruct a configuration from :meth:`to_dict` output."""
        kmeans_data = dict(data.get("kmeans", {}))
        return cls(
            partition_size=int(data.get("partition_size", 16)),
            num_patterns=int(data.get("num_patterns", 128)),
            calibration_samples=int(data.get("calibration_samples", 8192)),
            filter_all_zero=bool(data.get("filter_all_zero", True)),
            filter_one_hot=bool(data.get("filter_one_hot", True)),
            kmeans=KMeansConfig(**kmeans_data),
        )


#: Configuration used throughout the paper's evaluation (k = 16, q = 128).
PAPER_CONFIG = PhiConfig(partition_size=16, num_patterns=128)
