"""Sparsity and operation-count metrics used across the evaluation.

The paper measures efficiency in "operations" (OPs), where one OP is the
accumulation triggered by a single '1' element in a bit-sparse activation
(Section 5.1).  Under Phi sparsity the online work shrinks to:

* Level 1: one PWP lookup-and-accumulate per assigned pattern per output
  tile (amortised over the N dimension it is one vector accumulation), and
* Level 2: one accumulation per {+1, -1} correction element.

The *theoretical speedups* of Table 4 compare operation counts against bit
sparsity ("Theo. Sp. Over B.") and against a dense accelerator
("Theo. Sp. Over D.").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from .patterns import NO_PATTERN
from .sparsity import MatrixDecomposition


@dataclass(frozen=True)
class SparsityBreakdown:
    """Density breakdown of one decomposed activation matrix (Table 4 row).

    All densities are fractions in [0, 1].

    Attributes
    ----------
    bit_density:
        Fraction of 1 bits in the original binary activation matrix.
    level1_density:
        Fraction of (row, partition) slots that carry a pattern, expressed
        per element (i.e. pattern popcount mass relative to matrix size) so
        that it is directly comparable with the paper's "L1 density" column
        which closely tracks the bit density.
    level1_vector_density:
        Fraction of (row, partition) slots with an assigned pattern.
    level2_density:
        Fraction of nonzero correction elements.
    level2_positive_density / level2_negative_density:
        Fractions of +1 and -1 corrections.
    """

    bit_density: float
    level1_density: float
    level1_vector_density: float
    level2_density: float
    level2_positive_density: float
    level2_negative_density: float

    @property
    def total_online_density(self) -> float:
        """Density of elements that still require online computation."""
        return self.level2_density

    def as_dict(self) -> dict[str, float]:
        """Return the breakdown as a plain dictionary."""
        return {
            "bit_density": self.bit_density,
            "level1_density": self.level1_density,
            "level1_vector_density": self.level1_vector_density,
            "level2_density": self.level2_density,
            "level2_positive_density": self.level2_positive_density,
            "level2_negative_density": self.level2_negative_density,
        }


def sparsity_breakdown(decomposition: MatrixDecomposition) -> SparsityBreakdown:
    """Compute the Table-4-style density breakdown of a decomposition."""
    total_elements = sum(t.original.size for t in decomposition.tiles)
    if total_elements == 0:
        return SparsityBreakdown(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    pattern_bit_mass = 0
    for tile in decomposition.tiles:
        assigned = tile.pattern_indices != NO_PATTERN
        if np.any(assigned):
            pattern_matrix = tile.patterns.matrix
            popcounts = pattern_matrix.sum(axis=1)
            pattern_bit_mass += int(popcounts[tile.pattern_indices[assigned] - 1].sum())

    return SparsityBreakdown(
        bit_density=decomposition.bit_density,
        level1_density=pattern_bit_mass / total_elements,
        level1_vector_density=decomposition.level1_density,
        level2_density=decomposition.level2_density,
        level2_positive_density=decomposition.level2_positive_density,
        level2_negative_density=decomposition.level2_negative_density,
    )


@dataclass(frozen=True)
class OperationCounts:
    """Online operation counts of one layer under different schemes.

    One operation is an accumulation of a weight row of length ``n`` (the
    output-tile width): dense accelerators perform ``M * K`` of them,
    bit-sparse accelerators only for the '1' activations, and Phi only for
    Level 1 pattern lookups plus Level 2 corrections.
    """

    dense_ops: int
    bit_sparse_ops: int
    phi_level1_ops: int
    phi_level2_ops: int

    @property
    def phi_ops(self) -> int:
        """Total online Phi operations (Level 1 lookups + Level 2 ACs)."""
        return self.phi_level1_ops + self.phi_level2_ops

    @property
    def speedup_over_bit(self) -> float:
        """Theoretical speedup of Phi over bit sparsity (Table 4)."""
        if self.phi_ops == 0:
            return float("inf") if self.bit_sparse_ops > 0 else 1.0
        return self.bit_sparse_ops / self.phi_ops

    @property
    def speedup_over_dense(self) -> float:
        """Theoretical speedup of Phi over a dense accelerator (Table 4)."""
        if self.phi_ops == 0:
            return float("inf") if self.dense_ops > 0 else 1.0
        return self.dense_ops / self.phi_ops

    def __add__(self, other: "OperationCounts") -> "OperationCounts":
        return OperationCounts(
            dense_ops=self.dense_ops + other.dense_ops,
            bit_sparse_ops=self.bit_sparse_ops + other.bit_sparse_ops,
            phi_level1_ops=self.phi_level1_ops + other.phi_level1_ops,
            phi_level2_ops=self.phi_level2_ops + other.phi_level2_ops,
        )


def operation_counts(decomposition: MatrixDecomposition) -> OperationCounts:
    """Count online accumulation operations for a decomposed matrix.

    Dense operation count is ``M * K`` vector accumulations; bit-sparse
    count is the number of '1' activation bits; Phi counts one vector
    accumulation per assigned pattern (the PWP lookup) plus one per Level 2
    correction element.
    """
    dense_ops = 0
    bit_ops = 0
    l1_ops = 0
    l2_ops = 0
    for tile in decomposition.tiles:
        dense_ops += tile.original.size
        bit_ops += int(tile.original.sum())
        l1_ops += int(np.count_nonzero(tile.pattern_indices != NO_PATTERN))
        l2_ops += int(np.count_nonzero(tile.level2))
    return OperationCounts(
        dense_ops=dense_ops,
        bit_sparse_ops=bit_ops,
        phi_level1_ops=l1_ops,
        phi_level2_ops=l2_ops,
    )


def aggregate_operation_counts(counts: Iterable[OperationCounts]) -> OperationCounts:
    """Sum operation counts over multiple layers."""
    total = OperationCounts(0, 0, 0, 0)
    for item in counts:
        total = total + item
    return total


def aggregate_breakdowns(
    breakdowns: Iterable[tuple[SparsityBreakdown, int]]
) -> SparsityBreakdown:
    """Weighted average of per-layer breakdowns.

    Parameters
    ----------
    breakdowns:
        Iterable of ``(breakdown, element_count)`` pairs; densities are
        averaged weighted by each layer's element count.
    """
    pairs = list(breakdowns)
    total = sum(weight for _, weight in pairs)
    if total == 0:
        return SparsityBreakdown(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    def weighted(attr: str) -> float:
        return sum(getattr(b, attr) * w for b, w in pairs) / total

    return SparsityBreakdown(
        bit_density=weighted("bit_density"),
        level1_density=weighted("level1_density"),
        level1_vector_density=weighted("level1_vector_density"),
        level2_density=weighted("level2_density"),
        level2_positive_density=weighted("level2_positive_density"),
        level2_negative_density=weighted("level2_negative_density"),
    )


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean used for the "Geomean" columns of Fig. 8."""
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        raise ValueError("geometric_mean requires at least one value")
    if np.any(data <= 0):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.log(data).mean()))
