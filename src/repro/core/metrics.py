"""Sparsity and operation-count metrics used across the evaluation.

The paper measures efficiency in "operations" (OPs), where one OP is the
accumulation triggered by a single '1' element in a bit-sparse activation
(Section 5.1).  Under Phi sparsity the online work shrinks to:

* Level 1: one PWP lookup-and-accumulate per assigned pattern per output
  tile (amortised over the N dimension it is one vector accumulation), and
* Level 2: one accumulation per {+1, -1} correction element.

The *theoretical speedups* of Table 4 compare operation counts against bit
sparsity ("Theo. Sp. Over B.") and against a dense accelerator
("Theo. Sp. Over D.").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from .patterns import NO_PATTERN
from .sparsity import MatrixDecomposition


@dataclass(frozen=True)
class SparsityBreakdown:
    """Density breakdown of one decomposed activation matrix (Table 4 row).

    All densities are fractions in [0, 1].

    Attributes
    ----------
    bit_density:
        Fraction of 1 bits in the original binary activation matrix.
    level1_density:
        Fraction of (row, partition) slots that carry a pattern, expressed
        per element (i.e. pattern popcount mass relative to matrix size) so
        that it is directly comparable with the paper's "L1 density" column
        which closely tracks the bit density.
    level1_vector_density:
        Fraction of (row, partition) slots with an assigned pattern.
    level2_density:
        Fraction of nonzero correction elements.
    level2_positive_density / level2_negative_density:
        Fractions of +1 and -1 corrections.
    """

    bit_density: float
    level1_density: float
    level1_vector_density: float
    level2_density: float
    level2_positive_density: float
    level2_negative_density: float

    @property
    def total_online_density(self) -> float:
        """Density of elements that still require online computation."""
        return self.level2_density

    def as_dict(self) -> dict[str, float]:
        """Return the breakdown as a plain dictionary."""
        return {
            "bit_density": self.bit_density,
            "level1_density": self.level1_density,
            "level1_vector_density": self.level1_vector_density,
            "level2_density": self.level2_density,
            "level2_positive_density": self.level2_positive_density,
            "level2_negative_density": self.level2_negative_density,
        }


@dataclass(frozen=True)
class _DecompositionTotals:
    """Integer masses every density/operation metric derives from.

    Collected in ONE pass over the tiles (see
    :func:`_decomposition_totals`) — the per-property loops of
    :class:`~repro.core.sparsity.MatrixDecomposition` recompute these
    sums per access, which dominates the metric cost on many-tile
    layers.  Positive/negative correction counts come from the exact
    identities ``pos = (nnz + signed) / 2`` and ``neg = (nnz - signed)
    / 2`` (Level 2 values are in {-1, 0, +1}), so no ``== 1`` / ``== -1``
    temporaries are materialised.
    """

    elements: int
    ones: int
    rows: int
    assigned: int
    pattern_bit_mass: int
    level2_nonzeros: int
    level2_positive: int
    level2_negative: int


def _decomposition_totals(decomposition: MatrixDecomposition) -> _DecompositionTotals:
    elements = ones = rows = assigned = pattern_mass = nnz = signed = 0
    for tile in decomposition.tiles:
        elements += tile.original.size
        ones += int(np.count_nonzero(tile.original))
        rows += tile.num_rows
        used = tile.pattern_indices[tile.pattern_indices != NO_PATTERN]
        assigned += used.size
        if used.size:
            popcounts = tile.patterns.matrix.sum(axis=1)
            pattern_mass += int(popcounts[used - 1].sum())
        nnz += int(np.count_nonzero(tile.level2))
        signed += int(tile.level2.sum(dtype=np.int64))
    return _DecompositionTotals(
        elements=elements,
        ones=ones,
        rows=rows,
        assigned=assigned,
        pattern_bit_mass=pattern_mass,
        level2_nonzeros=nnz,
        level2_positive=(nnz + signed) // 2,
        level2_negative=(nnz - signed) // 2,
    )


def sparsity_breakdown(decomposition: MatrixDecomposition) -> SparsityBreakdown:
    """Compute the Table-4-style density breakdown of a decomposition."""
    return decomposition_metrics(decomposition)[1]


@dataclass(frozen=True)
class OperationCounts:
    """Online operation counts of one layer under different schemes.

    One operation is an accumulation of a weight row of length ``n`` (the
    output-tile width): dense accelerators perform ``M * K`` of them,
    bit-sparse accelerators only for the '1' activations, and Phi only for
    Level 1 pattern lookups plus Level 2 corrections.
    """

    dense_ops: int
    bit_sparse_ops: int
    phi_level1_ops: int
    phi_level2_ops: int

    @property
    def phi_ops(self) -> int:
        """Total online Phi operations (Level 1 lookups + Level 2 ACs)."""
        return self.phi_level1_ops + self.phi_level2_ops

    @property
    def speedup_over_bit(self) -> float:
        """Theoretical speedup of Phi over bit sparsity (Table 4)."""
        if self.phi_ops == 0:
            return float("inf") if self.bit_sparse_ops > 0 else 1.0
        return self.bit_sparse_ops / self.phi_ops

    @property
    def speedup_over_dense(self) -> float:
        """Theoretical speedup of Phi over a dense accelerator (Table 4)."""
        if self.phi_ops == 0:
            return float("inf") if self.dense_ops > 0 else 1.0
        return self.dense_ops / self.phi_ops

    def __add__(self, other: "OperationCounts") -> "OperationCounts":
        return OperationCounts(
            dense_ops=self.dense_ops + other.dense_ops,
            bit_sparse_ops=self.bit_sparse_ops + other.bit_sparse_ops,
            phi_level1_ops=self.phi_level1_ops + other.phi_level1_ops,
            phi_level2_ops=self.phi_level2_ops + other.phi_level2_ops,
        )


def operation_counts(decomposition: MatrixDecomposition) -> OperationCounts:
    """Count online accumulation operations for a decomposed matrix.

    Dense operation count is ``M * K`` vector accumulations; bit-sparse
    count is the number of '1' activation bits; Phi counts one vector
    accumulation per assigned pattern (the PWP lookup) plus one per Level 2
    correction element.
    """
    return decomposition_metrics(decomposition)[0]


def decomposition_metrics(
    decomposition: MatrixDecomposition,
) -> tuple[OperationCounts, SparsityBreakdown]:
    """Operation counts and density breakdown from ONE tile pass.

    The two metric families share every underlying integer mass, so
    callers that need both (the engine's decomposition records) should
    use this instead of calling :func:`operation_counts` and
    :func:`sparsity_breakdown` separately and paying the pass twice.
    """
    totals = _decomposition_totals(decomposition)
    counts = OperationCounts(
        dense_ops=totals.elements,
        bit_sparse_ops=totals.ones,
        phi_level1_ops=totals.assigned,
        phi_level2_ops=totals.level2_nonzeros,
    )
    if totals.elements == 0:
        return counts, SparsityBreakdown(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return counts, SparsityBreakdown(
        bit_density=totals.ones / totals.elements,
        level1_density=totals.pattern_bit_mass / totals.elements,
        level1_vector_density=totals.assigned / totals.rows,
        level2_density=totals.level2_nonzeros / totals.elements,
        level2_positive_density=totals.level2_positive / totals.elements,
        level2_negative_density=totals.level2_negative / totals.elements,
    )


def aggregate_operation_counts(counts: Iterable[OperationCounts]) -> OperationCounts:
    """Sum operation counts over multiple layers."""
    total = OperationCounts(0, 0, 0, 0)
    for item in counts:
        total = total + item
    return total


def aggregate_breakdowns(
    breakdowns: Iterable[tuple[SparsityBreakdown, int]]
) -> SparsityBreakdown:
    """Weighted average of per-layer breakdowns.

    Parameters
    ----------
    breakdowns:
        Iterable of ``(breakdown, element_count)`` pairs; densities are
        averaged weighted by each layer's element count.
    """
    pairs = list(breakdowns)
    total = sum(weight for _, weight in pairs)
    if total == 0:
        return SparsityBreakdown(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    def weighted(attr: str) -> float:
        return sum(getattr(b, attr) * w for b, w in pairs) / total

    return SparsityBreakdown(
        bit_density=weighted("bit_density"),
        level1_density=weighted("level1_density"),
        level1_vector_density=weighted("level1_vector_density"),
        level2_density=weighted("level2_density"),
        level2_positive_density=weighted("level2_positive_density"),
        level2_negative_density=weighted("level2_negative_density"),
    )


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean used for the "Geomean" columns of Fig. 8."""
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        raise ValueError("geometric_mean requires at least one value")
    if np.any(data <= 0):
        raise ValueError("geometric_mean requires strictly positive values")
    return float(np.exp(np.log(data).mean()))
