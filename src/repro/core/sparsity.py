"""Phi sparsity decomposition (Level 1 vector sparsity + Level 2 element sparsity).

Given a binary activation matrix ``A`` of shape ``(M, K)`` and a calibrated
pattern set per K-partition, Phi decomposes each partition (tile) as

    A_tile = L1_tile + L2_tile

where every row of ``L1_tile`` is either a calibrated pattern or all zeros
(vector-wise sparsity), and ``L2_tile`` holds {+1, -1} corrections only at
the positions where the chosen pattern mismatches the activation row
(element-wise sparsity).  The decomposition is exact: summing the two
levels always reproduces the original activation tile (Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .patterns import NO_PATTERN, PatternSet, is_binary_matrix


@dataclass(frozen=True)
class TileDecomposition:
    """Phi decomposition of a single (M x k) activation partition.

    Attributes
    ----------
    pattern_indices:
        1-D integer array of length ``M``.  Entry ``i`` is the 1-based
        index of the pattern assigned to row ``i``, or ``0`` when no
        pattern is assigned (the row is carried entirely by Level 2).
    level2:
        ``(M, k)`` int8 matrix with values in {-1, 0, +1}: the bidirectional
        correction terms.
    patterns:
        The :class:`PatternSet` used for the decomposition.
    original:
        The original ``(M, k)`` binary activation tile (kept for metrics
        and verification).
    """

    pattern_indices: np.ndarray
    level2: np.ndarray
    patterns: PatternSet
    original: np.ndarray

    @property
    def num_rows(self) -> int:
        """Number of activation rows M in the tile."""
        return int(self.original.shape[0])

    @property
    def width(self) -> int:
        """Partition width k."""
        return int(self.original.shape[1])

    def row_slice(self, start: int, stop: int) -> "TileDecomposition":
        """The decomposition restricted to rows ``[start, stop)``.

        Rows are decomposed independently (the best pattern of a row does
        not depend on other rows), so slicing an existing decomposition is
        exactly equivalent to decomposing the row slice from scratch.  The
        simulator uses this to hand per-M-tile views of the layer-level
        decomposition to the preprocessor instead of re-matching.
        """
        return TileDecomposition(
            pattern_indices=self.pattern_indices[start:stop],
            level2=self.level2[start:stop],
            patterns=self.patterns,
            original=self.original[start:stop],
        )

    def level1_matrix(self) -> np.ndarray:
        """Materialise the Level 1 matrix (each row a pattern or zeros)."""
        out = np.zeros_like(self.original, dtype=np.int8)
        for i, idx in enumerate(self.pattern_indices):
            if idx != NO_PATTERN:
                out[i] = self.patterns.bits_of(int(idx))
        return out

    def reconstruct(self) -> np.ndarray:
        """Reconstruct the original activation tile from L1 + L2."""
        return (self.level1_matrix().astype(np.int16) + self.level2.astype(np.int16)).astype(
            np.int8
        )

    # ------------------------------------------------------------------ #
    # Density metrics (used throughout the evaluation section)
    # ------------------------------------------------------------------ #
    @property
    def bit_density(self) -> float:
        """Fraction of 1 bits in the original activation tile."""
        return float(self.original.mean()) if self.original.size else 0.0

    @property
    def level1_density(self) -> float:
        """Fraction of rows assigned a pattern (vector density)."""
        if self.num_rows == 0:
            return 0.0
        return float(np.count_nonzero(self.pattern_indices != NO_PATTERN) / self.num_rows)

    @property
    def level2_density(self) -> float:
        """Fraction of nonzero elements in the Level 2 matrix."""
        if self.level2.size == 0:
            return 0.0
        return float(np.count_nonzero(self.level2) / self.level2.size)

    @property
    def level2_positive_density(self) -> float:
        """Fraction of +1 correction elements."""
        if self.level2.size == 0:
            return 0.0
        return float(np.count_nonzero(self.level2 == 1) / self.level2.size)

    @property
    def level2_negative_density(self) -> float:
        """Fraction of -1 correction elements."""
        if self.level2.size == 0:
            return 0.0
        return float(np.count_nonzero(self.level2 == -1) / self.level2.size)

    def level2_nonzeros_per_row(self) -> np.ndarray:
        """Number of {+1,-1} corrections in each row."""
        return np.count_nonzero(self.level2, axis=1)

    def compute_output(self, weight_tile: np.ndarray, pwps: np.ndarray | None = None) -> np.ndarray:
        """Compute ``A_tile @ weight_tile`` via the Phi decomposition.

        Parameters
        ----------
        weight_tile:
            ``(k, n)`` weight partition.
        pwps:
            Optional precomputed pattern-weight products of shape
            ``(q + 1, n)``; computed on the fly when omitted.

        Returns
        -------
        numpy.ndarray
            ``(M, n)`` partial output of this partition.
        """
        weight_tile = np.asarray(weight_tile, dtype=np.float64)
        if pwps is None:
            pwps = self.patterns.compute_pwps(weight_tile)
        level1_out = pwps[self.pattern_indices]
        level2_out = self.level2.astype(np.float64) @ weight_tile
        return level1_out + level2_out


def decompose_tile(tile: np.ndarray, patterns: PatternSet) -> TileDecomposition:
    """Decompose one binary activation tile against a pattern set.

    For every row the best-matching pattern (minimum Hamming distance) is
    selected.  If even the best pattern needs more corrections than the
    row's own popcount (i.e. the achievable Level 2 sparsity would be lower
    than the original bit sparsity), no pattern is assigned and the row is
    carried verbatim in the Level 2 matrix.
    """
    tile = np.asarray(tile)
    if tile.ndim != 2:
        raise ValueError(f"tile must be 2-D, got shape {tile.shape}")
    if not is_binary_matrix(tile):
        raise ValueError("tile must be a binary 0/1 matrix")
    tile = tile.astype(np.uint8, copy=False)
    if tile.shape[1] != patterns.width:
        raise ValueError(
            f"tile width {tile.shape[1]} does not match pattern width {patterns.width}"
        )

    num_rows = tile.shape[0]
    pattern_indices = np.zeros(num_rows, dtype=np.int32)
    level2 = np.zeros(tile.shape, dtype=np.int8)

    if num_rows == 0:
        return TileDecomposition(pattern_indices, level2, patterns, tile)

    distances = patterns.match_counts(tile)  # (M, q) Hamming distances
    best_pattern = distances.argmin(axis=1)  # 0-based
    best_distance = distances[np.arange(num_rows), best_pattern]
    popcounts = tile.sum(axis=1).astype(np.int64)

    # Assign a pattern only when it strictly reduces the number of runtime
    # corrections compared to the plain bit-sparse row.
    use_pattern = best_distance < popcounts

    pattern_indices[use_pattern] = best_pattern[use_pattern].astype(np.int32) + 1

    pattern_matrix = patterns.matrix.astype(np.int16)
    assigned = pattern_matrix[best_pattern[use_pattern]]
    level2_assigned = tile[use_pattern].astype(np.int16) - assigned
    level2[use_pattern] = level2_assigned.astype(np.int8)
    # Rows without a pattern fall back to their original bit-sparse form.
    level2[~use_pattern] = tile[~use_pattern].astype(np.int8)

    return TileDecomposition(
        pattern_indices=pattern_indices,
        level2=level2,
        patterns=patterns,
        original=tile,
    )


def rebuild_tile(
    tile: np.ndarray, patterns: PatternSet, pattern_indices: np.ndarray
) -> TileDecomposition:
    """Reconstruct a tile decomposition from stored pattern assignments.

    The Level 2 matrix is a deterministic function of the tile, the
    pattern set and the per-row assignments, so persisting only the
    assignments (see ``repro.runner.store``) and rebuilding here yields
    the bit-exact :func:`decompose_tile` result at a fraction of its cost
    (no Hamming matching).
    """
    # No-copy when the caller already holds uint8 (workload activations
    # are, including memmap-backed store views) — the rebuild only reads.
    tile = np.asarray(tile, dtype=np.uint8)
    indices = np.asarray(pattern_indices, dtype=np.int32)
    if indices.shape != (tile.shape[0],):
        raise ValueError(
            f"pattern_indices must have shape ({tile.shape[0]},), got {indices.shape}"
        )
    # One gather instead of boolean-masked scatters: row 0 of the padded
    # pattern table is all-zero, so unassigned rows (``NO_PATTERN`` == 0)
    # subtract nothing and keep their bit-sparse form — bit-exact with
    # the per-mask formulation, at a fraction of its indexing cost.
    padded = np.zeros((patterns.matrix.shape[0] + 1, tile.shape[1]), dtype=np.int16)
    padded[1:] = patterns.matrix
    level2 = (tile.astype(np.int16) - padded[indices]).astype(np.int8)
    return TileDecomposition(
        pattern_indices=indices, level2=level2, patterns=patterns, original=tile
    )


def rebuild_decomposition(
    activations: np.ndarray,
    pattern_sets: Sequence[PatternSet],
    partition_size: int,
    pattern_index_matrix: np.ndarray,
) -> MatrixDecomposition:
    """Reconstruct a full matrix decomposition from stored assignments.

    Parameters
    ----------
    activations:
        Binary matrix of shape ``(M, K)`` (the workload's layer input).
    pattern_sets:
        One :class:`PatternSet` per K partition, as used originally.
    partition_size:
        Partition width ``k`` used during calibration.
    pattern_index_matrix:
        The ``(M, num_partitions)`` assignment matrix produced by
        :meth:`MatrixDecomposition.pattern_index_matrix`.

    Returns
    -------
    MatrixDecomposition
        Bit-exact equal to ``decompose_matrix(activations, pattern_sets,
        partition_size)``.
    """
    activations = np.asarray(activations)
    boundaries = partition_boundaries(activations.shape[1], partition_size)
    if len(pattern_sets) != len(boundaries):
        raise ValueError(
            f"expected {len(boundaries)} pattern sets, got {len(pattern_sets)}"
        )
    indices = np.asarray(pattern_index_matrix)
    tiles = tuple(
        rebuild_tile(activations[:, start:stop], pattern_set, indices[:, p])
        for p, (pattern_set, (start, stop)) in enumerate(zip(pattern_sets, boundaries))
    )
    return MatrixDecomposition(tiles=tiles, boundaries=tuple(boundaries))


def partition_boundaries(total_width: int, partition_size: int) -> list[tuple[int, int]]:
    """Return the ``[start, stop)`` column ranges of each K partition.

    The final partition may be narrower than ``partition_size`` when the
    total width is not an exact multiple.
    """
    if total_width < 1:
        raise ValueError("total_width must be >= 1")
    if partition_size < 1:
        raise ValueError("partition_size must be >= 1")
    bounds = []
    start = 0
    while start < total_width:
        stop = min(start + partition_size, total_width)
        bounds.append((start, stop))
        start = stop
    return bounds


@dataclass(frozen=True)
class MatrixDecomposition:
    """Phi decomposition of a full (M x K) binary activation matrix.

    Attributes
    ----------
    tiles:
        One :class:`TileDecomposition` per K partition, in column order.
    boundaries:
        The column ranges covered by each tile.
    """

    tiles: tuple[TileDecomposition, ...]
    boundaries: tuple[tuple[int, int], ...]

    @property
    def num_rows(self) -> int:
        """Number of activation rows M."""
        return self.tiles[0].num_rows if self.tiles else 0

    @property
    def total_width(self) -> int:
        """Total reduction width K."""
        return self.boundaries[-1][1] if self.boundaries else 0

    @property
    def num_partitions(self) -> int:
        """Number of K partitions."""
        return len(self.tiles)

    def reconstruct(self) -> np.ndarray:
        """Reconstruct the full binary activation matrix."""
        out = np.zeros((self.num_rows, self.total_width), dtype=np.int8)
        for tile, (start, stop) in zip(self.tiles, self.boundaries):
            out[:, start:stop] = tile.reconstruct()
        return out

    def pattern_index_matrix(self) -> np.ndarray:
        """The (M x num_partitions) matrix of assigned pattern indices."""
        if not self.tiles:
            return np.zeros((0, 0), dtype=np.int32)
        return np.stack([tile.pattern_indices for tile in self.tiles], axis=1)

    # ------------------------------------------------------------------ #
    # Aggregate density metrics
    # ------------------------------------------------------------------ #
    @property
    def bit_density(self) -> float:
        """Fraction of 1 bits in the original activation matrix."""
        total = sum(t.original.size for t in self.tiles)
        if total == 0:
            return 0.0
        ones = sum(int(t.original.sum()) for t in self.tiles)
        return ones / total

    @property
    def level1_density(self) -> float:
        """Fraction of (row, partition) entries that carry a pattern."""
        total = sum(t.num_rows for t in self.tiles)
        if total == 0:
            return 0.0
        assigned = sum(
            int(np.count_nonzero(t.pattern_indices != NO_PATTERN)) for t in self.tiles
        )
        return assigned / total

    @property
    def level2_density(self) -> float:
        """Fraction of nonzero correction elements across all tiles."""
        total = sum(t.level2.size for t in self.tiles)
        if total == 0:
            return 0.0
        nnz = sum(int(np.count_nonzero(t.level2)) for t in self.tiles)
        return nnz / total

    @property
    def level2_positive_density(self) -> float:
        """Fraction of +1 corrections across all tiles."""
        total = sum(t.level2.size for t in self.tiles)
        if total == 0:
            return 0.0
        nnz = sum(int(np.count_nonzero(t.level2 == 1)) for t in self.tiles)
        return nnz / total

    @property
    def level2_negative_density(self) -> float:
        """Fraction of -1 corrections across all tiles."""
        total = sum(t.level2.size for t in self.tiles)
        if total == 0:
            return 0.0
        nnz = sum(int(np.count_nonzero(t.level2 == -1)) for t in self.tiles)
        return nnz / total

    def compute_output(self, weights: np.ndarray) -> np.ndarray:
        """Compute ``A @ weights`` using the Phi decomposition tile by tile."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape[0] != self.total_width:
            raise ValueError(
                f"weights must have {self.total_width} rows, got {weights.shape[0]}"
            )
        output = np.zeros((self.num_rows, weights.shape[1]), dtype=np.float64)
        for tile, (start, stop) in zip(self.tiles, self.boundaries):
            output += tile.compute_output(weights[start:stop])
        return output


def decompose_matrix(
    activations: np.ndarray,
    pattern_sets: Sequence[PatternSet],
    partition_size: int,
) -> MatrixDecomposition:
    """Decompose a full binary activation matrix into Phi sparsity.

    Parameters
    ----------
    activations:
        Binary matrix of shape ``(M, K)``.
    pattern_sets:
        One :class:`PatternSet` per K partition (in column order).
    partition_size:
        Partition width ``k`` used during calibration.
    """
    activations = np.asarray(activations)
    if activations.ndim != 2:
        raise ValueError("activations must be 2-D")
    boundaries = partition_boundaries(activations.shape[1], partition_size)
    if len(pattern_sets) != len(boundaries):
        raise ValueError(
            f"expected {len(boundaries)} pattern sets for K={activations.shape[1]} "
            f"and k={partition_size}, got {len(pattern_sets)}"
        )
    tiles = []
    for pattern_set, (start, stop) in zip(pattern_sets, boundaries):
        tiles.append(decompose_tile(activations[:, start:stop], pattern_set))
    return MatrixDecomposition(tiles=tuple(tiles), boundaries=tuple(boundaries))
