"""Binary k-means clustering with Hamming distance (Algorithm 1).

The Phi calibration stage clusters the binary activation rows of each
partition and uses the (rounded) cluster centres as the partition's
patterns.  Hamming distance between a row and its centre equals the number
of correction elements the row would need in the Level 2 matrix, so
minimising the within-cluster Hamming distance directly maximises Level 2
sparsity (Section 3.2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import KMeansConfig
from .patterns import PatternSet


@dataclass(frozen=True)
class ClusteringResult:
    """Outcome of the binary k-means clustering.

    Attributes
    ----------
    centers:
        Binary matrix of shape ``(q, k)`` holding the rounded cluster
        centres (the calibrated patterns).
    assignments:
        For each input row the index (0-based) of its cluster centre.
    inertia:
        Total Hamming distance between rows and their assigned centres.
    iterations:
        Number of Lloyd iterations performed.
    """

    centers: np.ndarray
    assignments: np.ndarray
    inertia: int
    iterations: int

    @property
    def pattern_set(self) -> PatternSet:
        """The cluster centres wrapped as a :class:`PatternSet`."""
        return PatternSet(self.centers)


def hamming_distance_matrix(rows: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Pairwise Hamming distances between binary ``rows`` and ``centers``.

    Parameters
    ----------
    rows:
        Binary matrix of shape ``(n, k)``.
    centers:
        Binary matrix of shape ``(q, k)``.

    Returns
    -------
    numpy.ndarray
        Integer matrix of shape ``(n, q)``.
    """
    rows = np.asarray(rows, dtype=np.uint8)
    centers = np.asarray(centers, dtype=np.uint8)
    if rows.ndim != 2 or centers.ndim != 2:
        raise ValueError("rows and centers must both be 2-D")
    if rows.shape[1] != centers.shape[1]:
        raise ValueError(
            f"width mismatch: rows have {rows.shape[1]} bits, centers have "
            f"{centers.shape[1]}"
        )
    # For binary data, Hamming distance decomposes into a dot-product form:
    # H(x, c) = sum(x) + sum(c) - 2 * x.c  which avoids materialising the
    # (n, q, k) broadcast tensor for large calibration sets.  The GEMM runs
    # in float64 so it dispatches to BLAS; every intermediate is a small
    # integer (bounded by the partition width), hence exactly representable
    # and the int64 conversion is lossless.
    rows_f = rows.astype(np.float64)
    centers_f = centers.astype(np.float64)
    cross = rows_f @ centers_f.T
    row_pop = rows_f.sum(axis=1, keepdims=True)
    center_pop = centers_f.sum(axis=1, keepdims=True).T
    return (row_pop + center_pop - 2 * cross).astype(np.int64)


def unique_binary_rows(rows: np.ndarray) -> np.ndarray:
    """Sorted unique rows of a binary matrix (fast ``np.unique(axis=0)``).

    Bit-packing each row into big-endian bytes preserves lexicographic
    row order exactly (the first differing bit decides the comparison in
    both representations, and the zero padding bits can only tie), so a
    1-D unique over the packed bytes followed by unpacking returns the
    byte-for-byte identical result of ``np.unique(rows, axis=0)`` while
    sorting 8x fewer elements.
    """
    rows = np.asarray(rows, dtype=np.uint8)
    if rows.ndim != 2:
        raise ValueError("rows must be 2-D")
    if rows.shape[0] == 0 or rows.shape[1] == 0:
        return np.unique(rows, axis=0)
    packed = np.packbits(rows, axis=1)
    as_void = packed.view(np.dtype((np.void, packed.shape[1]))).ravel()
    unique_packed = np.unique(as_void).view(np.uint8).reshape(-1, packed.shape[1])
    return np.unpackbits(unique_packed, axis=1, count=rows.shape[1])


def filter_calibration_rows(
    rows: np.ndarray,
    *,
    filter_all_zero: bool = True,
    filter_one_hot: bool = True,
) -> np.ndarray:
    """Remove rows that are pointless to cluster (Algorithm 1, step 2).

    All-zero rows require no computation at all, and one-hot rows cannot
    profit from a pattern because the PWP of a one-hot pattern is just a row
    of the weight matrix.
    """
    rows = np.asarray(rows, dtype=np.uint8)
    if rows.ndim != 2:
        raise ValueError("rows must be 2-D")
    popcounts = rows.sum(axis=1)
    keep = np.ones(rows.shape[0], dtype=bool)
    if filter_all_zero:
        keep &= popcounts != 0
    if filter_one_hot:
        keep &= popcounts != 1
    return rows[keep]


def _init_centers(
    rows: np.ndarray,
    q: int,
    rng: np.random.Generator,
    unique_rows: np.ndarray | None = None,
) -> np.ndarray:
    """Initialise ``q`` centres from distinct rows where possible."""
    if unique_rows is None:
        unique_rows = unique_binary_rows(rows)
    if unique_rows.shape[0] >= q:
        idx = rng.choice(unique_rows.shape[0], size=q, replace=False)
        return unique_rows[idx].copy()
    # Fewer unique rows than requested centres: take every unique row and
    # pad with random binary vectors so the shape contract holds.
    extra = q - unique_rows.shape[0]
    random_bits = (rng.random((extra, rows.shape[1])) < 0.5).astype(np.uint8)
    return np.vstack([unique_rows, random_bits])


def binary_kmeans(
    rows: np.ndarray,
    num_clusters: int,
    config: KMeansConfig | None = None,
    *,
    unique_rows: np.ndarray | None = None,
) -> ClusteringResult:
    """Cluster binary rows with Hamming-distance k-means (Algorithm 1).

    Parameters
    ----------
    rows:
        Binary matrix of shape ``(n, k)`` with the calibration rows
        (already filtered of all-zero / one-hot rows by the caller).
    num_clusters:
        Number of clusters ``q`` to produce.
    config:
        Clustering hyper-parameters; defaults to :class:`KMeansConfig`.
    unique_rows:
        Optional precomputed ``unique_binary_rows(rows)``; callers that
        already deduplicated the rows pass it so centre initialisation
        does not repeat the work.

    Returns
    -------
    ClusteringResult
        Centres rounded to {0, 1}, per-row assignments, final inertia and
        iteration count.
    """
    config = config or KMeansConfig()
    rows = np.asarray(rows, dtype=np.uint8)
    if rows.ndim != 2:
        raise ValueError("rows must be a 2-D binary matrix")
    if rows.shape[0] == 0:
        raise ValueError("cannot cluster an empty set of rows")
    if num_clusters < 1:
        raise ValueError("num_clusters must be >= 1")

    rng = np.random.default_rng(config.seed)
    centers = _init_centers(rows, num_clusters, rng, unique_rows)
    assignments = np.zeros(rows.shape[0], dtype=np.int64)
    n_rows = rows.shape[0]
    num_cols = rows.shape[1]
    iterations = 0

    # The row side of every distance computation and centre update is
    # loop-invariant: hoist the float operands of the Hamming GEMM (see
    # hamming_distance_matrix for why float64 is exact here) and the
    # nonzero coordinates driving the per-cluster bit sums.
    rows_f = rows.astype(np.float64)
    row_pop = rows_f.sum(axis=1, keepdims=True)
    nonzero_rows, nonzero_cols = np.nonzero(rows)

    def distances_to(current_centers: np.ndarray) -> np.ndarray:
        centers_f = current_centers.astype(np.float64)
        cross = rows_f @ centers_f.T
        center_pop = centers_f.sum(axis=1, keepdims=True).T
        return (row_pop + center_pop - 2 * cross).astype(np.int64)

    for iteration in range(config.max_iterations):
        iterations = iteration + 1
        distances = distances_to(centers)
        new_assignments = distances.argmin(axis=1)

        changed = int(np.count_nonzero(new_assignments != assignments))
        assignments = new_assignments

        # Update each centre as the rounded mean of its members, in one
        # pass: per-cluster bit sums via bincount over the (cluster,
        # column) pairs of every 1 bit, then the exact integer form of
        # the >= 0.5 rounding (2 * sum >= count).
        new_centers = centers.copy()
        counts = np.bincount(assignments, minlength=num_clusters)
        sums = np.bincount(
            assignments[nonzero_rows] * num_cols + nonzero_cols,
            minlength=num_clusters * num_cols,
        ).reshape(num_clusters, num_cols)
        occupied = counts > 0
        new_centers[occupied] = (
            2 * sums[occupied] >= counts[occupied, None]
        ).astype(np.uint8)
        empty = np.flatnonzero(~occupied)
        if empty.size and config.empty_cluster_strategy == "reseed":
            # Reseed with the row farthest from its current centre (all
            # empty clusters receive the same farthest row, as before).
            row_dist = distances[np.arange(n_rows), assignments]
            farthest = int(row_dist.argmax())
            new_centers[empty] = rows[farthest]

        converged = np.array_equal(new_centers, centers) and changed == 0
        centers = new_centers
        if converged or (iteration > 0 and changed <= config.tolerance * n_rows):
            break

    distances = distances_to(centers)
    assignments = distances.argmin(axis=1)
    inertia = int(distances[np.arange(n_rows), assignments].sum())
    return ClusteringResult(
        centers=centers.astype(np.uint8),
        assignments=assignments,
        inertia=inertia,
        iterations=iterations,
    )


def cluster_partition(
    rows: np.ndarray,
    num_patterns: int,
    *,
    config: KMeansConfig | None = None,
    filter_all_zero: bool = True,
    filter_one_hot: bool = True,
) -> PatternSet:
    """Produce the pattern set of one partition from its calibration rows.

    This is the complete Algorithm 1 pipeline: filter degenerate rows, run
    binary k-means, and wrap the rounded centres as a :class:`PatternSet`.
    When fewer than ``num_patterns`` useful rows remain after filtering the
    pattern count is reduced accordingly (deduplicated unique rows are used
    directly as patterns).
    """
    rows = np.asarray(rows, dtype=np.uint8)
    filtered = filter_calibration_rows(
        rows, filter_all_zero=filter_all_zero, filter_one_hot=filter_one_hot
    )
    if filtered.shape[0] == 0:
        # Degenerate partition: nothing worth a pattern.  Return a single
        # all-ones pattern so downstream code still has a valid set; the
        # decomposer will simply never pick it if it does not help.
        width = rows.shape[1] if rows.ndim == 2 else 1
        return PatternSet(np.ones((1, width), dtype=np.uint8))

    unique_rows = unique_binary_rows(filtered)
    if unique_rows.shape[0] <= num_patterns:
        return PatternSet(unique_rows)

    result = binary_kmeans(filtered, num_patterns, config, unique_rows=unique_rows)
    # Deduplicate rounded centres; duplicates waste pattern slots.
    centers = unique_binary_rows(result.centers)
    return PatternSet(centers)
