"""Pattern-Aware Fine-Tuning (PAFT).

PAFT (Section 3.3) fine-tunes a trained SNN with an extra regularisation
term that penalises the Hamming distance between every activation row and
its assigned pattern, weighted by the output width ``N`` of the layer so
the penalty is proportional to the computational cost of the Level 2
corrections it would create:

    R = sum_layers N_l * sum_rows sum_partitions H(act_row, pattern)
    Loss = Loss_original + lambda * R

This module provides three things:

* :func:`paft_regularizer` — the exact regularisation value for a set of
  recorded activations (used as a training signal and as a metric),
* :func:`paft_regularizer_gradient` — a surrogate gradient of the
  regulariser with respect to the *pre-spike membrane potential*, suitable
  for the NumPy training loop in :mod:`repro.snn.training`, and
* :class:`ActivationAligner` — a lightweight statistical model of PAFT's
  effect that nudges recorded activations towards their assigned patterns
  with a controllable strength.  The experiment harness uses it when a full
  fine-tuning run would be prohibitively slow, preserving the qualitative
  effect reported in Fig. 9/10 (denser clusters, lower Level 2 density,
  small accuracy cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from .calibration import LayerCalibration, ModelCalibration
from .patterns import NO_PATTERN
from .sparsity import decompose_matrix


@dataclass(frozen=True)
class PAFTConfig:
    """Hyper-parameters of pattern-aware fine-tuning.

    Attributes
    ----------
    lam:
        Balancing weight ``lambda`` of the regularisation term.  The paper
        searches 0.01 .. 1.
    learning_rate:
        Fine-tuning learning rate (paper searches 1e-5 .. 1e-3).
    epochs:
        Number of fine-tuning epochs (the paper uses about 5).
    """

    lam: float = 0.1
    learning_rate: float = 1e-4
    epochs: int = 5

    def __post_init__(self) -> None:
        if self.lam < 0:
            raise ValueError("lam must be non-negative")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")


def layer_regularizer(
    activations: np.ndarray,
    calibration: LayerCalibration,
    output_width: int,
) -> float:
    """PAFT regulariser of one layer: ``N_l * sum of Hamming distances``.

    The Hamming distance of a row towards its assigned pattern equals the
    number of nonzeros that row contributes to the Level 2 matrix, so the
    regulariser is exactly ``N_l`` times the Level 2 nonzero count.
    """
    if output_width < 1:
        raise ValueError("output_width must be >= 1")
    decomposition = calibration.decompose(activations)
    nnz = sum(int(np.count_nonzero(t.level2)) for t in decomposition.tiles)
    return float(output_width * nnz)


def paft_regularizer(
    layer_activations: Mapping[str, np.ndarray],
    model_calibration: ModelCalibration,
    output_widths: Mapping[str, int],
) -> float:
    """Total PAFT regulariser across all calibrated layers."""
    total = 0.0
    for layer_name, activations in layer_activations.items():
        if layer_name not in model_calibration:
            continue
        total += layer_regularizer(
            activations,
            model_calibration[layer_name],
            output_widths[layer_name],
        )
    return total


def paft_regularizer_gradient(
    activations: np.ndarray,
    calibration: LayerCalibration,
    output_width: int,
) -> np.ndarray:
    """Surrogate gradient of the regulariser w.r.t. the membrane potential.

    Spikes are produced by a hard threshold, so the true gradient of the
    Hamming distance is zero almost everywhere.  Following the standard
    surrogate-gradient practice we pass the sign of the mismatch through:
    a +1 correction (activation is 1 but pattern is 0) should push the
    membrane potential *down*, a -1 correction should push it *up*.  The
    returned array therefore has the same shape as ``activations`` and
    holds ``output_width * sign(mismatch)`` values; the training loop
    multiplies it by the spike surrogate derivative.
    """
    decomposition = calibration.decompose(activations)
    gradient = np.zeros(activations.shape, dtype=np.float64)
    for tile, (start, stop) in zip(decomposition.tiles, decomposition.boundaries):
        assigned = tile.pattern_indices != NO_PATTERN
        # Only rows with a pattern feel the alignment pressure; unassigned
        # rows keep their plain bit-sparse representation.
        tile_grad = np.zeros(tile.level2.shape, dtype=np.float64)
        tile_grad[assigned] = tile.level2[assigned].astype(np.float64)
        gradient[:, start:stop] = output_width * tile_grad
    return gradient


class ActivationAligner:
    """Statistical model of PAFT's effect on recorded activations.

    Fine-tuning with the PAFT regulariser makes activation rows agree with
    their assigned patterns at a larger fraction of bit positions.  The
    aligner reproduces that effect directly on recorded activations: with
    probability ``alignment_strength`` each mismatching bit is flipped to
    agree with the assigned pattern.  Rows without an assigned pattern are
    left untouched, exactly as PAFT exerts no pressure on them.

    Parameters
    ----------
    alignment_strength:
        Probability of fixing each mismatching bit, in [0, 1].  The paper's
        reported post-PAFT densities correspond to a strength of roughly
        0.4-0.6 depending on the model.
    seed:
        Seed of the internal random generator.
    """

    def __init__(self, alignment_strength: float = 0.5, seed: int = 0) -> None:
        if not 0.0 <= alignment_strength <= 1.0:
            raise ValueError("alignment_strength must be in [0, 1]")
        self.alignment_strength = alignment_strength
        self._rng = np.random.default_rng(seed)

    def align_layer(
        self, activations: np.ndarray, calibration: LayerCalibration
    ) -> np.ndarray:
        """Return activations nudged towards their assigned patterns."""
        activations = np.asarray(activations, dtype=np.uint8)
        decomposition = calibration.decompose(activations)
        aligned = activations.copy()
        for tile, (start, stop) in zip(decomposition.tiles, decomposition.boundaries):
            assigned = tile.pattern_indices != NO_PATTERN
            if not np.any(assigned):
                continue
            mismatches = tile.level2 != 0
            mismatches[~assigned] = False
            flip = mismatches & (
                self._rng.random(mismatches.shape) < self.alignment_strength
            )
            block = aligned[:, start:stop]
            # Flipping a mismatching bit makes it equal to the pattern bit.
            pattern_bits = np.zeros_like(block)
            for i, idx in enumerate(tile.pattern_indices):
                if idx != NO_PATTERN:
                    pattern_bits[i] = tile.patterns.bits_of(int(idx))
            block[flip] = pattern_bits[flip]
            aligned[:, start:stop] = block
        return aligned

    def align_model(
        self,
        layer_activations: Mapping[str, np.ndarray],
        model_calibration: ModelCalibration,
    ) -> dict[str, np.ndarray]:
        """Align every calibrated layer's activations."""
        aligned = {}
        for layer_name, activations in layer_activations.items():
            if layer_name in model_calibration:
                aligned[layer_name] = self.align_layer(
                    activations, model_calibration[layer_name]
                )
            else:
                aligned[layer_name] = np.asarray(activations, dtype=np.uint8).copy()
        return aligned

    def expected_accuracy_drop(self) -> float:
        """Small accuracy penalty modelled as proportional to the strength.

        Fig. 11 reports a minor accuracy decrease after PAFT; we model it
        as ``0.8 % * alignment_strength`` which matches the sub-1 % drops
        in the paper.
        """
        return 0.008 * self.alignment_strength
