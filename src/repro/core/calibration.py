"""Phi calibration stage: per-layer, per-partition pattern selection.

The calibration stage (Section 3.2) runs offline on a small subset of the
training data.  For every layer, the spike-activation matrix is partitioned
along the reduction (K) dimension, each partition's rows are clustered with
Hamming-distance k-means, and the rounded cluster centres become that
partition's pattern set.  Pattern-weight products (PWPs) are then
precomputed so runtime Level 1 processing reduces to table lookups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from .config import PhiConfig
from .kmeans import cluster_partition
from .patterns import PatternSet, is_binary_matrix
from .sparsity import MatrixDecomposition, decompose_matrix, partition_boundaries


@dataclass(frozen=True)
class LayerCalibration:
    """Calibrated patterns for a single layer.

    Attributes
    ----------
    layer_name:
        Identifier of the layer the patterns belong to.
    pattern_sets:
        One :class:`PatternSet` per K partition, in column order.
    partition_size:
        Partition width ``k`` used for the calibration.
    total_width:
        Reduction dimension ``K`` of the layer's activation matrix.
    """

    layer_name: str
    pattern_sets: tuple[PatternSet, ...]
    partition_size: int
    total_width: int

    @property
    def num_partitions(self) -> int:
        """Number of K partitions in this layer."""
        return len(self.pattern_sets)

    def decompose(self, activations: np.ndarray) -> MatrixDecomposition:
        """Decompose a binary activation matrix of this layer."""
        return decompose_matrix(activations, self.pattern_sets, self.partition_size)

    def compute_pwps(self, weights: np.ndarray) -> list[np.ndarray]:
        """Pattern-weight products for every partition.

        Parameters
        ----------
        weights:
            Weight matrix of shape ``(K, N)``.

        Returns
        -------
        list of numpy.ndarray
            Entry ``p`` is the ``(q_p + 1, N)`` PWP table of partition ``p``.
        """
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape[0] != self.total_width:
            raise ValueError(
                f"weights must have {self.total_width} rows, got {weights.shape[0]}"
            )
        bounds = partition_boundaries(self.total_width, self.partition_size)
        return [
            pattern_set.compute_pwps(weights[start:stop])
            for pattern_set, (start, stop) in zip(self.pattern_sets, bounds)
        ]

    def pattern_memory_bits(self) -> int:
        """Total on-chip storage of the pattern bits for this layer."""
        return sum(ps.memory_bits() for ps in self.pattern_sets)


@dataclass
class ModelCalibration:
    """Calibrated patterns of an entire model (one entry per layer)."""

    config: PhiConfig
    layers: dict[str, LayerCalibration] = field(default_factory=dict)

    def __contains__(self, layer_name: str) -> bool:
        return layer_name in self.layers

    def __getitem__(self, layer_name: str) -> LayerCalibration:
        return self.layers[layer_name]

    def layer_names(self) -> list[str]:
        """Names of all calibrated layers in insertion order."""
        return list(self.layers.keys())

    def add(self, calibration: LayerCalibration) -> None:
        """Register the calibration of a layer."""
        self.layers[calibration.layer_name] = calibration


class PhiCalibrator:
    """Run the Phi calibration workflow on recorded spike activations.

    Parameters
    ----------
    config:
        The :class:`PhiConfig` controlling partition size, pattern count,
        row filtering and the k-means hyper-parameters.
    """

    def __init__(self, config: PhiConfig | None = None) -> None:
        self.config = config or PhiConfig()

    def calibrate_layer(
        self,
        layer_name: str,
        activations: np.ndarray,
        *,
        rng: np.random.Generator | None = None,
    ) -> LayerCalibration:
        """Calibrate one layer from its binary activation samples.

        Parameters
        ----------
        layer_name:
            Identifier of the layer.
        activations:
            Binary matrix of shape ``(M, K)`` pooling activation rows from
            the calibration subset (rows from several inputs/time steps may
            simply be stacked).
        rng:
            Optional generator used to subsample calibration rows when more
            than ``config.calibration_samples`` are provided.
        """
        activations = np.asarray(activations)
        if activations.ndim != 2:
            raise ValueError("activations must be a 2-D binary matrix")
        if activations.shape[0] == 0 or activations.shape[1] == 0:
            raise ValueError("activations must be non-empty")
        if not is_binary_matrix(activations):
            raise ValueError("activations must contain only 0/1 values")
        activations = activations.astype(np.uint8)

        rng = rng or np.random.default_rng(self.config.kmeans.seed)
        if activations.shape[0] > self.config.calibration_samples:
            idx = rng.choice(
                activations.shape[0], size=self.config.calibration_samples, replace=False
            )
            activations = activations[idx]

        bounds = partition_boundaries(activations.shape[1], self.config.partition_size)
        pattern_sets = []
        for start, stop in bounds:
            pattern_sets.append(
                cluster_partition(
                    activations[:, start:stop],
                    self.config.num_patterns,
                    config=self.config.kmeans,
                    filter_all_zero=self.config.filter_all_zero,
                    filter_one_hot=self.config.filter_one_hot,
                )
            )
        return LayerCalibration(
            layer_name=layer_name,
            pattern_sets=tuple(pattern_sets),
            partition_size=self.config.partition_size,
            total_width=activations.shape[1],
        )

    def calibrate_model(
        self,
        layer_activations: Mapping[str, np.ndarray] | Iterable[tuple[str, np.ndarray]],
    ) -> ModelCalibration:
        """Calibrate every layer of a model.

        Parameters
        ----------
        layer_activations:
            Mapping (or iterable of pairs) from layer name to the binary
            activation matrix recorded on the calibration subset.
        """
        if isinstance(layer_activations, Mapping):
            items: Sequence[tuple[str, np.ndarray]] = list(layer_activations.items())
        else:
            items = list(layer_activations)

        model_calibration = ModelCalibration(config=self.config)
        for layer_name, activations in items:
            model_calibration.add(self.calibrate_layer(layer_name, activations))
        return model_calibration
