"""Pattern sets and pattern-weight products (PWPs).

A *pattern* is a binary row vector of length ``k`` (the partition width).
A :class:`PatternSet` stores the patterns calibrated for one partition of
one layer.  Pattern index ``0`` is reserved for "no pattern assigned"; real
patterns use indices ``1 .. q``.

Because patterns are fixed after calibration, their products with the
weight tile — the Pattern-Weight Products (PWPs) — can be computed offline
and merely looked up at inference time (Section 3.1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

#: Pattern index value meaning "no pattern assigned to this row".
NO_PATTERN = 0


def is_binary_matrix(arr: np.ndarray) -> bool:
    """Whether every element of ``arr`` is 0 or 1.

    Equivalent to checking the array's unique values against ``(0, 1)``
    but without the sort that implies: unsigned integer and boolean
    arrays only need a max check, everything else a single comparison
    pass.
    """
    if arr.dtype == np.bool_ or arr.dtype.kind == "u":
        return bool(arr.max(initial=0) <= 1)
    if arr.dtype.kind == "i":
        return bool(arr.size == 0 or (arr.max() <= 1 and arr.min() >= 0))
    return bool(((arr == 0) | (arr == 1)).all())


def _validate_binary(matrix: np.ndarray, name: str) -> np.ndarray:
    """Return ``matrix`` as a contiguous uint8 array, checking it is 0/1."""
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {arr.shape}")
    if not is_binary_matrix(arr):
        raise ValueError(f"{name} must contain only 0/1 values")
    return np.ascontiguousarray(arr, dtype=np.uint8)


@dataclass(frozen=True)
class Pattern:
    """A single binary pattern with its assigned index.

    Attributes
    ----------
    index:
        1-based pattern index (0 is reserved for "no pattern").
    bits:
        The binary row vector of the pattern, dtype ``uint8``.
    """

    index: int
    bits: np.ndarray

    def __post_init__(self) -> None:
        if self.index < 1:
            raise ValueError("pattern index must be >= 1 (0 is reserved)")
        bits = np.asarray(self.bits, dtype=np.uint8)
        if bits.ndim != 1:
            raise ValueError("pattern bits must be a 1-D vector")
        object.__setattr__(self, "bits", bits)

    @property
    def width(self) -> int:
        """Length of the pattern in bits."""
        return int(self.bits.shape[0])

    @property
    def popcount(self) -> int:
        """Number of 1-bits in the pattern."""
        return int(self.bits.sum())

    def hamming_distance(self, row: np.ndarray) -> int:
        """Hamming distance between this pattern and a binary ``row``."""
        row = np.asarray(row, dtype=np.uint8)
        if row.shape != self.bits.shape:
            raise ValueError(
                f"row shape {row.shape} does not match pattern width {self.width}"
            )
        return int(np.count_nonzero(row != self.bits))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return self.index == other.index and np.array_equal(self.bits, other.bits)

    def __hash__(self) -> int:
        return hash((self.index, self.bits.tobytes()))


class PatternSet:
    """The calibrated patterns of one partition.

    Parameters
    ----------
    patterns:
        Binary matrix of shape ``(q, k)``; row ``i`` holds the bits of the
        pattern with index ``i + 1``.
    """

    def __init__(self, patterns: np.ndarray) -> None:
        self._matrix = _validate_binary(patterns, "patterns")
        self._match_operands: tuple[np.ndarray, np.ndarray] | None = None

    @property
    def matrix(self) -> np.ndarray:
        """The ``(q, k)`` binary pattern matrix (read-only view)."""
        view = self._matrix.view()
        view.setflags(write=False)
        return view

    @property
    def num_patterns(self) -> int:
        """Number of patterns ``q`` in the set."""
        return int(self._matrix.shape[0])

    @property
    def width(self) -> int:
        """Partition width ``k``."""
        return int(self._matrix.shape[1])

    def __len__(self) -> int:
        return self.num_patterns

    def __iter__(self) -> Iterator[Pattern]:
        for i, bits in enumerate(self._matrix):
            yield Pattern(index=i + 1, bits=bits)

    def __getitem__(self, index: int) -> Pattern:
        """Return the pattern with 1-based ``index``."""
        if index < 1 or index > self.num_patterns:
            raise IndexError(
                f"pattern index {index} out of range 1..{self.num_patterns}"
            )
        return Pattern(index=index, bits=self._matrix[index - 1])

    def bits_of(self, index: int) -> np.ndarray:
        """Return the bit vector of the pattern with 1-based ``index``.

        Index 0 returns the all-zero row ("no pattern assigned").
        """
        if index == NO_PATTERN:
            return np.zeros(self.width, dtype=np.uint8)
        return self[index].bits

    def compute_pwps(self, weight_tile: np.ndarray) -> np.ndarray:
        """Compute the Pattern-Weight Products for a weight tile.

        Parameters
        ----------
        weight_tile:
            Array of shape ``(k, n)`` holding the weight rows of this
            partition.

        Returns
        -------
        numpy.ndarray
            Array of shape ``(q + 1, n)``.  Row 0 is all zeros (for the
            "no pattern" index); row ``i`` is ``patterns[i-1] @ weight_tile``.
        """
        weight_tile = np.asarray(weight_tile, dtype=np.float64)
        if weight_tile.ndim != 2 or weight_tile.shape[0] != self.width:
            raise ValueError(
                f"weight_tile must have shape ({self.width}, n), got "
                f"{weight_tile.shape}"
            )
        products = self._matrix.astype(np.float64) @ weight_tile
        zero_row = np.zeros((1, weight_tile.shape[1]), dtype=np.float64)
        return np.vstack([zero_row, products])

    def match_counts(self, rows: np.ndarray) -> np.ndarray:
        """Hamming distance of each row against each pattern.

        Parameters
        ----------
        rows:
            Binary matrix of shape ``(m, k)``.

        Returns
        -------
        numpy.ndarray
            Integer matrix of shape ``(m, q)`` where entry ``(i, j)`` is the
            Hamming distance between row ``i`` and pattern ``j + 1``.
        """
        rows = _validate_binary(rows, "rows")
        if rows.shape[1] != self.width:
            raise ValueError(
                f"rows width {rows.shape[1]} does not match pattern width "
                f"{self.width}"
            )
        # For binary vectors the Hamming distance has an exact dot-product
        # form, H(x, p) = |x| + |p| - 2 x.p, which runs as one BLAS GEMM
        # instead of materialising the (m, q, k) broadcast tensor.  All
        # intermediates are small integers (bounded by the pattern width),
        # exactly representable in float64, so the result is exact.
        if self._match_operands is None:
            patterns_f = self._matrix.astype(np.float64)
            self._match_operands = (patterns_f, patterns_f.sum(axis=1, keepdims=True).T)
        patterns_f, pattern_pop = self._match_operands
        rows_f = rows.astype(np.float64)
        overlap = rows_f @ patterns_f.T
        row_pop = rows_f.sum(axis=1, keepdims=True)
        return (row_pop + pattern_pop - 2 * overlap).astype(np.int64)

    def memory_bits(self) -> int:
        """Storage cost of the pattern set itself in bits."""
        return self.num_patterns * self.width

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PatternSet):
            return NotImplemented
        return np.array_equal(self._matrix, other._matrix)

    def __repr__(self) -> str:
        return f"PatternSet(q={self.num_patterns}, k={self.width})"

    @classmethod
    def from_patterns(cls, patterns: Iterable[Sequence[int]]) -> "PatternSet":
        """Build a set from an iterable of binary sequences."""
        rows = [np.asarray(p, dtype=np.uint8) for p in patterns]
        if not rows:
            raise ValueError("at least one pattern is required")
        return cls(np.stack(rows))
