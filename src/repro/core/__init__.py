"""Core Phi sparsity algorithm: patterns, clustering, calibration, PAFT."""

from .calibration import LayerCalibration, ModelCalibration, PhiCalibrator
from .config import PAPER_CONFIG, KMeansConfig, PhiConfig
from .kmeans import (
    ClusteringResult,
    binary_kmeans,
    cluster_partition,
    filter_calibration_rows,
    hamming_distance_matrix,
)
from .metrics import (
    OperationCounts,
    SparsityBreakdown,
    aggregate_breakdowns,
    aggregate_operation_counts,
    geometric_mean,
    operation_counts,
    sparsity_breakdown,
)
from .paft import ActivationAligner, PAFTConfig, layer_regularizer, paft_regularizer
from .patterns import NO_PATTERN, Pattern, PatternSet
from .sparsity import (
    MatrixDecomposition,
    TileDecomposition,
    decompose_matrix,
    decompose_tile,
    partition_boundaries,
)

__all__ = [
    "PAPER_CONFIG",
    "PhiConfig",
    "KMeansConfig",
    "Pattern",
    "PatternSet",
    "NO_PATTERN",
    "ClusteringResult",
    "binary_kmeans",
    "cluster_partition",
    "filter_calibration_rows",
    "hamming_distance_matrix",
    "TileDecomposition",
    "MatrixDecomposition",
    "decompose_tile",
    "decompose_matrix",
    "partition_boundaries",
    "PhiCalibrator",
    "LayerCalibration",
    "ModelCalibration",
    "SparsityBreakdown",
    "OperationCounts",
    "sparsity_breakdown",
    "operation_counts",
    "aggregate_breakdowns",
    "aggregate_operation_counts",
    "geometric_mean",
    "PAFTConfig",
    "ActivationAligner",
    "paft_regularizer",
    "layer_regularizer",
]
