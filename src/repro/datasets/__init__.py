"""Synthetic datasets standing in for the paper's public benchmarks."""

from .synthetic import (
    Dataset,
    available_datasets,
    make_dataset,
    make_event_dataset,
    make_image_dataset,
    make_sequence_dataset,
    make_text_dataset,
)

__all__ = [
    "Dataset",
    "make_dataset",
    "make_image_dataset",
    "make_event_dataset",
    "make_sequence_dataset",
    "make_text_dataset",
    "available_datasets",
]
