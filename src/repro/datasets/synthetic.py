"""Synthetic datasets standing in for the paper's public benchmarks.

The paper evaluates on CIFAR10, CIFAR100, CIFAR10-DVS, SST-2, SST-5 and
MNLI.  Those datasets are not redistributable inside this offline
reproduction, so this module synthesises structured data with the
properties that actually matter for Phi:

* inputs carry class-dependent, spatially/temporally correlated structure,
  so trained SNNs produce *clustered* spike-activation rows (the effect
  Fig. 1 and Fig. 9 visualise), and
* image, event-stream and token modalities are all covered so every model
  family in the zoo has a matching input pipeline.

Each generator is deterministic for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Dataset:
    """A train/test split of synthetic data.

    Attributes
    ----------
    name:
        Dataset identifier (mirrors the paper's dataset names).
    train_data / train_labels:
        Training inputs and integer class labels.
    test_data / test_labels:
        Held-out inputs and labels.
    num_classes:
        Number of distinct classes.
    kind:
        One of ``"image"``, ``"event"``, ``"text"`` or ``"sequence"``.
    """

    name: str
    train_data: np.ndarray
    train_labels: np.ndarray
    test_data: np.ndarray
    test_labels: np.ndarray
    num_classes: int
    kind: str

    @property
    def input_shape(self) -> tuple[int, ...]:
        """Shape of a single input sample."""
        return tuple(self.train_data.shape[1:])

    def calibration_split(self, fraction: float = 0.25, *, seed: int = 0) -> np.ndarray:
        """A small subset of the training inputs used for Phi calibration.

        Section 3.2 observes that a small calibration subset represents the
        test distribution well; this helper mirrors that workflow.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        rng = np.random.default_rng(seed)
        count = max(1, int(round(fraction * self.train_data.shape[0])))
        idx = rng.choice(self.train_data.shape[0], size=count, replace=False)
        return self.train_data[idx]


def _class_prototypes(
    num_classes: int, shape: tuple[int, ...], rng: np.random.Generator
) -> np.ndarray:
    """Smooth per-class prototypes that give inputs their structure."""
    prototypes = rng.random((num_classes,) + shape)
    # Smooth along the trailing two axes so nearby pixels correlate, which
    # is what makes conv-layer activation rows cluster.
    if len(shape) >= 2:
        for _ in range(2):
            prototypes = (
                prototypes
                + np.roll(prototypes, 1, axis=-1)
                + np.roll(prototypes, -1, axis=-1)
                + np.roll(prototypes, 1, axis=-2)
                + np.roll(prototypes, -1, axis=-2)
            ) / 5.0
    return prototypes


def make_image_dataset(
    name: str = "cifar10",
    *,
    num_classes: int = 10,
    num_train: int = 128,
    num_test: int = 64,
    image_size: int = 16,
    channels: int = 3,
    noise: float = 0.15,
    seed: int = 0,
) -> Dataset:
    """Synthetic CIFAR-like images: class prototypes plus pixel noise."""
    if num_classes < 2:
        raise ValueError("num_classes must be >= 2")
    rng = np.random.default_rng(seed)
    shape = (channels, image_size, image_size)
    prototypes = _class_prototypes(num_classes, shape, rng)

    def sample(count: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, size=count)
        data = prototypes[labels] + noise * rng.standard_normal((count,) + shape)
        return np.clip(data, 0.0, 1.0), labels

    train_data, train_labels = sample(num_train)
    test_data, test_labels = sample(num_test)
    return Dataset(
        name=name,
        train_data=train_data,
        train_labels=train_labels,
        test_data=test_data,
        test_labels=test_labels,
        num_classes=num_classes,
        kind="image",
    )


def make_event_dataset(
    name: str = "cifar10dvs",
    *,
    num_classes: int = 10,
    num_train: int = 96,
    num_test: int = 48,
    image_size: int = 16,
    channels: int = 2,
    num_steps: int = 4,
    event_rate: float = 0.12,
    seed: int = 1,
) -> Dataset:
    """Synthetic DVS-style event streams.

    Each sample is a binary ``(T, C, H, W)`` tensor whose per-class event
    probability map drifts over time, mimicking the moving-stimulus
    recordings of CIFAR10-DVS.
    """
    rng = np.random.default_rng(seed)
    shape = (channels, image_size, image_size)
    prototypes = _class_prototypes(num_classes, shape, rng)
    # Normalise prototypes into event probabilities around the target rate.
    prototypes = prototypes / prototypes.mean(axis=(1, 2, 3), keepdims=True) * event_rate
    prototypes = np.clip(prototypes, 0.0, 1.0)

    def sample(count: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, size=count)
        data = np.zeros((count, num_steps) + shape)
        for i, label in enumerate(labels):
            base = prototypes[label]
            for t in range(num_steps):
                shifted = np.roll(base, shift=t, axis=-1)
                data[i, t] = (rng.random(shape) < shifted).astype(np.float64)
        return data, labels

    train_data, train_labels = sample(num_train)
    test_data, test_labels = sample(num_test)
    return Dataset(
        name=name,
        train_data=train_data,
        train_labels=train_labels,
        test_data=test_data,
        test_labels=test_labels,
        num_classes=num_classes,
        kind="event",
    )


def make_text_dataset(
    name: str = "sst2",
    *,
    num_classes: int = 2,
    num_train: int = 128,
    num_test: int = 64,
    seq_len: int = 16,
    vocab_size: int = 256,
    seed: int = 2,
) -> Dataset:
    """Synthetic token-classification data (SST / MNLI stand-in).

    Each class has its own token distribution (a handful of "sentiment"
    tokens appear far more often), so a classifier can separate classes and
    the transformer's activations acquire class structure.
    """
    rng = np.random.default_rng(seed)
    # Per-class token distribution: a shared base plus class-favoured tokens.
    base = np.full(vocab_size, 1.0 / vocab_size)
    distributions = np.zeros((num_classes, vocab_size))
    favoured_per_class = max(4, vocab_size // (num_classes * 8))
    for cls in range(num_classes):
        favoured = rng.choice(vocab_size, size=favoured_per_class, replace=False)
        dist = base.copy()
        dist[favoured] += 8.0 / vocab_size
        distributions[cls] = dist / dist.sum()

    def sample(count: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, size=count)
        data = np.zeros((count, seq_len), dtype=np.int64)
        for i, label in enumerate(labels):
            data[i] = rng.choice(vocab_size, size=seq_len, p=distributions[label])
        return data, labels

    train_data, train_labels = sample(num_train)
    test_data, test_labels = sample(num_test)
    return Dataset(
        name=name,
        train_data=train_data,
        train_labels=train_labels,
        test_data=test_data,
        test_labels=test_labels,
        num_classes=num_classes,
        kind="text",
    )


def make_sequence_dataset(
    name: str = "speechcmd",
    *,
    num_classes: int = 10,
    num_train: int = 96,
    num_test: int = 48,
    num_steps: int = 8,
    num_features: int = 32,
    spike_rate: float = 0.15,
    seed: int = 4,
) -> Dataset:
    """Synthetic speech-commands-style binary feature-frame sequences.

    Each sample is a binary ``(T, F)`` tensor standing in for spike-coded
    audio feature frames (e.g. thresholded mel filterbanks).  The
    per-class firing-probability profile sweeps across the feature axis
    over time, mimicking the formant trajectories that make keyword
    classes separable — and giving the recurrent models temporally
    *correlated* spike patterns rather than i.i.d. noise.
    """
    rng = np.random.default_rng(seed)
    shape = (num_steps, num_features)
    prototypes = _class_prototypes(num_classes, shape, rng)
    prototypes = prototypes / prototypes.mean(axis=(1, 2), keepdims=True) * spike_rate
    prototypes = np.clip(prototypes, 0.0, 1.0)

    def sample(count: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, num_classes, size=count)
        data = np.zeros((count,) + shape)
        for i, label in enumerate(labels):
            base = prototypes[label]
            for t in range(num_steps):
                # The class profile drifts along the feature axis over
                # time, like a formant sweeping through filterbank bins.
                shifted = np.roll(base[t], shift=t, axis=-1)
                data[i, t] = (rng.random(num_features) < shifted).astype(np.float64)
        return data, labels

    train_data, train_labels = sample(num_train)
    test_data, test_labels = sample(num_test)
    return Dataset(
        name=name,
        train_data=train_data,
        train_labels=train_labels,
        test_data=test_data,
        test_labels=test_labels,
        num_classes=num_classes,
        kind="sequence",
    )


_DATASET_BUILDERS = {
    "cifar10": lambda **kw: make_image_dataset("cifar10", num_classes=10, **kw),
    "cifar100": lambda **kw: make_image_dataset(
        "cifar100", num_classes=kw.pop("num_classes", 20), seed=kw.pop("seed", 10), **kw
    ),
    "cifar10dvs": lambda **kw: make_event_dataset("cifar10dvs", num_classes=10, **kw),
    "sst2": lambda **kw: make_text_dataset("sst2", num_classes=2, **kw),
    "sst5": lambda **kw: make_text_dataset(
        "sst5", num_classes=5, seed=kw.pop("seed", 5), **kw
    ),
    "mnli": lambda **kw: make_text_dataset(
        "mnli", num_classes=3, seed=kw.pop("seed", 7), **kw
    ),
    "speechcmd": lambda **kw: make_sequence_dataset("speechcmd", num_classes=10, **kw),
}


def make_dataset(name: str, **kwargs) -> Dataset:
    """Build one of the paper's datasets (synthetic stand-in) by name."""
    try:
        builder = _DATASET_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; available: {sorted(_DATASET_BUILDERS)}"
        ) from None
    return builder(**kwargs)


def available_datasets() -> list[str]:
    """Names of all synthetic datasets."""
    return sorted(_DATASET_BUILDERS)
