"""Input encodings that convert analog data into spike trains.

SNNs consume information over ``T`` discrete time steps.  The common
choices are *rate coding* (each pixel spikes with probability equal to its
intensity at every step), *latency coding* (brighter pixels spike earlier)
and *direct coding* (the analog input is applied as a constant current at
every step and the first spiking layer binarises it).  Event-stream data
(e.g. CIFAR10-DVS) is already temporal and binary, so it maps one-to-one to
time steps.
"""

from __future__ import annotations

import numpy as np


def rate_encode(
    data: np.ndarray, num_steps: int, *, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Bernoulli rate coding: spike probability equals normalised intensity.

    Parameters
    ----------
    data:
        Array with values in [0, 1]; any shape.
    num_steps:
        Number of time steps ``T``.

    Returns
    -------
    numpy.ndarray
        Binary array of shape ``(T,) + data.shape``.
    """
    data = np.asarray(data, dtype=np.float64)
    if num_steps < 1:
        raise ValueError("num_steps must be >= 1")
    if np.any(data < 0) or np.any(data > 1):
        raise ValueError("rate_encode expects data normalised to [0, 1]")
    rng = rng or np.random.default_rng(0)
    random = rng.random((num_steps,) + data.shape)
    return (random < data[None]).astype(np.float64)


def latency_encode(data: np.ndarray, num_steps: int) -> np.ndarray:
    """Latency coding: each element spikes exactly once, earlier if larger.

    Elements equal to zero never spike.
    """
    data = np.asarray(data, dtype=np.float64)
    if num_steps < 1:
        raise ValueError("num_steps must be >= 1")
    if np.any(data < 0) or np.any(data > 1):
        raise ValueError("latency_encode expects data normalised to [0, 1]")
    spikes = np.zeros((num_steps,) + data.shape, dtype=np.float64)
    # Larger values fire earlier: time = floor((1 - value) * (T - 1)).
    fire_time = np.floor((1.0 - data) * (num_steps - 1)).astype(np.int64)
    nonzero = data > 0
    if num_steps == 1:
        spikes[0][nonzero] = 1.0
        return spikes
    idx = np.argwhere(nonzero)
    for index in idx:
        t = fire_time[tuple(index)]
        spikes[(t,) + tuple(index)] = 1.0
    return spikes


def direct_encode(data: np.ndarray, num_steps: int) -> np.ndarray:
    """Direct coding: repeat the analog input at every time step."""
    data = np.asarray(data, dtype=np.float64)
    if num_steps < 1:
        raise ValueError("num_steps must be >= 1")
    return np.repeat(data[None], num_steps, axis=0)


def event_stream_encode(events: np.ndarray, num_steps: int) -> np.ndarray:
    """Re-bin an event stream ``(T_in, ...)`` into ``num_steps`` frames.

    Multiple input frames falling into the same output step are OR-ed
    together so the result stays binary, mirroring the standard frame-based
    pre-processing of DVS datasets.
    """
    events = np.asarray(events, dtype=np.float64)
    if events.ndim < 1:
        raise ValueError("events must have a leading time dimension")
    if num_steps < 1:
        raise ValueError("num_steps must be >= 1")
    t_in = events.shape[0]
    out = np.zeros((num_steps,) + events.shape[1:], dtype=np.float64)
    edges = np.linspace(0, t_in, num_steps + 1).astype(int)
    for step in range(num_steps):
        start, stop = edges[step], edges[step + 1]
        if stop > start:
            out[step] = (events[start:stop].sum(axis=0) > 0).astype(np.float64)
    return out
