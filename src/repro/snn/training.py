"""Training and fine-tuning loops (plain SGD with surrogate gradients).

The trainer implements softmax cross-entropy on the rate-decoded logits of
a :class:`~repro.snn.network.SpikingNetwork`.  Gradients flow through the
spiking nonlinearity with surrogate derivatives; temporal credit
assignment uses the standard "per-step" simplification (membrane state is
treated as constant across steps), which is sufficient for the small
models of this reproduction and keeps memory bounded.

The same loop powers Pattern-Aware Fine-Tuning (PAFT): when a
:class:`~repro.core.calibration.ModelCalibration` and a ``lambda`` are
provided, the PAFT alignment gradient is injected at every GEMM layer
whose input is a binary spike matrix (Section 3.3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..core.calibration import ModelCalibration
from ..core.paft import PAFTConfig, paft_regularizer_gradient
from .network import SpikingNetwork


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax along the last axis."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Cross-entropy loss and its gradient with respect to the logits."""
    labels = np.asarray(labels, dtype=np.int64)
    probs = softmax(logits)
    batch = logits.shape[0]
    clipped = np.clip(probs[np.arange(batch), labels], 1e-12, None)
    loss = float(-np.log(clipped).mean())
    grad = probs.copy()
    grad[np.arange(batch), labels] -= 1.0
    return loss, grad / batch


@dataclass
class TrainingHistory:
    """Per-epoch loss / accuracy curves produced by the trainer."""

    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)
    regularizers: list[float] = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        """Accuracy after the final epoch (0.0 when never evaluated)."""
        return self.accuracies[-1] if self.accuracies else 0.0


def iterate_minibatches(
    data: np.ndarray,
    labels: np.ndarray,
    batch_size: int,
    *,
    rng: np.random.Generator | None = None,
    shuffle: bool = True,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield shuffled mini-batches of (data, labels)."""
    data = np.asarray(data)
    labels = np.asarray(labels)
    if data.shape[0] != labels.shape[0]:
        raise ValueError("data and labels must have the same length")
    indices = np.arange(data.shape[0])
    if shuffle:
        (rng or np.random.default_rng(0)).shuffle(indices)
    for start in range(0, len(indices), batch_size):
        batch_idx = indices[start : start + batch_size]
        yield data[batch_idx], labels[batch_idx]


class SGDTrainer:
    """Mini-batch SGD trainer with optional PAFT regularisation.

    Parameters
    ----------
    network:
        The spiking network to train.
    learning_rate:
        SGD step size.
    momentum:
        Classical momentum coefficient (0 disables momentum).
    weight_decay:
        L2 penalty applied to all parameters.
    """

    def __init__(
        self,
        network: SpikingNetwork,
        *,
        learning_rate: float = 0.05,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.network = network
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[int, np.ndarray] = {}
        # PAFT state (configured through enable_paft).
        self._paft_calibration: ModelCalibration | None = None
        self._paft_config: PAFTConfig | None = None

    def enable_paft(
        self, calibration: ModelCalibration, config: PAFTConfig | None = None
    ) -> None:
        """Turn on pattern-aware fine-tuning against ``calibration``."""
        self._paft_calibration = calibration
        self._paft_config = config or PAFTConfig()
        self.learning_rate = self._paft_config.learning_rate

    def disable_paft(self) -> None:
        """Turn PAFT regularisation back off."""
        self._paft_calibration = None
        self._paft_config = None

    @property
    def paft_enabled(self) -> bool:
        """Whether the PAFT regulariser is active."""
        return self._paft_calibration is not None

    # ------------------------------------------------------------------ #
    def _paft_gradients_for_step(self) -> tuple[dict[str, np.ndarray], float]:
        """PAFT input-matrix gradients for the GEMM layers of the last step."""
        assert self._paft_calibration is not None and self._paft_config is not None
        gradients: dict[str, np.ndarray] = {}
        reg_total = 0.0
        lam = self._paft_config.lam
        for layer in self.network.matmul_layers():
            if layer.name not in self._paft_calibration:
                continue
            matrix = layer.input_matrix()
            unique = np.unique(matrix)
            if not np.all(np.isin(unique, (0.0, 1.0))):
                continue  # only binary spike inputs participate in PAFT
            calibration = self._paft_calibration[layer.name]
            if matrix.shape[1] != calibration.total_width:
                continue
            grad = paft_regularizer_gradient(
                matrix.astype(np.uint8), calibration, layer.output_width
            )
            gradients[layer.name] = lam * grad
            reg_total += float(np.abs(grad).sum())
        return gradients, reg_total

    def _apply_gradients(self) -> None:
        for layer in self.network.layers:
            params = layer.parameters()
            grads = layer.gradients()
            for key, param in params.items():
                grad = grads.get(key)
                if grad is None:
                    continue
                if self.weight_decay:
                    grad = grad + self.weight_decay * param
                state_key = id(param)
                if self.momentum:
                    velocity = self._velocity.get(state_key)
                    if velocity is None:
                        velocity = np.zeros_like(param)
                    velocity = self.momentum * velocity - self.learning_rate * grad
                    self._velocity[state_key] = velocity
                    param += velocity
                else:
                    param -= self.learning_rate * grad

    def train_batch(self, data: np.ndarray, labels: np.ndarray) -> tuple[float, float]:
        """One SGD step on a mini-batch; returns (loss, PAFT regulariser)."""
        network = self.network
        network.set_training(True)
        network.zero_gradients()

        # Pass 1: full temporal forward to obtain the rate-decoded logits.
        train = network._encode(data)
        network.reset_state()
        logits = None
        for t in range(network.num_steps):
            out = network.step_forward(train[t])
            logits = out if logits is None else logits + out
        logits = logits / network.num_steps
        loss, grad_logits = cross_entropy(logits, labels)
        grad_step = grad_logits / network.num_steps

        # Pass 2: replay each step and backpropagate immediately, so layer
        # caches always refer to the step being differentiated.
        network.reset_state()
        regularizer = 0.0
        for t in range(network.num_steps):
            network.step_forward(train[t])
            paft_grads: dict[str, np.ndarray] = {}
            if self.paft_enabled:
                paft_grads, reg = self._paft_gradients_for_step()
                regularizer += reg
            network.step_backward(grad_step, paft_gradients=paft_grads)

        self._apply_gradients()
        network.set_training(False)
        return loss, regularizer

    def fit(
        self,
        data: np.ndarray,
        labels: np.ndarray,
        *,
        epochs: int = 1,
        batch_size: int = 16,
        eval_data: np.ndarray | None = None,
        eval_labels: np.ndarray | None = None,
        seed: int = 0,
    ) -> TrainingHistory:
        """Train for ``epochs`` passes over the data; returns the history."""
        history = TrainingHistory()
        rng = np.random.default_rng(seed)
        for _ in range(epochs):
            epoch_losses = []
            epoch_regs = []
            for batch_data, batch_labels in iterate_minibatches(
                data, labels, batch_size, rng=rng
            ):
                loss, reg = self.train_batch(batch_data, batch_labels)
                epoch_losses.append(loss)
                epoch_regs.append(reg)
            history.losses.append(float(np.mean(epoch_losses)))
            history.regularizers.append(float(np.mean(epoch_regs)))
            if eval_data is not None and eval_labels is not None:
                history.accuracies.append(
                    self.evaluate(eval_data, eval_labels)
                )
        return history

    def evaluate(self, data: np.ndarray, labels: np.ndarray, *, batch_size: int = 32) -> float:
        """Classification accuracy over a dataset."""
        self.network.set_training(False)
        correct = 0
        total = 0
        for batch_data, batch_labels in iterate_minibatches(
            data, labels, batch_size, shuffle=False
        ):
            predictions = self.network.predict(batch_data)
            correct += int(np.sum(predictions == batch_labels))
            total += len(batch_labels)
        return correct / total if total else 0.0
