"""Spiking self-attention and transformer blocks (Spikformer / SDT style).

Spikformer's Spiking Self-Attention (SSA) differs from standard attention
in two ways that matter to an accelerator: queries, keys and values are
*binary spike* tensors (produced by LIF neurons after linear projections),
and there is no softmax — the attention map is the plain product
``Q_s @ K_s^T`` scaled by a constant.  Consequently every large matrix
multiplication in the block consumes a binary activation matrix, which is
exactly what Phi sparsity exploits.
"""

from __future__ import annotations

import numpy as np

from .layers import Layer, LIFLayer, Linear, MatmulLayer
from .surrogate import ArctanSurrogate


class SpikingSelfAttention(Layer):
    """Single spiking self-attention block operating on token sequences.

    Parameters
    ----------
    embed_dim:
        Token embedding width.
    num_heads:
        Number of attention heads (must divide ``embed_dim``).
    scale:
        Constant scaling of the attention product (Spikformer uses 0.125).
    """

    def __init__(
        self,
        embed_dim: int,
        num_heads: int = 1,
        *,
        scale: float = 0.125,
        name: str = "ssa",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(name)
        if embed_dim % num_heads:
            raise ValueError("embed_dim must be divisible by num_heads")
        rng = rng or np.random.default_rng(0)
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        self.scale = scale
        self.q_proj = Linear(embed_dim, embed_dim, name=f"{name}.q", rng=rng)
        self.k_proj = Linear(embed_dim, embed_dim, name=f"{name}.k", rng=rng)
        self.v_proj = Linear(embed_dim, embed_dim, name=f"{name}.v", rng=rng)
        self.out_proj = Linear(embed_dim, embed_dim, name=f"{name}.out", rng=rng)
        self.q_lif = LIFLayer(name=f"{name}.q_lif", surrogate=ArctanSurrogate())
        self.k_lif = LIFLayer(name=f"{name}.k_lif", surrogate=ArctanSurrogate())
        self.v_lif = LIFLayer(name=f"{name}.v_lif", surrogate=ArctanSurrogate())
        self.out_lif = LIFLayer(name=f"{name}.out_lif", surrogate=ArctanSurrogate())
        self._cache: dict[str, np.ndarray] | None = None
        self._last_tokens: int | None = None

    # ------------------------------------------------------------------ #
    def children(self) -> list[Layer]:
        """Sub-layers of the block (used for recursive traversal)."""
        return [
            self.q_proj,
            self.q_lif,
            self.k_proj,
            self.k_lif,
            self.v_proj,
            self.v_lif,
            self.out_proj,
            self.out_lif,
        ]

    def matmul_layers(self) -> list[MatmulLayer]:
        """All GEMM layers inside the block."""
        return [self.q_proj, self.k_proj, self.v_proj, self.out_proj]

    def _split_heads(self, x: np.ndarray, batch: int, tokens: int) -> np.ndarray:
        return x.reshape(batch, tokens, self.num_heads, self.head_dim).transpose(
            0, 2, 1, 3
        )

    def _merge_heads(self, x: np.ndarray, batch: int, tokens: int) -> np.ndarray:
        return x.transpose(0, 2, 1, 3).reshape(batch, tokens, self.embed_dim)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Process one time step of a ``(B, T_tok, D)`` spike tensor."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 3:
            raise ValueError(f"SSA expects (batch, tokens, dim) input, got {x.shape}")
        batch, tokens, _ = x.shape
        self._last_tokens = tokens
        flat = x.reshape(batch * tokens, self.embed_dim)

        q = self.q_lif.forward(self.q_proj.forward(flat))
        k = self.k_lif.forward(self.k_proj.forward(flat))
        v = self.v_lif.forward(self.v_proj.forward(flat))

        q_h = self._split_heads(q.reshape(batch, tokens, -1), batch, tokens)
        k_h = self._split_heads(k.reshape(batch, tokens, -1), batch, tokens)
        v_h = self._split_heads(v.reshape(batch, tokens, -1), batch, tokens)

        attn = np.einsum("bhtd,bhsd->bhts", q_h, k_h)
        context = np.einsum("bhts,bhsd->bhtd", attn, v_h) * self.scale
        merged = self._merge_heads(context, batch, tokens)

        out = self.out_lif.forward(
            self.out_proj.forward(merged.reshape(batch * tokens, self.embed_dim))
        )
        self._cache = {
            "q_h": q_h,
            "k_h": k_h,
            "v_h": v_h,
            "attn": attn,
            "batch": batch,
        }
        return out.reshape(batch, tokens, self.embed_dim)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cache = self._cache
        batch = cache["batch"]
        tokens = self._last_tokens
        grad_output = np.asarray(grad_output, dtype=np.float64)

        grad_out_flat = grad_output.reshape(batch * tokens, self.embed_dim)
        grad_merged_flat = self.out_proj.backward(self.out_lif.backward(grad_out_flat))
        grad_context = self._split_heads(
            grad_merged_flat.reshape(batch, tokens, self.embed_dim), batch, tokens
        ) * self.scale

        grad_attn = np.einsum("bhtd,bhsd->bhts", grad_context, cache["v_h"])
        grad_v_h = np.einsum("bhts,bhtd->bhsd", cache["attn"], grad_context)
        grad_q_h = np.einsum("bhts,bhsd->bhtd", grad_attn, cache["k_h"])
        grad_k_h = np.einsum("bhts,bhtd->bhsd", grad_attn, cache["q_h"])

        grad_q = self._merge_heads(grad_q_h, batch, tokens).reshape(
            batch * tokens, self.embed_dim
        )
        grad_k = self._merge_heads(grad_k_h, batch, tokens).reshape(
            batch * tokens, self.embed_dim
        )
        grad_v = self._merge_heads(grad_v_h, batch, tokens).reshape(
            batch * tokens, self.embed_dim
        )

        grad_in = self.q_proj.backward(self.q_lif.backward(grad_q))
        grad_in += self.k_proj.backward(self.k_lif.backward(grad_k))
        grad_in += self.v_proj.backward(self.v_lif.backward(grad_v))
        return grad_in.reshape(batch, tokens, self.embed_dim)

    def reset_state(self) -> None:
        for child in self.children():
            child.reset_state()

    def parameters(self) -> dict[str, np.ndarray]:
        params = {}
        for child in self.matmul_layers():
            for key, value in child.parameters().items():
                params[f"{child.name}.{key}"] = value
        return params

    def gradients(self) -> dict[str, np.ndarray]:
        grads = {}
        for child in self.matmul_layers():
            for key, value in child.gradients().items():
                grads[f"{child.name}.{key}"] = value
        return grads

    def zero_gradients(self) -> None:
        for child in self.matmul_layers():
            child.zero_gradients()


class SpikingMLP(Layer):
    """Two-layer spiking MLP used inside transformer blocks."""

    def __init__(
        self,
        embed_dim: int,
        hidden_dim: int | None = None,
        *,
        name: str = "mlp",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(name)
        rng = rng or np.random.default_rng(0)
        hidden_dim = hidden_dim or embed_dim * 2
        self.fc1 = Linear(embed_dim, hidden_dim, name=f"{name}.fc1", rng=rng)
        self.lif1 = LIFLayer(name=f"{name}.lif1", surrogate=ArctanSurrogate())
        self.fc2 = Linear(hidden_dim, embed_dim, name=f"{name}.fc2", rng=rng)
        self.lif2 = LIFLayer(name=f"{name}.lif2", surrogate=ArctanSurrogate())
        self.embed_dim = embed_dim
        self._last_shape: tuple[int, ...] | None = None

    def children(self) -> list[Layer]:
        return [self.fc1, self.lif1, self.fc2, self.lif2]

    def matmul_layers(self) -> list[MatmulLayer]:
        return [self.fc1, self.fc2]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._last_shape = x.shape
        flat = x.reshape(-1, self.embed_dim)
        hidden = self.lif1.forward(self.fc1.forward(flat))
        out = self.lif2.forward(self.fc2.forward(hidden))
        return out.reshape(x.shape)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = np.asarray(grad_output, dtype=np.float64).reshape(-1, self.embed_dim)
        grad = self.fc2.backward(self.lif2.backward(grad))
        grad = self.fc1.backward(self.lif1.backward(grad))
        return grad.reshape(self._last_shape)

    def reset_state(self) -> None:
        for child in self.children():
            child.reset_state()

    def parameters(self) -> dict[str, np.ndarray]:
        params = {}
        for child in self.matmul_layers():
            for key, value in child.parameters().items():
                params[f"{child.name}.{key}"] = value
        return params

    def gradients(self) -> dict[str, np.ndarray]:
        grads = {}
        for child in self.matmul_layers():
            for key, value in child.gradients().items():
                grads[f"{child.name}.{key}"] = value
        return grads

    def zero_gradients(self) -> None:
        for child in self.matmul_layers():
            child.zero_gradients()


class SpikingTransformerBlock(Layer):
    """SSA + spiking MLP with residual connections (one encoder block)."""

    def __init__(
        self,
        embed_dim: int,
        num_heads: int = 1,
        *,
        mlp_ratio: float = 2.0,
        name: str = "block",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(name)
        rng = rng or np.random.default_rng(0)
        self.attention = SpikingSelfAttention(
            embed_dim, num_heads, name=f"{name}.attn", rng=rng
        )
        self.mlp = SpikingMLP(
            embed_dim, int(embed_dim * mlp_ratio), name=f"{name}.mlp", rng=rng
        )

    def children(self) -> list[Layer]:
        return [self.attention, self.mlp]

    def matmul_layers(self) -> list[MatmulLayer]:
        return self.attention.matmul_layers() + self.mlp.matmul_layers()

    def forward(self, x: np.ndarray) -> np.ndarray:
        attn_out = self.attention.forward(x)
        residual = x + attn_out
        mlp_out = self.mlp.forward(residual)
        return residual + mlp_out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_output = np.asarray(grad_output, dtype=np.float64)
        grad_residual = grad_output + self.mlp.backward(grad_output)
        return grad_residual + self.attention.backward(grad_residual)

    def reset_state(self) -> None:
        self.attention.reset_state()
        self.mlp.reset_state()

    def parameters(self) -> dict[str, np.ndarray]:
        params = {}
        for child in self.children():
            params.update(child.parameters())
        return params

    def gradients(self) -> dict[str, np.ndarray]:
        grads = {}
        for child in self.children():
            grads.update(child.gradients())
        return grads

    def zero_gradients(self) -> None:
        for child in self.children():
            child.zero_gradients()
