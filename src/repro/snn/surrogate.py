"""Surrogate gradient functions for spiking neurons.

Spike generation is a Heaviside step of the membrane potential, whose true
derivative is zero almost everywhere.  Training SNNs with backpropagation
therefore replaces the derivative with a smooth *surrogate*.  This module
provides the common choices used by spiking VGG / ResNet / transformer
models; the training loop multiplies upstream gradients by
``surrogate(membrane - threshold)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

SurrogateFn = Callable[[np.ndarray], np.ndarray]


def heaviside(x: np.ndarray) -> np.ndarray:
    """Hard threshold used in the forward pass: 1 where ``x >= 0``."""
    return (np.asarray(x) >= 0).astype(np.float64)


@dataclass(frozen=True)
class RectangularSurrogate:
    """Boxcar surrogate: constant gradient within ``width`` of threshold."""

    width: float = 1.0

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return (np.abs(x) <= self.width / 2).astype(np.float64) / self.width


@dataclass(frozen=True)
class SigmoidSurrogate:
    """Derivative of a scaled sigmoid, the snnTorch / SpikingJelly default."""

    alpha: float = 4.0

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        sig = 1.0 / (1.0 + np.exp(-self.alpha * x))
        return self.alpha * sig * (1.0 - sig)


@dataclass(frozen=True)
class ArctanSurrogate:
    """Derivative of a scaled arctan, used by Spikformer-style models."""

    alpha: float = 2.0

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return self.alpha / (2.0 * (1.0 + (np.pi / 2.0 * self.alpha * x) ** 2))


@dataclass(frozen=True)
class TriangularSurrogate:
    """Piecewise-linear (triangle) surrogate."""

    width: float = 1.0

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return np.maximum(0.0, 1.0 - np.abs(x) / self.width) / self.width


_REGISTRY: dict[str, Callable[[], SurrogateFn]] = {
    "rectangular": RectangularSurrogate,
    "sigmoid": SigmoidSurrogate,
    "arctan": ArctanSurrogate,
    "triangular": TriangularSurrogate,
}


def get_surrogate(name: str, **kwargs) -> SurrogateFn:
    """Look up a surrogate gradient function by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown surrogate {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)
