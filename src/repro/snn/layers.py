"""Spiking network layers implemented on NumPy.

Each layer processes one time step at a time (the network container loops
over the temporal dimension) and supports a backward pass so the training
loop and PAFT fine-tuning can update weights with surrogate gradients.

Layers that perform a matrix multiplication (``Linear`` and ``Conv2d``)
additionally expose their computation in GEMM form — ``input_matrix()`` of
shape ``(M, K)`` and ``weight_matrix()`` of shape ``(K, N)`` — which is the
representation the Phi calibration, sparsity decomposition and accelerator
simulator operate on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from .neurons import LIFNeuron
from .surrogate import SigmoidSurrogate, SurrogateFn


class Layer(ABC):
    """Base class of all spiking-network layers."""

    def __init__(self, name: str) -> None:
        self.name = name

    @abstractmethod
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Process one time step of input and return the output tensor."""

    @abstractmethod
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate through the most recent forward call."""

    def reset_state(self) -> None:
        """Clear any temporal state (membranes, caches) between samples."""

    def parameters(self) -> dict[str, np.ndarray]:
        """Trainable parameters of the layer."""
        return {}

    def gradients(self) -> dict[str, np.ndarray]:
        """Accumulated gradients matching :meth:`parameters`."""
        return {}

    def zero_gradients(self) -> None:
        """Reset accumulated gradients to zero."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class MatmulLayer(Layer):
    """Base class of layers whose core computation is a GEMM.

    Subclasses must populate ``self._last_input_matrix`` during forward so
    that the Phi pipeline can retrieve the activation matrix.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._last_input_matrix: np.ndarray | None = None

    def input_matrix(self) -> np.ndarray:
        """The most recent input in GEMM form, shape ``(M, K)``."""
        if self._last_input_matrix is None:
            raise RuntimeError(f"layer {self.name!r} has not run forward yet")
        return self._last_input_matrix

    @abstractmethod
    def weight_matrix(self) -> np.ndarray:
        """The layer weights in GEMM form, shape ``(K, N)``."""

    @abstractmethod
    def project_input_matrix_gradient(self, grad_matrix: np.ndarray) -> np.ndarray:
        """Map a gradient on :meth:`input_matrix` back to the input tensor.

        Used by PAFT to inject the pattern-alignment gradient, which is
        naturally expressed on the GEMM-form activation matrix, into the
        ordinary backward pass of the network.
        """

    @property
    def output_width(self) -> int:
        """The N dimension of the GEMM (used by the PAFT regulariser)."""
        return int(self.weight_matrix().shape[1])


class Linear(MatmulLayer):
    """Fully connected layer ``y = x @ W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input (K) and output (N) widths.
    bias:
        Whether to add a learnable bias.
    rng:
        Generator for Kaiming-style weight initialisation.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        bias: bool = True,
        name: str = "linear",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(name)
        if in_features < 1 or out_features < 1:
            raise ValueError("in_features and out_features must be >= 1")
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(2.0 / in_features)
        self.weight = rng.normal(0.0, scale, size=(in_features, out_features))
        self.bias = np.zeros(out_features) if bias else None
        self.weight_grad = np.zeros_like(self.weight)
        self.bias_grad = np.zeros(out_features) if bias else None
        self._last_input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        self._last_input = x
        self._last_input_matrix = x
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._last_input is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        self.weight_grad += self._last_input.T @ grad_output
        if self.bias is not None:
            self.bias_grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.T

    def weight_matrix(self) -> np.ndarray:
        return self.weight

    def project_input_matrix_gradient(self, grad_matrix: np.ndarray) -> np.ndarray:
        return np.asarray(grad_matrix, dtype=np.float64)

    def parameters(self) -> dict[str, np.ndarray]:
        params = {"weight": self.weight}
        if self.bias is not None:
            params["bias"] = self.bias
        return params

    def gradients(self) -> dict[str, np.ndarray]:
        grads = {"weight": self.weight_grad}
        if self.bias is not None:
            grads["bias"] = self.bias_grad
        return grads

    def zero_gradients(self) -> None:
        self.weight_grad[...] = 0.0
        if self.bias_grad is not None:
            self.bias_grad[...] = 0.0


def im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> tuple[np.ndarray, int, int]:
    """Unfold ``(B, C, H, W)`` input into ``(B * OH * OW, C * k * k)`` columns."""
    x = np.asarray(x, dtype=np.float64)
    batch, channels, height, width = x.shape
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    if out_h < 1 or out_w < 1:
        raise ValueError("kernel/stride/padding produce empty output")
    padded = np.pad(
        x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
    )
    cols = np.zeros((batch, channels, kernel, kernel, out_h, out_w))
    for i in range(kernel):
        i_end = i + stride * out_h
        for j in range(kernel):
            j_end = j + stride * out_w
            cols[:, :, i, j, :, :] = padded[:, :, i:i_end:stride, j:j_end:stride]
    cols = cols.transpose(0, 4, 5, 1, 2, 3).reshape(
        batch * out_h * out_w, channels * kernel * kernel
    )
    return cols, out_h, out_w


def col2im(
    cols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold column gradients back to the ``(B, C, H, W)`` input shape."""
    batch, channels, height, width = input_shape
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    cols = cols.reshape(batch, out_h, out_w, channels, kernel, kernel).transpose(
        0, 3, 4, 5, 1, 2
    )
    padded = np.zeros((batch, channels, height + 2 * padding, width + 2 * padding))
    for i in range(kernel):
        i_end = i + stride * out_h
        for j in range(kernel):
            j_end = j + stride * out_w
            padded[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j, :, :]
    if padding == 0:
        return padded
    return padded[:, :, padding:-padding, padding:-padding]


class Conv2d(MatmulLayer):
    """2-D convolution implemented as an im2col GEMM.

    The GEMM view matches what a spatial accelerator sees: the activation
    matrix has one row per output pixel (``M = B * OH * OW``) and one
    column per receptive-field element (``K = C_in * k * k``).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        *,
        stride: int = 1,
        padding: int = 1,
        bias: bool = True,
        name: str = "conv",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(name)
        if min(in_channels, out_channels, kernel_size, stride) < 1 or padding < 0:
            raise ValueError("invalid convolution geometry")
        rng = rng or np.random.default_rng(0)
        fan_in = in_channels * kernel_size * kernel_size
        scale = np.sqrt(2.0 / fan_in)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = rng.normal(0.0, scale, size=(fan_in, out_channels))
        self.bias = np.zeros(out_channels) if bias else None
        self.weight_grad = np.zeros_like(self.weight)
        self.bias_grad = np.zeros(out_channels) if bias else None
        self._last_cols: np.ndarray | None = None
        self._last_input_shape: tuple[int, int, int, int] | None = None
        self._last_out_hw: tuple[int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 4:
            raise ValueError(f"Conv2d expects (B, C, H, W) input, got {x.shape}")
        cols, out_h, out_w = im2col(x, self.kernel_size, self.stride, self.padding)
        self._last_cols = cols
        self._last_input_matrix = cols
        self._last_input_shape = x.shape
        self._last_out_hw = (out_h, out_w)
        out = cols @ self.weight
        if self.bias is not None:
            out = out + self.bias
        batch = x.shape[0]
        return out.reshape(batch, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._last_cols is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        batch, _, out_h, out_w = grad_output.shape
        grad_flat = grad_output.transpose(0, 2, 3, 1).reshape(-1, self.out_channels)
        self.weight_grad += self._last_cols.T @ grad_flat
        if self.bias is not None:
            self.bias_grad += grad_flat.sum(axis=0)
        grad_cols = grad_flat @ self.weight.T
        return col2im(
            grad_cols,
            self._last_input_shape,
            self.kernel_size,
            self.stride,
            self.padding,
        )

    def weight_matrix(self) -> np.ndarray:
        return self.weight

    def project_input_matrix_gradient(self, grad_matrix: np.ndarray) -> np.ndarray:
        if self._last_input_shape is None:
            raise RuntimeError("project_input_matrix_gradient called before forward")
        return col2im(
            np.asarray(grad_matrix, dtype=np.float64),
            self._last_input_shape,
            self.kernel_size,
            self.stride,
            self.padding,
        )

    def parameters(self) -> dict[str, np.ndarray]:
        params = {"weight": self.weight}
        if self.bias is not None:
            params["bias"] = self.bias
        return params

    def gradients(self) -> dict[str, np.ndarray]:
        grads = {"weight": self.weight_grad}
        if self.bias is not None:
            grads["bias"] = self.bias_grad
        return grads

    def zero_gradients(self) -> None:
        self.weight_grad[...] = 0.0
        if self.bias_grad is not None:
            self.bias_grad[...] = 0.0


class AvgPool2d(Layer):
    """Average pooling over non-overlapping windows."""

    def __init__(self, kernel_size: int = 2, *, name: str = "avgpool") -> None:
        super().__init__(name)
        if kernel_size < 1:
            raise ValueError("kernel_size must be >= 1")
        self.kernel_size = kernel_size
        self._last_input_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        batch, channels, height, width = x.shape
        k = self.kernel_size
        if height % k or width % k:
            raise ValueError(
                f"input spatial size ({height}, {width}) not divisible by {k}"
            )
        self._last_input_shape = x.shape
        reshaped = x.reshape(batch, channels, height // k, k, width // k, k)
        return reshaped.mean(axis=(3, 5))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._last_input_shape is None:
            raise RuntimeError("backward called before forward")
        k = self.kernel_size
        grad = np.repeat(np.repeat(grad_output, k, axis=2), k, axis=3)
        return grad / (k * k)


class MaxPool2d(Layer):
    """Max pooling over non-overlapping windows."""

    def __init__(self, kernel_size: int = 2, *, name: str = "maxpool") -> None:
        super().__init__(name)
        if kernel_size < 1:
            raise ValueError("kernel_size must be >= 1")
        self.kernel_size = kernel_size
        self._mask: np.ndarray | None = None
        self._last_input_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        batch, channels, height, width = x.shape
        k = self.kernel_size
        if height % k or width % k:
            raise ValueError(
                f"input spatial size ({height}, {width}) not divisible by {k}"
            )
        self._last_input_shape = x.shape
        windows = x.reshape(batch, channels, height // k, k, width // k, k)
        out = windows.max(axis=(3, 5))
        self._mask = (windows == out[:, :, :, None, :, None]).astype(np.float64)
        # Break ties so gradients are not double counted.
        norm = self._mask.sum(axis=(3, 5), keepdims=True)
        self._mask /= np.maximum(norm, 1.0)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        grad = self._mask * grad_output[:, :, :, None, :, None]
        batch, channels, height, width = self._last_input_shape
        return grad.reshape(batch, channels, height, width)


class Flatten(Layer):
    """Flatten all non-batch dimensions."""

    def __init__(self, *, name: str = "flatten") -> None:
        super().__init__(name)
        self._last_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._last_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._last_shape is None:
            raise RuntimeError("backward called before forward")
        return np.asarray(grad_output).reshape(self._last_shape)


class BatchNorm(Layer):
    """Per-feature normalisation with a learnable affine transform.

    Operates on the channel dimension of ``(B, C, H, W)`` tensors or on the
    feature dimension of ``(B, F)`` tensors.  Running statistics are kept
    so inference is deterministic.
    """

    def __init__(
        self, num_features: int, *, momentum: float = 0.1, eps: float = 1e-5, name: str = "bn"
    ) -> None:
        super().__init__(name)
        if num_features < 1:
            raise ValueError("num_features must be >= 1")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = np.ones(num_features)
        self.beta = np.zeros(num_features)
        self.gamma_grad = np.zeros(num_features)
        self.beta_grad = np.zeros(num_features)
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self.training = True
        self._cache: tuple | None = None

    def _reshape_params(self, x: np.ndarray, param: np.ndarray) -> np.ndarray:
        if x.ndim == 4:
            return param[None, :, None, None]
        return param[None, :]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        axes = (0, 2, 3) if x.ndim == 4 else (0,)
        if self.training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var
            )
        else:
            mean, var = self.running_mean, self.running_var
        mean_b = self._reshape_params(x, mean)
        var_b = self._reshape_params(x, var)
        normalised = (x - mean_b) / np.sqrt(var_b + self.eps)
        self._cache = (normalised, var_b, axes, x.shape)
        return self._reshape_params(x, self.gamma) * normalised + self._reshape_params(
            x, self.beta
        )

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        normalised, var_b, axes, shape = self._cache
        grad_output = np.asarray(grad_output, dtype=np.float64)
        self.gamma_grad += (grad_output * normalised).sum(axis=axes)
        self.beta_grad += grad_output.sum(axis=axes)
        count = np.prod([shape[a] for a in axes])
        gamma_b = self._reshape_params(grad_output, self.gamma)
        grad_norm = grad_output * gamma_b
        # Standard batch-norm backward.
        grad_input = (
            grad_norm
            - grad_norm.mean(axis=axes, keepdims=True)
            - normalised * (grad_norm * normalised).mean(axis=axes, keepdims=True)
        ) / np.sqrt(var_b + self.eps)
        _ = count
        return grad_input

    def parameters(self) -> dict[str, np.ndarray]:
        return {"gamma": self.gamma, "beta": self.beta}

    def gradients(self) -> dict[str, np.ndarray]:
        return {"gamma": self.gamma_grad, "beta": self.beta_grad}

    def zero_gradients(self) -> None:
        self.gamma_grad[...] = 0.0
        self.beta_grad[...] = 0.0


@dataclass
class SpikeRecord:
    """Spike statistics recorded by a :class:`LIFLayer` over a sample."""

    total_spikes: int = 0
    total_elements: int = 0

    @property
    def firing_rate(self) -> float:
        """Average firing probability over the recorded window."""
        if self.total_elements == 0:
            return 0.0
        return self.total_spikes / self.total_elements


class LIFLayer(Layer):
    """Layer wrapper around a :class:`LIFNeuron` producing binary spikes."""

    def __init__(
        self,
        *,
        threshold: float = 1.0,
        tau: float = 2.0,
        reset_mode: str = "hard",
        surrogate: SurrogateFn | None = None,
        name: str = "lif",
    ) -> None:
        super().__init__(name)
        self.neuron = LIFNeuron(
            threshold=threshold,
            tau=tau,
            reset_mode=reset_mode,
            surrogate=surrogate or SigmoidSurrogate(),
        )
        self.record = SpikeRecord()
        self._external_grad: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        spikes = self.neuron.step(x)
        self.record.total_spikes += int(spikes.sum())
        self.record.total_elements += int(spikes.size)
        return spikes

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = np.asarray(grad_output, dtype=np.float64)
        if self._external_grad is not None:
            grad = grad + self._external_grad
            self._external_grad = None
        return grad * self.neuron.surrogate_grad()

    def inject_gradient(self, grad: np.ndarray) -> None:
        """Add an external gradient on the spikes (used by PAFT)."""
        self._external_grad = np.asarray(grad, dtype=np.float64)

    def reset_state(self) -> None:
        self.neuron.reset_state()

    def reset_record(self) -> None:
        """Clear the spike-count statistics."""
        self.record = SpikeRecord()
