"""Model zoo: scaled-down spiking versions of the paper's workloads.

The paper evaluates Phi on spiking CNNs (VGG16, ResNet18) and spiking
transformers (Spikformer, Spike-driven Transformer, SpikeBERT,
SpikingBERT).  Training the full-size models is outside the scope of a
CPU-only reproduction, so each builder constructs a *scaled* network with
the same layer types, connectivity pattern and firing behaviour; the
resulting per-layer binary activation matrices exercise exactly the same
Phi pipeline (calibration, decomposition, accelerator simulation).

Every builder accepts ``scale`` hooks (channels, depth, embed dim) so the
benchmarks can trade fidelity for runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .attention import SpikingTransformerBlock
from .layers import (
    AvgPool2d,
    BatchNorm,
    Conv2d,
    Flatten,
    Layer,
    LIFLayer,
    Linear,
    MatmulLayer,
    MaxPool2d,
)
from .network import SpikingNetwork
from .recurrent import RecurrentSpikingCell
from .surrogate import ArctanSurrogate


@dataclass(frozen=True)
class ModelSpec:
    """Description of a model/dataset pairing used in the evaluation."""

    model_name: str
    dataset_name: str
    input_kind: str  # "image", "event", "text", or "sequence"

    @property
    def key(self) -> str:
        """Canonical identifier, e.g. ``"vgg16/cifar10"``."""
        return f"{self.model_name}/{self.dataset_name}"


#: The model/dataset pairs evaluated in Fig. 8 and Table 4 of the paper.
PAPER_WORKLOADS: tuple[ModelSpec, ...] = (
    ModelSpec("vgg16", "cifar10", "image"),
    ModelSpec("vgg16", "cifar100", "image"),
    ModelSpec("resnet18", "cifar10", "image"),
    ModelSpec("resnet18", "cifar100", "image"),
    ModelSpec("spikformer", "cifar10dvs", "event"),
    ModelSpec("spikformer", "cifar100", "image"),
    ModelSpec("sdt", "cifar10dvs", "event"),
    ModelSpec("sdt", "cifar100", "image"),
    ModelSpec("spikebert", "sst2", "text"),
    ModelSpec("spikebert", "sst5", "text"),
    ModelSpec("spikingbert", "sst2", "text"),
    ModelSpec("spikingbert", "mnli", "text"),
)


class Embedding(Layer):
    """Token-embedding lookup for the text (BERT-style) models."""

    def __init__(
        self,
        vocab_size: int,
        embed_dim: int,
        *,
        name: str = "embedding",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(name)
        if vocab_size < 1 or embed_dim < 1:
            raise ValueError("vocab_size and embed_dim must be >= 1")
        rng = rng or np.random.default_rng(0)
        self.weight = rng.normal(0.0, 0.5, size=(vocab_size, embed_dim))
        self.weight_grad = np.zeros_like(self.weight)
        self._last_tokens: np.ndarray | None = None

    def forward(self, tokens: np.ndarray) -> np.ndarray:
        tokens = np.asarray(tokens)
        if not np.issubdtype(tokens.dtype, np.integer):
            tokens = tokens.astype(np.int64)
        self._last_tokens = tokens
        return self.weight[tokens]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._last_tokens is None:
            raise RuntimeError("backward called before forward")
        grad_output = np.asarray(grad_output, dtype=np.float64)
        np.add.at(self.weight_grad, self._last_tokens.reshape(-1),
                  grad_output.reshape(-1, grad_output.shape[-1]))
        return np.zeros(self._last_tokens.shape, dtype=np.float64)

    def parameters(self) -> dict[str, np.ndarray]:
        return {"weight": self.weight}

    def gradients(self) -> dict[str, np.ndarray]:
        return {"weight": self.weight_grad}

    def zero_gradients(self) -> None:
        self.weight_grad[...] = 0.0


class TokensToSequence(Layer):
    """Reshape a flattened ``(B*T_tok, D)`` tensor back to ``(B, T_tok, D)``."""

    def __init__(self, tokens: int, *, name: str = "to_sequence") -> None:
        super().__init__(name)
        self.tokens = tokens

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return x.reshape(-1, self.tokens, x.shape[-1])

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = np.asarray(grad_output, dtype=np.float64)
        return grad.reshape(-1, grad.shape[-1])


class SequencePool(Layer):
    """Mean-pool a ``(B, T_tok, D)`` sequence over the token dimension."""

    def __init__(self, *, name: str = "seq_pool") -> None:
        super().__init__(name)
        self._last_tokens: int | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._last_tokens = x.shape[1]
        return x.mean(axis=1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._last_tokens is None:
            raise RuntimeError("backward called before forward")
        grad = np.asarray(grad_output, dtype=np.float64)
        return np.repeat(grad[:, None, :], self._last_tokens, axis=1) / self._last_tokens


class PatchEmbedding(Layer):
    """Convolutional patch embedding producing spiking token sequences."""

    def __init__(
        self,
        in_channels: int,
        embed_dim: int,
        patch_size: int,
        image_size: int,
        *,
        name: str = "patch_embed",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(name)
        if image_size % patch_size:
            raise ValueError("image_size must be divisible by patch_size")
        rng = rng or np.random.default_rng(0)
        self.conv = Conv2d(
            in_channels,
            embed_dim,
            patch_size,
            stride=patch_size,
            padding=0,
            name=f"{name}.proj",
            rng=rng,
        )
        self.bn = BatchNorm(embed_dim, name=f"{name}.bn")
        self.lif = LIFLayer(name=f"{name}.lif", surrogate=ArctanSurrogate())
        self.num_tokens = (image_size // patch_size) ** 2
        self.embed_dim = embed_dim

    def children(self) -> list[Layer]:
        return [self.conv, self.bn, self.lif]

    def matmul_layers(self) -> list[MatmulLayer]:
        return [self.conv]

    def forward(self, x: np.ndarray) -> np.ndarray:
        feature = self.lif.forward(self.bn.forward(self.conv.forward(x)))
        batch, channels, height, width = feature.shape
        return feature.reshape(batch, channels, height * width).transpose(0, 2, 1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = np.asarray(grad_output, dtype=np.float64)
        batch, tokens, channels = grad.shape
        side = int(np.sqrt(tokens))
        grad_feature = grad.transpose(0, 2, 1).reshape(batch, channels, side, side)
        return self.conv.backward(self.bn.backward(self.lif.backward(grad_feature)))

    def reset_state(self) -> None:
        self.lif.reset_state()

    def parameters(self) -> dict[str, np.ndarray]:
        params = {}
        for child in (self.conv, self.bn):
            for key, value in child.parameters().items():
                params[f"{child.name}.{key}"] = value
        return params

    def gradients(self) -> dict[str, np.ndarray]:
        grads = {}
        for child in (self.conv, self.bn):
            for key, value in child.gradients().items():
                grads[f"{child.name}.{key}"] = value
        return grads

    def zero_gradients(self) -> None:
        self.conv.zero_gradients()
        self.bn.zero_gradients()


class SpikingResidualBlock(Layer):
    """Basic spiking ResNet block: two 3x3 convolutions with a shortcut."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        *,
        stride: int = 1,
        threshold: float = 1.0,
        name: str = "resblock",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(name)
        rng = rng or np.random.default_rng(0)
        self.conv1 = Conv2d(
            in_channels, out_channels, 3, stride=stride, padding=1,
            name=f"{name}.conv1", rng=rng,
        )
        self.bn1 = BatchNorm(out_channels, name=f"{name}.bn1")
        self.lif1 = LIFLayer(name=f"{name}.lif1", threshold=threshold)
        self.conv2 = Conv2d(
            out_channels, out_channels, 3, stride=1, padding=1,
            name=f"{name}.conv2", rng=rng,
        )
        self.bn2 = BatchNorm(out_channels, name=f"{name}.bn2")
        self.lif2 = LIFLayer(name=f"{name}.lif2", threshold=threshold)
        self.downsample: Conv2d | None = None
        if stride != 1 or in_channels != out_channels:
            self.downsample = Conv2d(
                in_channels, out_channels, 1, stride=stride, padding=0,
                name=f"{name}.down", rng=rng,
            )
        self._last_input: np.ndarray | None = None

    def children(self) -> list[Layer]:
        layers: list[Layer] = [self.conv1, self.bn1, self.lif1, self.conv2, self.bn2, self.lif2]
        if self.downsample is not None:
            layers.append(self.downsample)
        return layers

    def matmul_layers(self) -> list[MatmulLayer]:
        layers: list[MatmulLayer] = [self.conv1, self.conv2]
        if self.downsample is not None:
            layers.append(self.downsample)
        return layers

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._last_input = np.asarray(x, dtype=np.float64)
        out = self.lif1.forward(self.bn1.forward(self.conv1.forward(x)))
        out = self.bn2.forward(self.conv2.forward(out))
        shortcut = x if self.downsample is None else self.downsample.forward(x)
        return self.lif2.forward(out + shortcut)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.lif2.backward(np.asarray(grad_output, dtype=np.float64))
        grad_main = self.conv2.backward(self.bn2.backward(grad))
        grad_main = self.conv1.backward(self.bn1.backward(self.lif1.backward(grad_main)))
        grad_short = grad if self.downsample is None else self.downsample.backward(grad)
        return grad_main + grad_short

    def reset_state(self) -> None:
        self.lif1.reset_state()
        self.lif2.reset_state()

    def parameters(self) -> dict[str, np.ndarray]:
        params = {}
        for child in self.children():
            for key, value in child.parameters().items():
                params[f"{child.name}.{key}"] = value
        return params

    def gradients(self) -> dict[str, np.ndarray]:
        grads = {}
        for child in self.children():
            for key, value in child.gradients().items():
                grads[f"{child.name}.{key}"] = value
        return grads

    def zero_gradients(self) -> None:
        for child in self.children():
            child.zero_gradients()


# --------------------------------------------------------------------- #
# Builders
# --------------------------------------------------------------------- #
def build_spiking_vgg(
    *,
    num_classes: int = 10,
    in_channels: int = 3,
    image_size: int = 16,
    channels: tuple[int, ...] = (16, 32, 64),
    num_steps: int = 4,
    seed: int = 0,
    threshold: float = 1.4,
    name: str = "vgg16",
) -> SpikingNetwork:
    """Build a scaled spiking VGG: conv/BN/LIF blocks separated by pooling.

    ``threshold`` sets the LIF firing threshold of the hidden layers; the
    default keeps the average activation bit density near the ~10 % the
    paper reports for spiking CNNs.
    """
    rng = np.random.default_rng(seed)
    layers: list[Layer] = []
    current_channels = in_channels
    current_size = image_size
    for stage, width in enumerate(channels):
        layers.append(
            Conv2d(current_channels, width, 3, padding=1, name=f"conv{stage}a", rng=rng)
        )
        layers.append(BatchNorm(width, name=f"bn{stage}a"))
        layers.append(LIFLayer(name=f"lif{stage}a", threshold=threshold))
        layers.append(Conv2d(width, width, 3, padding=1, name=f"conv{stage}b", rng=rng))
        layers.append(BatchNorm(width, name=f"bn{stage}b"))
        layers.append(LIFLayer(name=f"lif{stage}b", threshold=threshold))
        # Max pooling keeps activations binary, so the next convolution's
        # GEMM input remains a spike matrix Phi can decompose.
        layers.append(MaxPool2d(2, name=f"pool{stage}"))
        current_channels = width
        current_size //= 2
    layers.append(Flatten(name="flatten"))
    feature_dim = current_channels * current_size * current_size
    layers.append(Linear(feature_dim, 128, name="fc1", rng=rng))
    layers.append(LIFLayer(name="fc1_lif", threshold=threshold))
    layers.append(Linear(128, num_classes, name="classifier", rng=rng))
    return SpikingNetwork(layers, num_steps=num_steps, name=name)


def build_spiking_resnet(
    *,
    num_classes: int = 10,
    in_channels: int = 3,
    image_size: int = 16,
    channels: tuple[int, ...] = (16, 32),
    blocks_per_stage: int = 2,
    num_steps: int = 4,
    seed: int = 0,
    threshold: float = 1.4,
    name: str = "resnet18",
) -> SpikingNetwork:
    """Build a scaled spiking ResNet with basic residual blocks.

    ``threshold`` sets the LIF firing threshold (see
    :func:`build_spiking_vgg`).
    """
    rng = np.random.default_rng(seed)
    layers: list[Layer] = [
        Conv2d(in_channels, channels[0], 3, padding=1, name="stem_conv", rng=rng),
        BatchNorm(channels[0], name="stem_bn"),
        LIFLayer(name="stem_lif", threshold=threshold),
    ]
    current_channels = channels[0]
    current_size = image_size
    for stage, width in enumerate(channels):
        for block in range(blocks_per_stage):
            stride = 2 if (block == 0 and stage > 0) else 1
            layers.append(
                SpikingResidualBlock(
                    current_channels,
                    width,
                    stride=stride,
                    threshold=threshold,
                    name=f"stage{stage}_block{block}",
                    rng=rng,
                )
            )
            current_channels = width
            if stride == 2:
                current_size //= 2
    layers.append(AvgPool2d(current_size, name="global_pool"))
    layers.append(Flatten(name="flatten"))
    layers.append(Linear(current_channels, num_classes, name="classifier", rng=rng))
    return SpikingNetwork(layers, num_steps=num_steps, name=name)


def build_spikformer(
    *,
    num_classes: int = 10,
    in_channels: int = 3,
    image_size: int = 16,
    embed_dim: int = 32,
    depth: int = 2,
    num_heads: int = 2,
    patch_size: int = 4,
    num_steps: int = 4,
    seed: int = 0,
    name: str = "spikformer",
) -> SpikingNetwork:
    """Build a scaled Spikformer: patch embedding + SSA encoder blocks."""
    rng = np.random.default_rng(seed)
    layers: list[Layer] = [
        PatchEmbedding(in_channels, embed_dim, patch_size, image_size,
                       name="patch_embed", rng=rng),
    ]
    for i in range(depth):
        layers.append(
            SpikingTransformerBlock(embed_dim, num_heads, name=f"block{i}", rng=rng)
        )
    layers.append(SequencePool(name="pool"))
    layers.append(Linear(embed_dim, num_classes, name="classifier", rng=rng))
    return SpikingNetwork(layers, num_steps=num_steps, name=name)


def build_sdt(
    *,
    num_classes: int = 10,
    in_channels: int = 3,
    image_size: int = 16,
    embed_dim: int = 48,
    depth: int = 2,
    num_heads: int = 4,
    patch_size: int = 4,
    num_steps: int = 4,
    seed: int = 1,
    name: str = "sdt",
) -> SpikingNetwork:
    """Build a scaled Spike-driven Transformer (SDT).

    SDT shares Spikformer's macro-architecture but uses a wider embedding,
    more heads and a leaner MLP ratio; at simulator granularity those are
    the properties that shape its activation matrices.
    """
    rng = np.random.default_rng(seed)
    layers: list[Layer] = [
        PatchEmbedding(in_channels, embed_dim, patch_size, image_size,
                       name="patch_embed", rng=rng),
    ]
    for i in range(depth):
        layers.append(
            SpikingTransformerBlock(
                embed_dim, num_heads, mlp_ratio=1.5, name=f"block{i}", rng=rng
            )
        )
    layers.append(SequencePool(name="pool"))
    layers.append(Linear(embed_dim, num_classes, name="classifier", rng=rng))
    return SpikingNetwork(layers, num_steps=num_steps, name=name)


def _build_text_transformer(
    *,
    num_classes: int,
    vocab_size: int,
    seq_len: int,
    embed_dim: int,
    depth: int,
    num_heads: int,
    num_steps: int,
    seed: int,
    name: str,
) -> SpikingNetwork:
    rng = np.random.default_rng(seed)
    layers: list[Layer] = [
        Embedding(vocab_size, embed_dim, name="embedding", rng=rng),
        LIFLayer(name="embed_lif"),
    ]
    for i in range(depth):
        layers.append(
            SpikingTransformerBlock(embed_dim, num_heads, name=f"block{i}", rng=rng)
        )
    layers.append(SequencePool(name="pool"))
    layers.append(Linear(embed_dim, num_classes, name="classifier", rng=rng))
    network = SpikingNetwork(layers, num_steps=num_steps, name=name)
    network.seq_len = seq_len  # informational; used by workload generators
    return network


def build_spikebert(
    *,
    num_classes: int = 2,
    vocab_size: int = 256,
    seq_len: int = 16,
    embed_dim: int = 32,
    depth: int = 2,
    num_heads: int = 2,
    num_steps: int = 4,
    seed: int = 2,
    name: str = "spikebert",
) -> SpikingNetwork:
    """Build a scaled SpikeBERT text classifier."""
    return _build_text_transformer(
        num_classes=num_classes, vocab_size=vocab_size, seq_len=seq_len,
        embed_dim=embed_dim, depth=depth, num_heads=num_heads,
        num_steps=num_steps, seed=seed, name=name,
    )


def build_spikingbert(
    *,
    num_classes: int = 2,
    vocab_size: int = 256,
    seq_len: int = 16,
    embed_dim: int = 48,
    depth: int = 3,
    num_heads: int = 4,
    num_steps: int = 4,
    seed: int = 3,
    name: str = "spikingbert",
) -> SpikingNetwork:
    """Build a scaled SpikingBERT text classifier (deeper/wider than SpikeBERT)."""
    return _build_text_transformer(
        num_classes=num_classes, vocab_size=vocab_size, seq_len=seq_len,
        embed_dim=embed_dim, depth=depth, num_heads=num_heads,
        num_steps=num_steps, seed=seed, name=name,
    )


def build_spiking_rnn(
    *,
    num_classes: int = 10,
    num_features: int = 32,
    hidden_sizes: tuple[int, ...] = (64, 48),
    num_steps: int = 4,
    seed: int = 4,
    threshold: float = 1.0,
    name: str = "spikingrnn",
) -> SpikingNetwork:
    """Build a small recurrent SNN (speech-commands-shaped SpikingRNN).

    A stack of :class:`~repro.snn.recurrent.RecurrentSpikingCell` layers
    over binary feature frames, closed by a linear readout.  Unlike the
    feed-forward zoo models, every hidden layer carries leaky state *and*
    a recurrent spike GEMM across time steps, so its per-timestep
    activation matrices exhibit the temporal sparsity structure the
    ``temporal`` experiment sweeps.
    """
    rng = np.random.default_rng(seed)
    layers: list[Layer] = []
    width = num_features
    for index, hidden in enumerate(hidden_sizes):
        layers.append(
            RecurrentSpikingCell(
                width, hidden, threshold=threshold, name=f"rnn{index}", rng=rng
            )
        )
        width = hidden
    layers.append(Linear(width, num_classes, name="classifier", rng=rng))
    return SpikingNetwork(layers, num_steps=num_steps, name=name)


_BUILDERS = {
    "vgg16": build_spiking_vgg,
    "resnet18": build_spiking_resnet,
    "spikformer": build_spikformer,
    "sdt": build_sdt,
    "spikebert": build_spikebert,
    "spikingbert": build_spikingbert,
    "spikingrnn": build_spiking_rnn,
}


def build_model(model_name: str, **kwargs) -> SpikingNetwork:
    """Build a model from the zoo by name."""
    try:
        builder = _BUILDERS[model_name]
    except KeyError:
        raise ValueError(
            f"unknown model {model_name!r}; available: {sorted(_BUILDERS)}"
        ) from None
    return builder(**kwargs)


def available_models() -> list[str]:
    """Names of all models in the zoo."""
    return sorted(_BUILDERS)
