"""Spiking neuron models (LIF and IF).

The paper's evaluation uses the Leaky-Integrate-and-Fire (LIF) neuron: at
each time step the membrane potential integrates the synaptic input, leaks
towards its resting value, and emits a binary spike (followed by a reset)
whenever it crosses the firing threshold.  The neurons here operate on
arbitrary-shaped NumPy tensors so the same implementation backs linear,
convolutional and attention layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .surrogate import SigmoidSurrogate, SurrogateFn, heaviside


@dataclass
class LIFNeuron:
    """Leaky-Integrate-and-Fire neuron operating on tensors.

    Parameters
    ----------
    threshold:
        Firing threshold ``V_th``.
    tau:
        Membrane time constant; the leak factor is ``1 - 1/tau``.
    reset_mode:
        ``"hard"`` resets the membrane to 0 after a spike, ``"soft"``
        subtracts the threshold (keeps residual charge).
    surrogate:
        Surrogate gradient used during training.
    """

    threshold: float = 1.0
    tau: float = 2.0
    reset_mode: str = "hard"
    surrogate: SurrogateFn = field(default_factory=SigmoidSurrogate)

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.tau < 1.0:
            raise ValueError("tau must be >= 1")
        if self.reset_mode not in ("hard", "soft"):
            raise ValueError("reset_mode must be 'hard' or 'soft'")
        self._membrane: np.ndarray | None = None
        self._last_pre_reset: np.ndarray | None = None

    @property
    def leak(self) -> float:
        """Multiplicative membrane decay applied each step."""
        return 1.0 - 1.0 / self.tau

    @property
    def membrane(self) -> np.ndarray | None:
        """Current membrane potential (None before the first step)."""
        return self._membrane

    @property
    def last_pre_reset_membrane(self) -> np.ndarray | None:
        """Membrane potential just before the last reset (for surrogates)."""
        return self._last_pre_reset

    def reset_state(self) -> None:
        """Clear the membrane state (call between input samples)."""
        self._membrane = None
        self._last_pre_reset = None

    def step(self, current: np.ndarray) -> np.ndarray:
        """Advance one time step and return the emitted binary spikes."""
        current = np.asarray(current, dtype=np.float64)
        if self._membrane is None or self._membrane.shape != current.shape:
            self._membrane = np.zeros_like(current)

        self._membrane = self.leak * self._membrane + current
        self._last_pre_reset = self._membrane.copy()
        spikes = heaviside(self._membrane - self.threshold)

        if self.reset_mode == "hard":
            self._membrane = np.where(spikes > 0, 0.0, self._membrane)
        else:
            self._membrane = self._membrane - spikes * self.threshold
        return spikes

    def surrogate_grad(self) -> np.ndarray:
        """Surrogate derivative d(spike)/d(membrane) at the last step."""
        if self._last_pre_reset is None:
            raise RuntimeError("surrogate_grad called before any step")
        return self.surrogate(self._last_pre_reset - self.threshold)

    def run(self, currents: np.ndarray) -> np.ndarray:
        """Run the neuron over a ``(T, ...)`` input and return spike trains."""
        currents = np.asarray(currents, dtype=np.float64)
        self.reset_state()
        spikes = np.zeros_like(currents)
        for t in range(currents.shape[0]):
            spikes[t] = self.step(currents[t])
        return spikes


@dataclass
class IFNeuron(LIFNeuron):
    """Integrate-and-Fire neuron (no leak); a LIF with infinite tau."""

    tau: float = float("inf")

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.reset_mode not in ("hard", "soft"):
            raise ValueError("reset_mode must be 'hard' or 'soft'")
        self._membrane = None
        self._last_pre_reset = None

    @property
    def leak(self) -> float:
        """IF neurons do not leak."""
        return 1.0


@dataclass
class FewSpikesNeuron:
    """Few-Spikes (FS) neuron used by the Stellar baseline.

    The FS neuron (Stöckl & Maass, 2021) encodes an analog value with at
    most ``num_steps`` spikes using exponentially decaying output weights.
    Stellar relies on it to raise activation sparsity; we provide it so the
    Stellar baseline model operates on comparable spike trains.
    """

    num_steps: int = 4
    threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.num_steps < 1:
            raise ValueError("num_steps must be >= 1")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Encode analog values into a ``(num_steps, ...)`` spike train."""
        values = np.asarray(values, dtype=np.float64)
        spikes = np.zeros((self.num_steps,) + values.shape, dtype=np.float64)
        residual = np.clip(values, 0.0, None).copy()
        for t in range(self.num_steps):
            weight = self.threshold * (2.0 ** -(t + 1)) * 2.0
            fire = residual >= weight
            spikes[t] = fire.astype(np.float64)
            residual = residual - fire * weight
        return spikes

    def decode(self, spikes: np.ndarray) -> np.ndarray:
        """Reconstruct the analog value from a spike train."""
        spikes = np.asarray(spikes, dtype=np.float64)
        if spikes.shape[0] != self.num_steps:
            raise ValueError(
                f"expected {self.num_steps} time steps, got {spikes.shape[0]}"
            )
        weights = np.array(
            [self.threshold * (2.0 ** -(t + 1)) * 2.0 for t in range(self.num_steps)]
        )
        return np.tensordot(weights, spikes, axes=(0, 0))
