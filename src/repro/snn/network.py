"""Sequential spiking-network container with activation recording.

:class:`SpikingNetwork` chains layers, loops them over the temporal
dimension, and rate-decodes the output (summed logits over time steps).
Its most important feature for Phi is *activation recording*: every GEMM
layer's binary input matrix can be captured and handed to the calibration
stage or to the accelerator simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from .layers import Layer, LIFLayer, MatmulLayer


def iter_layers(layers: Iterable[Layer]) -> list[Layer]:
    """Flatten a layer list, descending into composite layers."""
    flat: list[Layer] = []
    for layer in layers:
        flat.append(layer)
        children = getattr(layer, "children", None)
        if callable(children):
            flat.extend(iter_layers(children()))
    return flat


@dataclass
class ActivationRecord:
    """Recorded GEMM inputs of one layer, stacked over time steps/samples.

    Attributes
    ----------
    layer_name:
        Name of the recorded :class:`MatmulLayer`.
    matrices:
        List of per-step ``(M, K)`` input matrices.
    output_width:
        The GEMM N dimension (needed by the PAFT regulariser).
    """

    layer_name: str
    matrices: list[np.ndarray] = field(default_factory=list)
    output_width: int = 0

    def stacked(self) -> np.ndarray:
        """All recorded rows stacked into a single ``(sum M, K)`` matrix."""
        if not self.matrices:
            raise ValueError(f"no activations recorded for {self.layer_name!r}")
        return np.vstack(self.matrices)

    @property
    def is_binary(self) -> bool:
        """True when every recorded matrix contains only 0/1 values."""
        return all(
            np.all(np.isin(np.unique(m), (0.0, 1.0))) for m in self.matrices
        )

    @property
    def bit_density(self) -> float:
        """Fraction of nonzero entries across all recorded matrices."""
        total = sum(m.size for m in self.matrices)
        if total == 0:
            return 0.0
        nonzero = sum(int(np.count_nonzero(m)) for m in self.matrices)
        return nonzero / total


class SpikingNetwork:
    """A feed-forward SNN evaluated over ``num_steps`` time steps.

    Parameters
    ----------
    layers:
        The layer sequence; composite layers (transformer blocks) are
        traversed recursively when collecting GEMM layers.
    num_steps:
        Number of simulation time steps ``T``.
    name:
        Network identifier (used in experiment reports).
    encode_fn:
        Optional callable mapping an input batch to a ``(T, ...)`` spike /
        current train.  When omitted the input is repeated at every step
        (direct coding); inputs that already carry a leading time dimension
        of length ``num_steps`` are used as-is.
    """

    def __init__(
        self,
        layers: Sequence[Layer],
        *,
        num_steps: int = 4,
        name: str = "snn",
        encode_fn=None,
    ) -> None:
        if not layers:
            raise ValueError("a network needs at least one layer")
        if num_steps < 1:
            raise ValueError("num_steps must be >= 1")
        self.layers = list(layers)
        self.num_steps = num_steps
        self.name = name
        self.encode_fn = encode_fn
        self._recording = False
        self._records: dict[str, ActivationRecord] = {}

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #
    def all_layers(self) -> list[Layer]:
        """Every layer including those nested inside composite blocks."""
        return iter_layers(self.layers)

    def matmul_layers(self) -> list[MatmulLayer]:
        """All GEMM layers in execution order."""
        return [l for l in self.all_layers() if isinstance(l, MatmulLayer)]

    def lif_layers(self) -> list[LIFLayer]:
        """All spiking layers in execution order."""
        return [l for l in self.all_layers() if isinstance(l, LIFLayer)]

    def parameters(self) -> dict[str, np.ndarray]:
        """All trainable parameters keyed by ``layer_name.param_name``."""
        params = {}
        for layer in self.layers:
            for key, value in layer.parameters().items():
                params[f"{layer.name}.{key}"] = value
        return params

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(int(np.prod(v.shape)) for v in self.parameters().values())

    # ------------------------------------------------------------------ #
    # State management
    # ------------------------------------------------------------------ #
    def reset_state(self) -> None:
        """Reset membranes (call before every new input batch)."""
        for layer in self.layers:
            layer.reset_state()

    def zero_gradients(self) -> None:
        """Clear accumulated parameter gradients."""
        for layer in self.layers:
            layer.zero_gradients()

    def set_training(self, training: bool) -> None:
        """Toggle training mode on layers that distinguish it (BatchNorm)."""
        for layer in self.all_layers():
            if hasattr(layer, "training"):
                layer.training = training

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def start_recording(self) -> None:
        """Begin capturing GEMM input matrices on subsequent forwards."""
        self._recording = True
        self._records = {
            layer.name: ActivationRecord(layer_name=layer.name)
            for layer in self.matmul_layers()
        }

    def stop_recording(self) -> dict[str, ActivationRecord]:
        """Stop capturing and return the records gathered so far."""
        self._recording = False
        return self._records

    def get_records(self) -> dict[str, ActivationRecord]:
        """Records gathered since :meth:`start_recording`."""
        return self._records

    def _capture(self) -> None:
        for layer in self.matmul_layers():
            record = self._records[layer.name]
            record.matrices.append(layer.input_matrix().copy())
            record.output_width = layer.output_width

    # ------------------------------------------------------------------ #
    # Forward / backward
    # ------------------------------------------------------------------ #
    def _encode(self, x: np.ndarray, pre_encoded: bool = False) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if pre_encoded:
            if x.shape[0] != self.num_steps:
                raise ValueError(
                    f"pre-encoded input must have leading dimension {self.num_steps}, "
                    f"got {x.shape[0]}"
                )
            return x
        if self.encode_fn is not None:
            return np.asarray(self.encode_fn(x), dtype=np.float64)
        return np.repeat(x[None], self.num_steps, axis=0)

    def step_forward(self, x_t: np.ndarray) -> np.ndarray:
        """Run a single time step through all layers."""
        out = x_t
        for layer in self.layers:
            out = layer.forward(out)
        if self._recording:
            self._capture()
        return out

    def step_backward(
        self, grad_output: np.ndarray, paft_gradients: dict[str, np.ndarray] | None = None
    ) -> np.ndarray:
        """Backpropagate through the most recent :meth:`step_forward`.

        Parameters
        ----------
        grad_output:
            Gradient of the loss with respect to the step's output.
        paft_gradients:
            Optional mapping from GEMM layer name to a gradient on that
            layer's *input matrix* (the PAFT alignment pressure); it is
            projected back onto the layer input and added to the flowing
            gradient.
        """
        paft_gradients = paft_gradients or {}
        grad = np.asarray(grad_output, dtype=np.float64)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
            if isinstance(layer, MatmulLayer) and layer.name in paft_gradients:
                grad = grad + layer.project_input_matrix_gradient(
                    paft_gradients[layer.name]
                )
        return grad

    def forward(self, x: np.ndarray, *, pre_encoded: bool = False) -> np.ndarray:
        """Full temporal forward pass; returns summed (rate-decoded) logits.

        Parameters
        ----------
        x:
            Input batch, or a pre-encoded ``(T, batch, ...)`` spike train
            when ``pre_encoded=True`` (used for event-stream data).
        """
        train = self._encode(x, pre_encoded=pre_encoded)
        self.reset_state()
        logits = None
        for t in range(self.num_steps):
            out = self.step_forward(train[t])
            logits = out if logits is None else logits + out
        return logits / self.num_steps

    def record_activations(
        self, x: np.ndarray, *, pre_encoded: bool = False
    ) -> tuple[np.ndarray, dict[str, ActivationRecord]]:
        """Forward pass that also captures every GEMM layer's inputs."""
        self.start_recording()
        logits = self.forward(x, pre_encoded=pre_encoded)
        return logits, self.stop_recording()

    def predict(self, x: np.ndarray, *, pre_encoded: bool = False) -> np.ndarray:
        """Class predictions (argmax of rate-decoded logits)."""
        return np.argmax(self.forward(x, pre_encoded=pre_encoded), axis=-1)

    def accuracy(
        self, x: np.ndarray, labels: np.ndarray, *, pre_encoded: bool = False
    ) -> float:
        """Classification accuracy on a batch."""
        predictions = self.predict(x, pre_encoded=pre_encoded)
        labels = np.asarray(labels)
        return float(np.mean(predictions == labels))

    def firing_rates(self) -> dict[str, float]:
        """Average firing rate per spiking layer since the last reset."""
        return {l.name: l.record.firing_rate for l in self.lif_layers()}

    def reset_firing_records(self) -> None:
        """Clear per-layer spike statistics."""
        for layer in self.lif_layers():
            layer.reset_record()
