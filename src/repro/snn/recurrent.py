"""Recurrent spiking layers: leaky state carried across time steps.

The paper's zoo is feed-forward; this module adds the recurrent workload
family (ROADMAP item 3).  A :class:`RecurrentSpikingCell` combines an
input projection with a *recurrent* projection whose GEMM input is the
cell's own spike output from the previous time step.  Because both
projections are ordinary :class:`~repro.snn.layers.Linear` layers, the
existing activation-recording machinery captures one binary ``(B, K)``
matrix per time step for each — exactly the per-timestep spike matrices
the temporal workload builder unrolls into
:class:`~repro.workloads.workload.LayerWorkload` GEMMs.
"""

from __future__ import annotations

import numpy as np

from .layers import Layer, LIFLayer, Linear, MatmulLayer


class RecurrentSpikingCell(Layer):
    """A leaky recurrent spiking cell.

    At every time step the cell computes::

        current_t = W_in @ x_t + W_rec @ s_{t-1}
        s_t       = LIF(current_t)

    where ``s_{t-1}`` is the cell's own binary spike output from the
    previous step (a zero matrix on the first step).  The recurrent
    projection therefore always consumes a *binary* matrix, so its
    recorded GEMM is a spike workload Phi can decompose — the temporal
    sparsity structure feed-forward models never produce.

    The backward pass is one-step truncated BPTT: gradients accumulate
    into both projections' weights, but the gradient flowing to the
    previous step's hidden state is dropped.

    Parameters
    ----------
    in_features, hidden_features:
        Input width and recurrent state width.
    threshold, tau:
        LIF firing threshold and membrane time constant.
    rng:
        Generator for weight initialisation.
    """

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        *,
        threshold: float = 1.0,
        tau: float = 2.0,
        name: str = "rnn_cell",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(name)
        if hidden_features < 1:
            raise ValueError("hidden_features must be >= 1")
        rng = rng or np.random.default_rng(0)
        self.hidden_features = hidden_features
        self.input_proj = Linear(
            in_features, hidden_features, name=f"{name}.input", rng=rng
        )
        self.recurrent_proj = Linear(
            hidden_features, hidden_features, bias=False,
            name=f"{name}.recurrent", rng=rng,
        )
        self.lif = LIFLayer(name=f"{name}.lif", threshold=threshold, tau=tau)
        self._hidden: np.ndarray | None = None

    def children(self) -> list[Layer]:
        """Constituent layers (descended into by :func:`iter_layers`)."""
        return [self.input_proj, self.recurrent_proj, self.lif]

    def matmul_layers(self) -> list[MatmulLayer]:
        """The two GEMM projections captured during recording."""
        return [self.input_proj, self.recurrent_proj]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        batch = x.shape[0]
        if self._hidden is None or self._hidden.shape[0] != batch:
            self._hidden = np.zeros((batch, self.hidden_features))
        current = self.input_proj.forward(x)
        # The recurrent projection runs on *every* step (a zero matrix on
        # step 0) so its recorded GEMM input exists for each time step.
        current = current + self.recurrent_proj.forward(self._hidden)
        spikes = self.lif.forward(current)
        self._hidden = spikes
        return spikes

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.lif.backward(np.asarray(grad_output, dtype=np.float64))
        # Truncated BPTT: accumulate recurrent weight gradients but drop
        # the gradient flowing to the previous step's spikes.
        self.recurrent_proj.backward(grad)
        return self.input_proj.backward(grad)

    def reset_state(self) -> None:
        self.lif.reset_state()
        self._hidden = None

    def parameters(self) -> dict[str, np.ndarray]:
        params = {}
        for child in (self.input_proj, self.recurrent_proj):
            for key, value in child.parameters().items():
                params[f"{child.name}.{key}"] = value
        return params

    def gradients(self) -> dict[str, np.ndarray]:
        grads = {}
        for child in (self.input_proj, self.recurrent_proj):
            for key, value in child.gradients().items():
                grads[f"{child.name}.{key}"] = value
        return grads

    def zero_gradients(self) -> None:
        self.input_proj.zero_gradients()
        self.recurrent_proj.zero_gradients()
