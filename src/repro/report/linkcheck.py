"""Self-contained Markdown link checker for the repo's documentation.

Checks every inline Markdown link in the given files:

* relative file links must point at an existing file or directory
  (resolved against the containing file's directory),
* in-document ``#anchor`` links must match a heading of the same file
  (GitHub slug rules, approximated the same way the report generator
  builds its anchors),
* ``http(s)``/``mailto`` links are skipped (no network access in CI).

Usage::

    python -m repro.report.linkcheck README.md DESIGN.md report/REPRODUCTION.md
"""

from __future__ import annotations

import pathlib
import re
import sys

#: Inline Markdown links: [text](target) — images included via the ! prefix.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def slugify(heading: str) -> str:
    """GitHub-style anchor slug of one heading line."""
    text = heading.strip().lower()
    text = "".join(c for c in text if c.isalnum() or c in " -")
    return text.replace(" ", "-")


def document_anchors(text: str) -> set[str]:
    """All heading anchors defined by a Markdown document."""
    return {slugify(match.group(1)) for match in _HEADING_RE.finditer(text)}


def check_file(path: pathlib.Path) -> list[str]:
    """Check one Markdown file; returns a list of error strings.

    Parameters
    ----------
    path:
        The Markdown file to scan.

    Returns
    -------
    list of str
        One ``file: message`` entry per broken link (empty = clean).
    """
    errors: list[str] = []
    try:
        text = path.read_text()
    except OSError as exc:
        return [f"{path}: unreadable ({exc})"]
    anchors = document_anchors(text)
    scannable = _CODE_FENCE_RE.sub("", text)
    for match in _LINK_RE.finditer(scannable):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if target[1:] not in anchors:
                errors.append(f"{path}: broken anchor {target!r}")
            continue
        file_part, _, anchor = target.partition("#")
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            errors.append(f"{path}: broken link {target!r} -> {resolved}")
            continue
        if anchor and resolved.is_file() and resolved.suffix == ".md":
            if slugify(anchor) not in document_anchors(resolved.read_text()):
                errors.append(f"{path}: broken anchor {target!r}")
    return errors


def main(argv: list[str] | None = None) -> int:
    """Check every file given on the command line; 1 on any broken link."""
    paths = [pathlib.Path(arg) for arg in (argv if argv is not None else sys.argv[1:])]
    if not paths:
        print("usage: python -m repro.report.linkcheck FILE.md [FILE.md ...]")
        return 2
    errors: list[str] = []
    for path in paths:
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)
    if not errors:
        print(f"linkcheck: {len(paths)} files OK")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
