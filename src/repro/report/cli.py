"""Command-line entry point of the reproduction-report pipeline.

Examples
--------
Build the full report at the tiny tier (CI smoke artifact)::

    python -m repro.report --scale tiny

Reproduce only two artifacts, four simulator workers wide; a second
invocation is served from the section and sweep caches::

    python -m repro.report --scale small --only fig7,table3 --jobs 4

List everything the registry knows how to reproduce::

    python -m repro.report --list
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from ..experiments.registry import (
    REGISTRY,
    SCALES,
    get_experiment,
    registry_markdown_table,
)
from ..runner.cache import ResultCache, default_cache_dir
from ..runner.engine import SweepEngine
from ..runner.store import ArtifactStore, default_store_dir
from .artifact import (
    ReportArtifact,
    SectionRecord,
    load_section,
    section_cache_key,
    store_section,
)
from .emitters import HAVE_MATPLOTLIB, build_payload


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.report`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.report",
        description=(
            "Run registered experiments and emit a content-addressed "
            "reproduction report (REPRODUCTION.md + data/ + figures/)."
        ),
    )
    parser.add_argument(
        "--scale",
        choices=tuple(SCALES),
        default="small",
        help="experiment scale tier (default: %(default)s)",
    )
    parser.add_argument(
        "--only",
        default="",
        metavar="NAMES",
        help="comma-separated experiment subset (default: all registered)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="simulator worker processes for engine-backed experiments",
    )
    parser.add_argument(
        "--output",
        "-o",
        default="report",
        help="artifact output directory (default: %(default)s)",
    )
    parser.add_argument(
        "--cache-dir",
        default=default_cache_dir(),
        help="sweep/section result cache directory (default: %(default)s)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable both the sweep cache and the section cache",
    )
    parser.add_argument(
        "--store-dir",
        default=default_store_dir(),
        help="shared artifact store directory (default: %(default)s)",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="disable the shared workload/calibration store",
    )
    parser.add_argument(
        "--remote",
        default=None,
        metavar="URL",
        help=(
            "build the report against a running `python -m repro.service "
            "serve` instead of simulating locally"
        ),
    )
    parser.add_argument(
        "--no-figures",
        action="store_true",
        help="skip matplotlib figures even when matplotlib is available",
    )
    parser.add_argument(
        "--quiet", "-q", action="store_true", help="suppress progress output"
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the experiment registry as a Markdown table and exit",
    )
    return parser


def _select_specs(only: str):
    if not only:
        return list(REGISTRY)
    return [get_experiment(name.strip()) for name in only.split(",") if name.strip()]


def main(argv: list[str] | None = None) -> int:
    """Run the report pipeline; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.list:
        print(registry_markdown_table())
        return 0

    specs = _select_specs(args.only)
    client = None
    if args.remote:
        from ..service.client import ServiceClient

        client = ServiceClient(args.remote)
        cache = None
        engine = SweepEngine()  # never run; sections come from the service
    else:
        cache = None if args.no_cache else ResultCache(args.cache_dir)
        store = None if args.no_store else ArtifactStore(args.store_dir)
        engine = SweepEngine(
            cache=cache, jobs=args.jobs, progress=not args.quiet, store=store
        )
    command = f"python -m repro.report --scale {args.scale}"
    if args.only:
        command += f" --only {args.only}"
    if args.remote:
        command += f" --remote {args.remote}"
    artifact = ReportArtifact(
        root=pathlib.Path(args.output),
        scale_name=args.scale,
        command=command,
    )
    if args.no_figures:
        artifact_figures = False
    else:
        artifact_figures = HAVE_MATPLOTLIB
        if not HAVE_MATPLOTLIB and not args.quiet:
            print(
                "note: matplotlib not installed; emitting tables and data "
                "only (pip install matplotlib to add figures)",
                file=sys.stderr,
            )

    start = time.perf_counter()
    with engine:
        for spec in specs:
            key = section_cache_key(spec, args.scale)
            section_start = time.perf_counter()
            if client is not None:
                from ..service.client import ServiceError

                try:
                    job = client.run(spec.name, scale=args.scale)
                except ServiceError as error:
                    print(f"error: [{spec.name}] {error}", file=sys.stderr)
                    return 1
                payload = job["payload"]
                origin = "remote"
            else:
                payload = load_section(cache, key)
                if payload is not None:
                    origin = "cache"
                else:
                    result = spec.run(args.scale, engine=engine)
                    payload = build_payload(spec, result)
                    store_section(cache, key, payload)
                    origin = "run"
            elapsed = time.perf_counter() - section_start
            if not args.quiet:
                print(f"[{spec.name}] {origin} in {elapsed:.2f}s", file=sys.stderr)
            if not artifact_figures:
                payload = dict(payload)
                payload["figure"] = None
            artifact.add_section(
                SectionRecord(
                    spec=spec, payload=payload, origin=origin, elapsed_seconds=elapsed
                )
            )

    report_path = artifact.write()
    total = time.perf_counter() - start
    if client is not None:
        print(
            f"wrote {report_path} ({len(specs)} experiments, {total:.2f}s; "
            f"all sections served by {args.remote})"
        )
        return 0
    stats = engine.stats
    print(
        f"wrote {report_path} ({len(specs)} experiments, {total:.2f}s; "
        f"sweep points: {stats.requested} requested, {stats.cache_hits} "
        f"cache hits, {stats.executed} simulated)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
