"""The report artifact: a content-addressed ``report/`` output tree.

A report run produces:

* ``REPRODUCTION.md`` — the human-readable reproduction report, one
  section per experiment, pairing the paper's claim with the measured
  numbers and the scaled-zoo caveat.
* ``data/<hash>-<name>.json`` — one content-addressed payload file per
  experiment section.  The hash is the SHA-256 prefix of the canonical
  payload JSON, so unchanged results map to identical files across runs
  and any change is visible in the file name.
* ``figures/<name>.png`` — optional matplotlib renderings (skipped when
  matplotlib is unavailable).
* ``manifest.json`` — machine-readable index: experiment -> payload
  hash/path, figure path, origin (run vs cache) and timing.

Section payloads are additionally memoised in the same on-disk
:class:`~repro.runner.ResultCache` the sweep engine uses, keyed by the
(experiment, scale, overrides, code version) tuple — this is what makes a
warm ``python -m repro.report`` run orders of magnitude faster than a
cold one even for harnesses that do no simulator sweeps.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Mapping

from .. import __version__
from ..experiments.registry import ExperimentSpec
from ..runner.cache import ResultCache, cache_key
from ..runner.engine import CACHE_SCHEMA_VERSION
from .emitters import section_markdown

#: Bump when the section payload layout changes (invalidates cached
#: report sections, not sweep records).
REPORT_SCHEMA_VERSION = 1

#: The caveat every report carries (summarised from DESIGN.md).
SCALED_ZOO_CAVEAT = (
    "All numbers are measured on the *scaled model zoo* (see DESIGN.md): "
    "each model family is implemented as a genuine spiking network but at "
    "reduced depth/width, on synthetic datasets with the original "
    "modality, shape and class structure.  Absolute cycles and Joules "
    "therefore do not match the paper; the relative claims (density "
    "trends, accelerator orderings, traffic reductions) are reproduced "
    "from the same mechanisms."
)


def section_cache_key(
    spec: ExperimentSpec,
    scale_name: str,
    overrides: Mapping[str, Any] | None = None,
) -> str:
    """Cache key of one report section.

    Parameters
    ----------
    spec:
        The experiment's registry entry.
    scale_name:
        Scale tier name the section was produced at.
    overrides:
        Extra harness keyword arguments (must be JSON-serialisable).

    Returns
    -------
    str
        SHA-256 key; any change to the experiment name, tier, overrides,
        package version, report schema or the sweep engine's cache
        schema yields a new key.  Hashing the engine schema in means a
        simulator-behaviour bump (``CACHE_SCHEMA_VERSION``) invalidates
        cached report sections together with the sweep records they were
        computed from.
    """
    payload = {
        "report_schema": REPORT_SCHEMA_VERSION,
        "sweep_schema": CACHE_SCHEMA_VERSION,
        "code_version": __version__,
        "experiment": spec.name,
        "scale": scale_name,
        "overrides": json.loads(json.dumps(overrides or {}, sort_keys=True, default=str)),
    }
    return cache_key(payload)


@dataclass
class SectionRecord:
    """One emitted experiment section plus its provenance."""

    spec: ExperimentSpec
    payload: dict
    origin: str  # "run" | "cache"
    elapsed_seconds: float
    data_path: str | None = None
    figure_path: str | None = None


@dataclass
class ReportArtifact:
    """Writer for the content-addressed ``report/`` tree.

    Parameters
    ----------
    root:
        Output directory (created on write).
    scale_name:
        Scale tier the report was produced at.
    command:
        The CLI invocation recorded in the report header.
    """

    root: pathlib.Path
    scale_name: str = "small"
    command: str = ""
    sections: list[SectionRecord] = field(default_factory=list)

    def add_section(self, record: SectionRecord) -> None:
        """Queue one experiment section for the next :meth:`write`."""
        self.sections.append(record)

    # ------------------------------------------------------------------ #
    def _write_payload(self, record: SectionRecord) -> None:
        data_dir = self.root / "data"
        data_dir.mkdir(parents=True, exist_ok=True)
        canonical = json.dumps(record.payload, sort_keys=True, indent=1)
        digest = cache_key(record.payload)[:12]
        name = f"{digest}-{record.spec.name}.json"
        (data_dir / name).write_text(canonical + "\n")
        record.data_path = f"data/{name}"

    def _write_figure(self, record: SectionRecord) -> None:
        from .emitters import HAVE_MATPLOTLIB, render_figure

        figure = record.payload.get("figure")
        if not HAVE_MATPLOTLIB or not figure or not figure.get("panels"):
            return
        figures_dir = self.root / "figures"
        figures_dir.mkdir(parents=True, exist_ok=True)
        path = figures_dir / f"{record.spec.name}.png"
        if render_figure(record.payload, path):
            record.figure_path = f"figures/{record.spec.name}.png"

    def _header(self) -> list[str]:
        lines = [
            "# Phi (ISCA 2025) — reproduction report",
            "",
            "Generated by the `repro.report` pipeline"
            + (f" (`{self.command}`)" if self.command else "")
            + f" at scale tier `{self.scale_name}`, package version "
            f"`{__version__}`.",
            "",
            f"> {SCALED_ZOO_CAVEAT}",
            "",
            "## Coverage",
            "",
            "| Experiment | Reproduces | Section | Origin | Wall time (s) |",
            "|---|---|---|---|---|",
        ]
        for record in self.sections:
            lines.append(
                f"| [`{record.spec.name}`](#{_anchor(record.spec)}) "
                f"| {record.spec.paper_ref} | {record.spec.section} "
                f"| {record.origin} | {record.elapsed_seconds:.2f} |"
            )
        lines.append("")
        return lines

    def write(self) -> pathlib.Path:
        """Write the full artifact tree; returns the REPRODUCTION.md path."""
        self.root.mkdir(parents=True, exist_ok=True)
        for record in self.sections:
            self._write_payload(record)
            self._write_figure(record)

        lines = self._header()
        lines.append("## Results")
        lines.append("")
        for record in self.sections:
            lines.append(
                section_markdown(
                    record.spec,
                    record.payload,
                    figure_path=record.figure_path,
                    data_path=record.data_path,
                )
            )
        report_path = self.root / "REPRODUCTION.md"
        report_path.write_text("\n".join(lines))

        manifest = {
            "schema": REPORT_SCHEMA_VERSION,
            "code_version": __version__,
            "scale": self.scale_name,
            "sections": [
                {
                    "experiment": record.spec.name,
                    "paper_ref": record.spec.paper_ref,
                    "origin": record.origin,
                    "elapsed_seconds": record.elapsed_seconds,
                    "data": record.data_path,
                    "figure": record.figure_path,
                    "hash": cache_key(record.payload),
                }
                for record in self.sections
            ],
        }
        (self.root / "manifest.json").write_text(
            json.dumps(manifest, indent=1, sort_keys=True) + "\n"
        )
        return report_path


def _anchor(spec: ExperimentSpec) -> str:
    """GitHub anchor of one section heading (see ``section_markdown``)."""
    from .linkcheck import slugify

    return slugify(f"{spec.paper_ref} — `{spec.name}`")


def load_section(cache: ResultCache | None, key: str) -> dict | None:
    """Cached section payload for ``key``, or ``None`` on miss/no cache."""
    if cache is None:
        return None
    return cache.get(key)


def store_section(cache: ResultCache | None, key: str, payload: Mapping[str, Any]) -> None:
    """Persist one section payload when a cache is configured."""
    if cache is not None:
        cache.put(key, payload)
