"""Reproduction-report pipeline: registry-driven, cached, self-documenting.

``python -m repro.report`` runs any subset of the experiment registry
(:mod:`repro.experiments.registry`) through the sweep engine, flattens
every result into a JSON section payload (:mod:`repro.report.emitters`),
memoises the payloads in the on-disk result cache, and writes a
content-addressed ``report/`` tree whose ``REPRODUCTION.md`` pairs each
figure/table with the paper's claim and the measured numbers
(:mod:`repro.report.artifact`).
"""

from .artifact import (
    REPORT_SCHEMA_VERSION,
    SCALED_ZOO_CAVEAT,
    ReportArtifact,
    SectionRecord,
    section_cache_key,
)
from .emitters import (
    HAVE_MATPLOTLIB,
    PAYLOAD_BUILDERS,
    build_payload,
    markdown_table,
    render_figure,
    section_markdown,
)

__all__ = [
    "HAVE_MATPLOTLIB",
    "PAYLOAD_BUILDERS",
    "REPORT_SCHEMA_VERSION",
    "ReportArtifact",
    "SCALED_ZOO_CAVEAT",
    "SectionRecord",
    "build_payload",
    "markdown_table",
    "render_figure",
    "section_cache_key",
    "section_markdown",
]
