"""Emitters: harness results -> JSON payloads -> Markdown and figures.

Every registered experiment has a *payload builder* that flattens its
result object into a JSON-serialisable section payload (tables, headline
metrics, notes, and an optional declarative figure).  Everything
downstream — the Markdown rendering, the matplotlib figures and the
content-addressed artifact store — works on payloads only, which is what
lets a warm report run skip the harnesses entirely and rebuild
``REPRODUCTION.md`` from cached JSON.

Builders never see an accelerator model: harness results are derived
from the canonical cache-schema-v3 records of the sweep engine (one
record shape for Phi and every baseline, flattened from
``repro.hw.pipeline.RunResult``), so the builders here are pure
reshaping with no per-accelerator cases.

Figures are optional: matplotlib is not a dependency of this package.
When it is missing, :func:`render_figure` reports figures as
unavailable and the report links the payload JSON instead.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Mapping

from ..experiments.registry import ExperimentSpec

try:  # pragma: no cover - exercised only where matplotlib is installed
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    HAVE_MATPLOTLIB = True
except ImportError:  # pragma: no cover - the common case in CI images
    plt = None
    HAVE_MATPLOTLIB = False

#: Categorical series colors, assigned in fixed order (never cycled past
#: the list; the grouped-bar charts here use at most 7 series).
SERIES_COLORS = (
    "#2a78d6",  # blue
    "#eb6834",  # orange
    "#1baf7a",  # aqua
    "#eda100",  # yellow
    "#e87ba4",  # magenta
    "#008300",  # green
    "#4a3aa7",  # violet
    "#e34948",  # red
)
_SURFACE = "#fcfcfb"
_TEXT = "#0b0b0b"
_TEXT_SECONDARY = "#52514e"
_GRID = "#e4e3df"


# --------------------------------------------------------------------- #
# Generic formatting helpers
# --------------------------------------------------------------------- #
def _fmt_value(value: Any) -> str:
    """Format one table cell for Markdown."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def markdown_table(
    rows: list[Mapping[str, Any]], columns: list[str] | None = None
) -> str:
    """Render a list of dictionaries as a GitHub-flavoured Markdown table.

    Parameters
    ----------
    rows:
        Table rows; missing keys render as ``-``.
    columns:
        Column order; defaults to the keys of the first row.

    Returns
    -------
    str
        The Markdown table, or ``*(empty table)*`` for no rows.
    """
    if not rows:
        return "*(empty table)*"
    columns = columns or list(rows[0].keys())
    lines = [
        "| " + " | ".join(columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(_fmt_value(row.get(c)) for c in columns) + " |"
        )
    return "\n".join(lines)


def _table(title: str, rows: list[dict], columns: list[str] | None = None) -> dict:
    return {"title": title, "rows": rows, "columns": columns or list(rows[0].keys()) if rows else []}


def _panel(
    title: str,
    kind: str,
    x: list,
    series: list[dict],
    *,
    xlabel: str = "",
    ylabel: str = "",
    logy: bool = False,
) -> dict:
    """One single-axis figure panel (declarative; rendered lazily)."""
    return {
        "title": title,
        "kind": kind,
        "x": x,
        "series": series,
        "xlabel": xlabel,
        "ylabel": ylabel,
        "logy": logy,
    }


# --------------------------------------------------------------------- #
# Per-experiment payload builders
# --------------------------------------------------------------------- #
def _fig1_payload(result) -> dict:
    rows = [
        {
            "source": summary.name,
            "cluster_spread": summary.cluster_spread,
            "top32_pattern_coverage": summary.pattern_coverage or None,
            "tsne_kl_divergence": summary.embedding.kl_divergence,
        }
        for summary in (result.normal, result.dnn, result.snn)
    ]
    panels = [
        _panel(
            f"t-SNE: {summary.name}",
            "scatter",
            [float(p) for p in summary.embedding.embedding[:, 0]],
            [
                {
                    "label": summary.name,
                    "values": [float(p) for p in summary.embedding.embedding[:, 1]],
                }
            ],
        )
        for summary in (result.normal, result.dnn, result.snn)
    ]
    spreads = result.spreads()
    return {
        "tables": [_table("Clustering scores per activation source", rows)],
        "metrics": {
            "snn_vs_normal_spread_ratio": spreads["snn"] / spreads["normal"]
            if spreads["normal"]
            else 0.0,
        },
        "notes": [
            "Lower cluster spread = tighter clusters; the SNN source should "
            "have the lowest spread of the three."
        ],
        "figure": {"panels": panels},
    }


def _fig7_payload(result) -> dict:
    tile_rows = [vars(p).copy() for p in result.tile_sweep]
    pattern_rows = [vars(p).copy() for p in result.pattern_sweep]
    buffer_rows = [vars(p).copy() for p in result.buffer_sweep]
    k = [p.k_tile for p in result.tile_sweep]
    q = [p.num_patterns for p in result.pattern_sweep]
    kb = [p.buffer_kb for p in result.buffer_sweep]
    panels = [
        _panel(
            "7a: density vs partition size",
            "line",
            k,
            [
                {"label": "element (L2)", "values": [p.element_density for p in result.tile_sweep]},
                {"label": "vector (L1)", "values": [p.vector_density for p in result.tile_sweep]},
                {"label": "total", "values": [p.total_density for p in result.tile_sweep]},
            ],
            xlabel="K tile size",
            ylabel="density",
        ),
        _panel(
            "7b: compute cycles vs partition size",
            "line",
            k,
            [
                {"label": "bit sparsity", "values": [p.bit_cycles for p in result.tile_sweep]},
                {"label": "Phi", "values": [p.phi_cycles for p in result.tile_sweep]},
                {"label": "optimal", "values": [p.optimal_cycles for p in result.tile_sweep]},
            ],
            xlabel="K tile size",
            ylabel="normalised cycles",
        ),
        _panel(
            "7c: compute cycles vs pattern count",
            "line",
            q,
            [
                {"label": "Phi", "values": [p.phi_cycles for p in result.pattern_sweep]},
                {"label": "optimal", "values": [p.optimal_cycles for p in result.pattern_sweep]},
            ],
            xlabel="patterns per partition (q)",
            ylabel="normalised cycles",
        ),
        _panel(
            "7c: PWP memory vs pattern count",
            "line",
            q,
            [{"label": "PWP bytes", "values": [p.pwp_memory_bytes for p in result.pattern_sweep]}],
            xlabel="patterns per partition (q)",
            ylabel="PWP DRAM bytes",
        ),
        _panel(
            "7d: power vs buffer size",
            "line",
            kb,
            [
                {"label": "DRAM power", "values": [p.dram_power for p in result.buffer_sweep]},
                {"label": "buffer power", "values": [p.buffer_power for p in result.buffer_sweep]},
            ],
            xlabel="buffer size (KiB)",
            ylabel="power (W / mW, model units)",
        ),
        _panel(
            "7d: buffer area vs buffer size",
            "line",
            kb,
            [{"label": "buffer area", "values": [p.buffer_area for p in result.buffer_sweep]}],
            xlabel="buffer size (KiB)",
            ylabel="area (mm^2)",
        ),
    ]
    return {
        "tables": [
            _table("Fig. 7a/b: K tile-size sweep", tile_rows),
            _table("Fig. 7c: pattern-count sweep", pattern_rows),
            _table("Fig. 7d: buffer-size sweep", buffer_rows),
        ],
        "metrics": {"best_tile_size": result.best_tile_size()},
        "notes": [],
        "figure": {"panels": panels},
    }


def _fig8_payload(result) -> dict:
    accelerators = sorted(
        {name for c in result.comparisons for name in c.speedup},
        key=lambda name: ("phi" in name, name),
    )
    speedup_rows = []
    energy_rows = []
    for comparison in result.comparisons:
        speedup_rows.append(
            {"workload": comparison.key, **{a: comparison.speedup.get(a) for a in accelerators}}
        )
        energy_rows.append(
            {"workload": comparison.key, **{a: comparison.energy.get(a) for a in accelerators}}
        )
    speedup_rows.append({"workload": "**geomean**", **result.geomean_speedup()})
    energy_rows.append({"workload": "**geomean**", **result.geomean_energy()})
    workloads = [c.key for c in result.comparisons]
    panels = [
        _panel(
            "Speedup (vs Spiking Eyeriss)",
            "grouped_bar",
            workloads,
            [
                {"label": a, "values": [c.speedup.get(a, 0.0) for c in result.comparisons]}
                for a in accelerators
            ],
            ylabel="speedup",
        ),
        _panel(
            "Energy (normalised to Phi w/o PAFT)",
            "grouped_bar",
            workloads,
            [
                {"label": a, "values": [c.energy.get(a, 0.0) for c in result.comparisons]}
                for a in accelerators
            ],
            ylabel="normalised energy",
            logy=True,
        ),
    ]
    geo = result.geomean_speedup()
    return {
        "tables": [
            _table("Speedup, normalised to Spiking Eyeriss", speedup_rows),
            _table("Energy, normalised to Phi without PAFT", energy_rows),
        ],
        "metrics": {
            "geomean_speedup_phi": geo.get("phi"),
            "geomean_speedup_phi_paft": geo.get("phi_paft"),
        },
        "notes": [],
        "figure": {"panels": panels},
    }


def _fig9_payload(result) -> dict:
    def stat_row(label: str, stats) -> dict:
        return {
            "variant": label,
            "unique_rows": stats.num_unique_rows,
            "top_pattern_coverage": stats.top_pattern_coverage,
            "mean_distance_to_center": stats.mean_distance_to_center,
            "normalized_cluster_score": stats.normalized_cluster_score,
        }

    rows = [
        stat_row("without PAFT", result.stats_without_paft),
        stat_row("with PAFT", result.stats_with_paft),
    ]
    panels = [
        _panel(
            "Cluster tightness with and without PAFT",
            "bar",
            ["without PAFT", "with PAFT"],
            [
                {
                    "label": "mean distance to centre",
                    "values": [
                        result.stats_without_paft.mean_distance_to_center,
                        result.stats_with_paft.mean_distance_to_center,
                    ],
                }
            ],
            ylabel="mean distance to cluster centre",
        )
    ]
    return {
        "tables": [_table("Clustering statistics", rows)],
        "metrics": {
            "train_test_overlap": result.train_test_overlap,
            "clustering_improved": result.clustering_improved,
        },
        "notes": [],
        "figure": {"panels": panels},
    }


def _fig10_payload(result) -> dict:
    rows = [
        {
            "workload": f"{p.model}/{p.dataset}",
            "density_without_paft": p.density_without_paft,
            "density_with_paft": p.density_with_paft,
            "improvement": p.improvement,
        }
        for p in result.pairs
    ]
    labels = [f"{p.model}/{p.dataset}" for p in result.pairs]
    panels = [
        _panel(
            "Level 2 element density",
            "grouped_bar",
            labels,
            [
                {"label": "without PAFT", "values": [p.density_without_paft for p in result.pairs]},
                {"label": "with PAFT", "values": [p.density_with_paft for p in result.pairs]},
            ],
            ylabel="element density",
        )
    ]
    mean_improvement = (
        sum(p.improvement for p in result.pairs) / len(result.pairs)
        if result.pairs
        else 0.0
    )
    return {
        "tables": [_table("Element density with and without PAFT", rows)],
        "metrics": {"mean_density_improvement": mean_improvement},
        "notes": [],
        "figure": {"panels": panels},
    }


def _fig11_payload(result) -> dict:
    rows = [vars(r).copy() for r in result.rows]
    labels = [f"{r.model}/{r.dataset}" for r in result.rows]
    schemes = [
        ("dnn_accuracy", "DNN"),
        ("bit_sparsity_accuracy", "bit sparsity"),
        ("phi_without_paft_accuracy", "Phi w/o PAFT"),
        ("phi_with_paft_accuracy", "Phi w/ PAFT"),
    ]
    panels = [
        _panel(
            "Test accuracy per scheme",
            "grouped_bar",
            labels,
            [
                {"label": label, "values": [getattr(r, attr) for r in result.rows]}
                for attr, label in schemes
            ],
            ylabel="accuracy",
        )
    ]
    return {
        "tables": [_table("Accuracy comparison", rows)],
        "metrics": {
            "all_lossless_verified": all(r.lossless_verified for r in result.rows),
            "max_paft_drop": max((r.paft_drop for r in result.rows), default=0.0),
        },
        "notes": [
            "The lossless property is verified exactly: decomposed GEMM "
            "outputs are compared logit-level against the reference."
        ],
        "figure": {"panels": panels},
    }


def _fig12_payload(result) -> dict:
    rows = []
    for r in result.rows:
        rows.append(
            {
                "workload": f"{r.model}/{r.dataset}",
                "act_dense": r.activation.dense,
                "act_phi_uncompressed": r.activation.phi_uncompressed,
                "act_phi_compressed": r.activation.phi_compressed,
                "w_dense": r.weight.dense,
                "w_phi_no_prefetch": r.weight.phi_without_prefetch,
                "w_phi_prefetch": r.weight.phi_with_prefetch,
            }
        )
    labels = [f"{r.model}/{r.dataset}" for r in result.rows]
    without, with_prefetch = result.geomean_weight_ratios()
    panels = [
        _panel(
            "Activation DRAM traffic",
            "grouped_bar",
            labels,
            [
                {"label": "dense", "values": [r.activation.dense for r in result.rows]},
                {
                    "label": "Phi uncompressed",
                    "values": [r.activation.phi_uncompressed for r in result.rows],
                },
                {
                    "label": "Phi compressed",
                    "values": [r.activation.phi_compressed for r in result.rows],
                },
            ],
            ylabel="bytes",
        ),
        _panel(
            "Weight + PWP DRAM traffic",
            "grouped_bar",
            labels,
            [
                {"label": "dense", "values": [r.weight.dense for r in result.rows]},
                {
                    "label": "Phi w/o prefetch",
                    "values": [r.weight.phi_without_prefetch for r in result.rows],
                },
                {
                    "label": "Phi w/ prefetch",
                    "values": [r.weight.phi_with_prefetch for r in result.rows],
                },
            ],
            ylabel="bytes",
        ),
    ]
    return {
        "tables": [_table("DRAM traffic (bytes)", rows)],
        "metrics": {
            "geomean_activation_compressed_ratio": result.geomean_activation_ratio(),
            "geomean_weight_ratio_without_prefetch": without,
            "geomean_weight_ratio_with_prefetch": with_prefetch,
        },
        "notes": [],
        "figure": {"panels": panels},
    }


def _table2_payload(result) -> dict:
    rows = result.as_dicts()
    return {
        "tables": [
            _table(
                f"Accelerator comparison on {result.model_name}/"
                f"{result.dataset_name}",
                rows,
            )
        ],
        "metrics": {
            "phi_speedup_vs_eyeriss": result.row("phi").speedup_vs_eyeriss,
            "phi_area_mm2": result.row("phi").area_mm2,
        },
        "notes": [],
        "figure": None,
    }


def _table3_payload(result) -> dict:
    return {
        "tables": [_table("Area / power breakdown", result.as_dicts())],
        "metrics": {
            "total_area_mm2": result.total_area_mm2,
            "total_power_mw": result.total_power_mw,
        },
        "notes": [],
        "figure": None,
    }


def _table4_payload(result) -> dict:
    return {
        "tables": [_table("Sparsity breakdown", result.as_dicts())],
        "metrics": {
            "min_speedup_over_bit": min(
                (r.speedup_over_bit for r in result.rows), default=0.0
            ),
        },
        "notes": [
            "Random rows use unstructured binary matrices of the stated "
            "density; SNN rows should beat them at comparable density."
        ],
        "figure": None,
    }


def _discussion_payload(result) -> dict:
    rows = [
        {
            "workload": f"{r.model}/{r.dataset}",
            "preprocessing_energy_J": r.preprocessing_energy,
            "saved_accumulation_energy_J": r.saved_accumulation_energy,
            "benefit_cost_ratio": r.benefit_cost_ratio,
        }
        for r in result.rows
    ]
    panels = [
        _panel(
            "Preprocessing benefit / cost ratio",
            "bar",
            [f"{r.model}/{r.dataset}" for r in result.rows],
            [
                {
                    "label": "benefit / cost",
                    "values": [r.benefit_cost_ratio for r in result.rows],
                }
            ],
            ylabel="ratio",
            logy=True,
        )
    ]
    return {
        "tables": [_table("Preprocessing benefit vs cost", rows)],
        "metrics": {"average_benefit_cost_ratio": result.average_ratio()},
        "notes": [],
        "figure": {"panels": panels},
    }


def _temporal_payload(result) -> dict:
    accelerators = sorted(
        {name for c in result.comparisons for name in c.speedup},
        key=lambda name: ("phi" in name, name),
    )
    speedup_rows = []
    for comparison in result.comparisons:
        speedup_rows.append(
            {"workload": comparison.key, **{a: comparison.speedup.get(a) for a in accelerators}}
        )
    speedup_rows.append({"workload": "**geomean**", **result.geomean_speedup()})

    steps = sorted({s for c in result.comparisons for s in c.density_by_step})
    density_rows = [
        {
            "workload": c.key,
            **{f"t{s}": c.density_by_step.get(s) for s in steps},
        }
        for c in result.comparisons
    ]
    workloads = [c.key for c in result.comparisons]
    panels = [
        _panel(
            "Speedup on time-unrolled workloads (vs Spiking Eyeriss)",
            "grouped_bar",
            workloads,
            [
                {"label": a, "values": [c.speedup.get(a, 0.0) for c in result.comparisons]}
                for a in accelerators
            ],
            ylabel="speedup",
        ),
        _panel(
            "Activation density per time step",
            "line",
            steps,
            [
                {
                    "label": c.key,
                    "values": [c.density_by_step.get(s, 0.0) for s in steps],
                }
                for c in result.comparisons
            ],
            xlabel="time step",
            ylabel="bit density",
        ),
    ]
    geo = result.geomean_speedup()
    return {
        "tables": [
            _table("Speedup on time-unrolled workloads", speedup_rows),
            _table("Per-step activation bit density", density_rows),
        ],
        "metrics": {
            "geomean_speedup_phi": geo.get("phi"),
            "geomean_speedup_phi_paft": geo.get("phi_paft"),
        },
        "notes": [
            "Each GEMM covers one (layer, time step) pair; feed-forward "
            "workloads appear for contrast with a flat density profile."
        ],
        "figure": {"panels": panels},
    }


#: Payload builder per registered experiment name.
PAYLOAD_BUILDERS: dict[str, Callable[[Any], dict]] = {
    "fig1": _fig1_payload,
    "fig7": _fig7_payload,
    "fig8": _fig8_payload,
    "fig9": _fig9_payload,
    "fig10": _fig10_payload,
    "fig11": _fig11_payload,
    "fig12": _fig12_payload,
    "table2": _table2_payload,
    "table3": _table3_payload,
    "table4": _table4_payload,
    "discussion": _discussion_payload,
    "temporal": _temporal_payload,
}


def build_payload(spec: ExperimentSpec, result: Any) -> dict:
    """Flatten one harness result into its JSON section payload.

    Parameters
    ----------
    spec:
        The experiment's registry entry.
    result:
        The object returned by the harness entry point.

    Returns
    -------
    dict
        JSON-serialisable payload: ``tables`` (titled row lists),
        ``metrics`` (headline scalars), ``notes`` and an optional
        declarative ``figure``.
    """
    builder = PAYLOAD_BUILDERS[spec.name]
    payload = builder(result)
    payload["experiment"] = spec.name
    return payload


# --------------------------------------------------------------------- #
# Markdown rendering
# --------------------------------------------------------------------- #
def section_markdown(
    spec: ExperimentSpec,
    payload: Mapping[str, Any],
    *,
    figure_path: str | None = None,
    data_path: str | None = None,
) -> str:
    """Render one experiment section of ``REPRODUCTION.md``.

    Parameters
    ----------
    spec:
        Registry entry (claim, paper reference).
    payload:
        The section payload from :func:`build_payload` (possibly loaded
        from cache).
    figure_path, data_path:
        Report-relative paths of the rendered figure and the payload
        JSON, when they exist.
    """
    lines = [f"### {spec.paper_ref} — `{spec.name}`", ""]
    lines.append(f"**Paper claim ({spec.section}):** {spec.claim}")
    lines.append("")
    metrics = payload.get("metrics") or {}
    if metrics:
        lines.append(
            "**Measured:** "
            + "; ".join(f"{key} = {_fmt_value(value)}" for key, value in metrics.items())
        )
        lines.append("")
    for table in payload.get("tables", []):
        lines.append(f"**{table['title']}**")
        lines.append("")
        lines.append(markdown_table(table["rows"], table.get("columns") or None))
        lines.append("")
    for note in payload.get("notes", []):
        lines.append(f"> {note}")
        lines.append("")
    if figure_path:
        lines.append(f"![{spec.name}]({figure_path})")
        lines.append("")
    if data_path:
        lines.append(f"Raw data: [`{data_path}`]({data_path})")
        lines.append("")
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# Figure rendering (matplotlib, optional)
# --------------------------------------------------------------------- #
def _style_axis(ax) -> None:
    ax.set_facecolor(_SURFACE)
    for spine in ("top", "right"):
        ax.spines[spine].set_visible(False)
    for spine in ("left", "bottom"):
        ax.spines[spine].set_color(_GRID)
    ax.tick_params(colors=_TEXT_SECONDARY, labelsize=8)
    ax.grid(True, axis="y", color=_GRID, linewidth=0.6)
    ax.set_axisbelow(True)


def _render_panel(ax, panel: Mapping[str, Any]) -> None:
    kind = panel["kind"]
    x = panel["x"]
    series = panel["series"]
    if kind == "line":
        for i, item in enumerate(series):
            ax.plot(
                x,
                item["values"],
                color=SERIES_COLORS[i % len(SERIES_COLORS)],
                linewidth=2,
                marker="o",
                markersize=4,
                label=item["label"],
            )
    elif kind == "scatter":
        for i, item in enumerate(series):
            ax.scatter(
                x,
                item["values"],
                s=10,
                color=SERIES_COLORS[i % len(SERIES_COLORS)],
                label=item["label"],
                edgecolors="none",
                alpha=0.8,
            )
        ax.grid(False)
    elif kind in ("bar", "grouped_bar"):
        positions = range(len(x))
        width = 0.8 / max(len(series), 1)
        for i, item in enumerate(series):
            offsets = [p + i * width - 0.4 + width / 2 for p in positions]
            ax.bar(
                offsets,
                item["values"],
                width=width * 0.9,
                color=SERIES_COLORS[i % len(SERIES_COLORS)],
                label=item["label"],
                edgecolor=_SURFACE,
                linewidth=0.5,
            )
        ax.set_xticks(list(positions))
        ax.set_xticklabels([str(v) for v in x], rotation=30, ha="right", fontsize=7)
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown panel kind {kind!r}")
    if panel.get("logy"):
        ax.set_yscale("log")
    ax.set_title(panel["title"], fontsize=9, color=_TEXT)
    ax.set_xlabel(panel.get("xlabel", ""), fontsize=8, color=_TEXT_SECONDARY)
    ax.set_ylabel(panel.get("ylabel", ""), fontsize=8, color=_TEXT_SECONDARY)
    if len(series) > 1:
        ax.legend(fontsize=7, frameon=False, labelcolor=_TEXT_SECONDARY)


def render_figure(payload: Mapping[str, Any], path) -> bool:
    """Render a payload's declarative figure to ``path`` (PNG).

    Parameters
    ----------
    payload:
        A section payload whose ``figure`` entry holds panel specs.
    path:
        Output file path.

    Returns
    -------
    bool
        ``True`` when a figure was written; ``False`` when the payload
        has no figure or matplotlib is unavailable.
    """
    figure = payload.get("figure")
    if not figure or not figure.get("panels") or not HAVE_MATPLOTLIB:
        return False
    panels = figure["panels"]
    columns = min(len(panels), 3)
    rows = math.ceil(len(panels) / columns)
    fig, axes = plt.subplots(
        rows, columns, figsize=(4.2 * columns, 3.2 * rows), squeeze=False
    )
    fig.patch.set_facecolor(_SURFACE)
    flat = [ax for row in axes for ax in row]
    for ax in flat[len(panels):]:
        ax.set_visible(False)
    for ax, panel in zip(flat, panels):
        _style_axis(ax)
        _render_panel(ax, panel)
    fig.tight_layout()
    fig.savefig(path, dpi=140)
    plt.close(fig)
    return True
