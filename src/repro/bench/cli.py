"""Scenario runner and CLI of the benchmark trajectory.

Each scenario executes ``python -m repro.runner <experiment>`` in a fresh
subprocess so in-process memos (workload ``lru_cache``, calibration memo)
can never leak warmth between scenarios; what *is* warm is controlled
purely through the cache and store directories handed to each run:

==============  ============  ============  ====
scenario        result cache  artifacts     jobs
==============  ============  ============  ====
serial_cold     fresh         fresh         1
parallel_cold   fresh         fresh         N
warm_store      fresh         kept          1
fully_warm      kept          kept          1
service_warm    kept          kept          1
fleet_warm      fresh         kept          1
==============  ============  ============  ====

``warm_store`` is the headline scenario of the artifact store: every
simulation still runs (the result cache is empty) but workloads,
calibrations and decompositions load from disk instead of being
recomputed.

``service_warm`` measures the served path: a ``python -m repro.service``
subprocess owns the warm engine and the measurement is one client
end-to-end round trip — submit the experiment as a job, wait for it,
fetch every raw record — so the delta over ``fully_warm`` is the HTTP +
job-model overhead of sweep-as-a-service.

``fleet_warm`` measures the durable fabric: the served engine plus one
``python -m repro.service worker`` subprocess, with the result cache
wiped so every point actually simulates — on the worker, whose records
stream back through the lease/ingest protocol.  The delta over
``warm_store`` is the full remote-execution round trip (lease grants,
heartbeats, HTTP ingest, sqlite journaling) for a sweep of the same
computational cost.

Examples
--------
Append the SMALL trajectory to ``BENCH_sweep.json``::

    python -m repro.bench --scale small --jobs 4

CI smoke run: TINY scenarios appended, then gated against the committed
baseline via the ``compare`` subcommand (per-scenario speedup ratios,
exit 1 past the 2x budget)::

    python -m repro.bench --scale tiny --jobs 2 --profile
    python -m repro.bench compare --baseline benchmarks/bench_baseline.json

``--profile`` additionally runs each scenario under ``cProfile`` and
writes a top-25 cumulative stats dump next to the trajectory file.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import re
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import asdict, dataclass
from datetime import datetime, timezone

#: Bump when the entry layout in ``BENCH_sweep.json`` changes.
BENCH_SCHEMA_VERSION = 1

#: Scenario execution order (``warm_store``/``fully_warm``/
#: ``service_warm`` reuse the directories the first cold run populated).
SCENARIOS = (
    "serial_cold",
    "parallel_cold",
    "warm_store",
    "fully_warm",
    "service_warm",
    "fleet_warm",
)

#: Default trajectory file, kept at the repository root.
DEFAULT_OUTPUT = "BENCH_sweep.json"

_STATS_RE = re.compile(
    r"(?P<points>\d+) points, (?P<hits>\d+) cache hits, "
    r"(?P<executed>\d+) simulated"
    r"(?:, (?P<store_hits>\d+) store hits, (?P<store_misses>\d+) store misses)?"
    r", (?P<sweep>[\d.]+)s wall-clock"
)


@dataclass(frozen=True)
class BenchResult:
    """One timed scenario, as appended to ``BENCH_sweep.json``.

    ``store_hits`` / ``store_misses`` are the parent engine's artifact
    store counters (``None`` for runs without a store or from versions
    that predate the counters) — they distinguish warm-store scenarios
    (all hits) from cold ones (all misses) in the trajectory.
    """

    schema: int
    timestamp: str
    experiment: str
    scale: str
    scenario: str
    jobs: int
    wall_seconds: float
    sweep_seconds: float | None
    points: int | None
    cache_hits: int | None
    executed: int | None
    code_version: str
    python: str
    cpu_count: int
    store_hits: int | None = None
    store_misses: int | None = None


def _runner_command(
    experiment: str,
    scale: str,
    jobs: int,
    cache_dir: pathlib.Path,
    store_dir: pathlib.Path,
    profile_path: pathlib.Path | None = None,
) -> list[str]:
    command = [sys.executable]
    if profile_path is not None:
        command += ["-m", "cProfile", "-o", str(profile_path)]
    command += [
        "-m",
        "repro.runner",
        experiment,
        "--scale",
        scale,
        "--jobs",
        str(jobs),
        "--cache-dir",
        str(cache_dir),
        "--store-dir",
        str(store_dir),
        "--quiet",
    ]
    return command


def run_scenario(
    scenario: str,
    *,
    experiment: str = "fig7",
    scale: str = "small",
    jobs: int = 4,
    workdir: pathlib.Path,
    profile_path: pathlib.Path | None = None,
) -> BenchResult:
    """Time one scenario in a fresh subprocess.

    Parameters
    ----------
    scenario:
        One of :data:`SCENARIOS`.
    experiment:
        ``python -m repro.runner`` subcommand to time.
    scale:
        Experiment scale tier name.
    jobs:
        Worker count used by the ``parallel_cold`` scenario (the others
        run serial by design).
    workdir:
        Scratch directory holding the scenario-controlled ``cache`` and
        ``store`` subdirectories.  Cold scenarios wipe them; warm ones
        reuse whatever previous scenarios left behind.
    profile_path:
        When given, the runner subprocess executes under ``cProfile``
        and writes its raw stats here (wall-clock includes the profiler
        overhead — compare profiled runs only with profiled runs).
        Ignored by ``service_warm``, whose timed work happens in the
        service process.

    Returns
    -------
    BenchResult
        Wall-clock measurement plus the engine's own stats line.
    """
    if scenario not in SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r}; expected one of {SCENARIOS}")
    from .. import __version__

    cache_dir = workdir / "cache"
    store_dir = workdir / "store"
    if scenario in ("serial_cold", "parallel_cold"):
        shutil.rmtree(cache_dir, ignore_errors=True)
        shutil.rmtree(store_dir, ignore_errors=True)
    elif scenario in ("warm_store", "fleet_warm"):
        # A wiped result cache is what forces real simulations — for
        # fleet_warm, on the remote worker rather than in the server.
        shutil.rmtree(cache_dir, ignore_errors=True)

    if scenario in ("service_warm", "fleet_warm"):
        return _run_service_scenario(
            experiment=experiment,
            scale=scale,
            cache_dir=cache_dir,
            store_dir=store_dir,
            fleet=scenario == "fleet_warm",
        )

    scenario_jobs = jobs if scenario == "parallel_cold" else 1
    command = _runner_command(
        experiment, scale, scenario_jobs, cache_dir, store_dir, profile_path
    )
    start = time.perf_counter()
    completed = subprocess.run(
        command, capture_output=True, text=True, env=os.environ.copy()
    )
    wall = time.perf_counter() - start
    if completed.returncode != 0:
        raise RuntimeError(
            f"benchmark run failed ({' '.join(command)}):\n{completed.stderr}"
        )
    match = _STATS_RE.search(completed.stdout)

    def _stat(name: str) -> int | None:
        if match is None or match.group(name) is None:
            return None
        return int(match.group(name))

    return BenchResult(
        schema=BENCH_SCHEMA_VERSION,
        timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        experiment=experiment,
        scale=scale,
        scenario=scenario,
        jobs=scenario_jobs,
        wall_seconds=round(wall, 3),
        sweep_seconds=float(match.group("sweep")) if match else None,
        points=_stat("points"),
        cache_hits=_stat("hits"),
        executed=_stat("executed"),
        code_version=__version__,
        python=platform.python_version(),
        cpu_count=os.cpu_count() or 1,
        store_hits=_stat("store_hits"),
        store_misses=_stat("store_misses"),
    )


def _await_line(
    process: subprocess.Popen, prefix: str, command: list[str], *, timeout: float = 120
) -> str:
    """Block until ``process`` prints a line starting with ``prefix``.

    readline() has no timeout of its own; a watchdog thread bounds a
    hung startup so CI fails fast instead of hitting job limits.
    """
    first_line: list[str] = []
    reader = threading.Thread(
        target=lambda: first_line.append(process.stdout.readline()), daemon=True
    )
    reader.start()
    reader.join(timeout=timeout)
    line = first_line[0].strip() if first_line else ""
    if not line.startswith(prefix):
        process.kill()
        tail = line + (process.stdout.read() or "")
        raise RuntimeError(f"subprocess never ready ({' '.join(command)}):\n{tail}")
    return line


def _run_service_scenario(
    *,
    experiment: str,
    scale: str,
    cache_dir: pathlib.Path,
    store_dir: pathlib.Path,
    fleet: bool = False,
) -> BenchResult:
    """Time one client round trip against a served engine.

    Boots ``python -m repro.service serve --port 0`` as a subprocess on
    the scenario directories, waits for its "serving on" line, then
    measures submit → wait → fetch-all-records from this process.
    Server boot time is excluded on purpose: the service is long-lived,
    the per-request path is what the trajectory tracks.

    The server runs with the production-hardening surface *enabled*
    (bearer-token auth + JSONL audit log + sqlite journal), so the
    measured round trip — and the CI gate on it — includes the
    per-request cost of auth checking, audit writes and journaling, not
    an artificially bare server.

    With ``fleet=True`` (the ``fleet_warm`` scenario) one ``python -m
    repro.service worker`` subprocess joins the server first, and the
    wiped result cache forces every simulation onto that worker — the
    measurement is the full lease/ingest round trip.
    """
    from .. import __version__
    from ..service.client import ServiceClient

    token = "bench-service-token"
    scenario = "fleet_warm" if fleet else "service_warm"
    command = [
        sys.executable,
        "-m",
        "repro.service",
        "serve",
        "--port",
        "0",
        "--cache-dir",
        str(cache_dir),
        "--store-dir",
        str(store_dir),
        "--auth-token",
        token,
        "--audit-log",
        str(cache_dir / "bench-audit.jsonl"),
        "--quiet",
    ]
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=os.environ.copy(),
    )
    worker = None
    try:
        line = _await_line(process, "serving on ", command)
        url = line.split()[-1]
        if fleet:
            worker_command = [
                sys.executable,
                "-m",
                "repro.service",
                "worker",
                "--server",
                url,
                "--store-dir",
                str(store_dir),
                "--token",
                token,
                "--poll",
                "0.1",
                "--quiet",
            ]
            worker = subprocess.Popen(
                worker_command,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
                env=os.environ.copy(),
            )
            _await_line(worker, "worker ", worker_command)
        client = ServiceClient(url, token=token)
        start = time.perf_counter()
        job = client.run(experiment, scale=scale, timeout=600.0)
        client.records_for(job)
        wall = time.perf_counter() - start
        progress = job["progress"]
        if worker is not None:
            worker.terminate()
            worker.wait(timeout=60)
        client.shutdown()
        process.wait(timeout=60)
        return BenchResult(
            schema=BENCH_SCHEMA_VERSION,
            timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds"),
            experiment=experiment,
            scale=scale,
            scenario=scenario,
            jobs=1,
            wall_seconds=round(wall, 3),
            sweep_seconds=None,
            points=progress["points"],
            cache_hits=progress["cache_hits"],
            executed=progress["executed"],
            code_version=__version__,
            python=platform.python_version(),
            cpu_count=os.cpu_count() or 1,
        )
    finally:
        for child in (worker, process):
            if child is not None and child.poll() is None:
                child.kill()
                child.wait(timeout=10)


def append_results(results: list[BenchResult], output: pathlib.Path) -> None:
    """Append entries to the trajectory file (a JSON array), atomically."""
    entries: list[dict] = []
    if output.exists():
        try:
            entries = json.loads(output.read_text())
        except ValueError:
            entries = []
        if not isinstance(entries, list):
            entries = []
    entries.extend(asdict(result) for result in results)
    fd, tmp_name = tempfile.mkstemp(dir=output.parent or None, suffix=".tmp")
    with os.fdopen(fd, "w") as handle:
        json.dump(entries, handle, indent=1)
        handle.write("\n")
    os.replace(tmp_name, output)


def check_against_baseline(
    results: list[BenchResult], baseline_path: pathlib.Path, *, factor: float = 2.0
) -> list[str]:
    """Compare measured scenarios against a committed baseline.

    The baseline maps ``"<experiment>/<scale>/<scenario>"`` to a
    reference ``wall_seconds``; a measurement fails when it exceeds
    ``factor`` times its reference.  Scenarios without a baseline entry
    pass (the trajectory may grow scenarios before the baseline does).

    Returns
    -------
    list of str
        One human-readable failure per regressed scenario; empty when
        everything is within budget.
    """
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for result in results:
        key = f"{result.experiment}/{result.scale}/{result.scenario}"
        reference = baseline.get(key)
        if reference is None:
            continue
        budget = float(reference) * factor
        if result.wall_seconds > budget:
            failures.append(
                f"{key}: {result.wall_seconds:.2f}s exceeds {budget:.2f}s "
                f"({factor:g}x the {float(reference):.2f}s baseline)"
            )
    return failures


def latest_entries(trajectory_path: pathlib.Path) -> dict[str, dict]:
    """The most recent trajectory entry per ``experiment/scale/scenario``."""
    entries = json.loads(trajectory_path.read_text())
    if not isinstance(entries, list):
        raise ValueError(f"{trajectory_path} is not a JSON array")
    latest: dict[str, dict] = {}
    for entry in entries:
        if not isinstance(entry, dict):
            continue
        key = f"{entry.get('experiment')}/{entry.get('scale')}/{entry.get('scenario')}"
        latest[key] = entry
    return latest


def compare_trajectory(
    trajectory_path: pathlib.Path,
    baseline_path: pathlib.Path,
    *,
    factor: float = 2.0,
) -> tuple[list[str], list[str]]:
    """Diff the latest trajectory entries against the committed baseline.

    For every baseline key with a trajectory measurement, computes the
    speedup ratio (baseline over measured wall seconds — above 1.0 is
    faster than the baseline).  A measurement *fails* when it exceeds
    ``factor`` times its baseline, mirroring
    :func:`check_against_baseline`; this is what the CI gate runs.

    Returns
    -------
    (lines, failures)
        Human-readable per-scenario ratio lines, and the subset that
        regressed past the budget.
    """
    baseline = {
        key: value
        for key, value in json.loads(baseline_path.read_text()).items()
        if isinstance(value, (int, float))  # skips the "_comment" entry
    }
    latest = latest_entries(trajectory_path)
    lines: list[str] = []
    failures: list[str] = []
    for key in sorted(baseline):
        reference = float(baseline[key])
        entry = latest.get(key)
        if entry is None or not isinstance(entry.get("wall_seconds"), (int, float)):
            lines.append(f"{key}: baseline {reference:.2f}s, no measurement")
            continue
        measured = float(entry["wall_seconds"])
        ratio = reference / measured if measured > 0 else float("inf")
        verdict = f"{ratio:.2f}x faster" if ratio >= 1 else f"{1 / ratio:.2f}x slower"
        line = f"{key}: {measured:.2f}s vs {reference:.2f}s baseline ({verdict})"
        if measured > reference * factor:
            line += f" REGRESSION (budget {reference * factor:.2f}s = {factor:g}x)"
            failures.append(line)
        lines.append(line)
    extra = sorted(set(latest) - set(baseline))
    for key in extra:
        wall = latest[key].get("wall_seconds")
        if isinstance(wall, (int, float)):
            lines.append(f"{key}: {float(wall):.2f}s (no baseline entry)")
    return lines, failures


def perf_markdown_table(trajectory_path: pathlib.Path) -> str:
    """Render the latest trajectory entries as a Markdown table.

    One row per ``experiment/scale/scenario`` (most recent entry wins),
    ordered by scale tier then scenario execution order.  The README's
    performance table is this exact output, pinned by a docs test —
    regenerate it after appending new measurements::

        python - <<'PY'
        import pathlib
        from repro.bench.cli import perf_markdown_table
        print(perf_markdown_table(pathlib.Path("BENCH_sweep.json")))
        PY
    """
    scale_order = {"tiny": 0, "small": 1, "paper": 2}
    scenario_order = {name: i for i, name in enumerate(SCENARIOS)}

    def sort_key(item: tuple[str, dict]) -> tuple:
        experiment, scale, scenario = item[0].split("/")
        return (
            experiment,
            scale_order.get(scale, len(scale_order)),
            scenario_order.get(scenario, len(scenario_order)),
        )

    lines = [
        "| Experiment | Scale | Scenario | Jobs | Wall (s) | Sweep (s) | Store hits/misses |",
        "|---|---|---|---|---|---|---|",
    ]
    for key, entry in sorted(latest_entries(trajectory_path).items(), key=sort_key):
        experiment, scale, scenario = key.split("/")
        sweep = entry.get("sweep_seconds")
        hits, misses = entry.get("store_hits"), entry.get("store_misses")
        lines.append(
            "| `{}` | {} | `{}` | {} | {:.2f} | {} | {} |".format(
                experiment,
                scale,
                scenario,
                entry.get("jobs", "—"),
                float(entry["wall_seconds"]),
                f"{float(sweep):.2f}" if isinstance(sweep, (int, float)) else "—",
                f"{hits}/{misses}" if hits is not None else "—",
            )
        )
    return "\n".join(lines)


def write_profile_summary(
    profiles: dict[str, pathlib.Path], summary_path: pathlib.Path, *, top: int = 25
) -> None:
    """Dump each profiled scenario's top-``top`` cumulative stats to a file."""
    import io
    import pstats

    buffer = io.StringIO()
    for scenario, path in profiles.items():
        buffer.write(f"==== {scenario} ({path.name}) ====\n")
        try:
            stats = pstats.Stats(str(path), stream=buffer)
        except (OSError, TypeError, EOFError):
            buffer.write("profile unavailable\n\n")
            continue
        stats.sort_stats("cumulative").print_stats(top)
        buffer.write("\n")
    summary_path.write_text(buffer.getvalue())


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.bench`` argument parser."""
    from ..experiments.common import SCALE_TIERS

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Time canonical sweep scenarios and append BENCH_sweep.json.",
    )
    sub = parser.add_subparsers(dest="command")
    compare = sub.add_parser(
        "compare",
        help="diff the latest trajectory entries against a baseline",
        description=(
            "Print per-scenario speedup/regression ratios of the latest "
            "BENCH_sweep.json entries against the committed baseline; "
            "exit 1 on any regression past the factor budget."
        ),
    )
    compare.add_argument(
        "--trajectory",
        default=DEFAULT_OUTPUT,
        help="trajectory file to read (default: %(default)s)",
    )
    compare.add_argument(
        "--baseline",
        default="benchmarks/bench_baseline.json",
        help="baseline file (default: %(default)s)",
    )
    compare.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="regression budget multiplier (default: %(default)s)",
    )
    parser.add_argument(
        "--scale",
        choices=tuple(SCALE_TIERS),
        default="small",
        help="experiment scale tier (default: %(default)s)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=4,
        help="workers for the parallel_cold scenario (default: %(default)s)",
    )
    parser.add_argument(
        "--experiment",
        default="fig7",
        help="repro.runner subcommand to time (default: %(default)s)",
    )
    parser.add_argument(
        "--scenarios",
        default=",".join(SCENARIOS),
        help="comma-separated scenario subset, in order (default: all)",
    )
    parser.add_argument(
        "--output",
        "-o",
        default=DEFAULT_OUTPUT,
        help="trajectory file to append to (default: %(default)s)",
    )
    parser.add_argument(
        "--workdir",
        default=None,
        help="scratch directory for scenario caches (default: a temp dir)",
    )
    parser.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help="fail (exit 1) when a scenario exceeds 2x this baseline file",
    )
    parser.add_argument(
        "--no-append",
        action="store_true",
        help="print results without touching the trajectory file",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "run each scenario under cProfile and write a top-25 "
            "cumulative stats dump next to the trajectory file"
        ),
    )
    return parser


def _cmd_compare(args: argparse.Namespace) -> int:
    trajectory = pathlib.Path(args.trajectory)
    baseline = pathlib.Path(args.baseline)
    for path in (trajectory, baseline):
        if not path.exists():
            print(f"error: {path} does not exist", file=sys.stderr)
            return 2
    lines, failures = compare_trajectory(trajectory, baseline, factor=args.factor)
    for line in lines:
        print(line)
    if failures:
        for failure in failures:
            print(f"REGRESSION {failure}", file=sys.stderr)
        return 1
    print(f"all measured scenarios within {args.factor:g}x of {baseline}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Run the selected scenarios; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "compare":
        return _cmd_compare(args)
    scenarios = [name.strip() for name in args.scenarios.split(",") if name.strip()]
    unknown = [name for name in scenarios if name not in SCENARIOS]
    if unknown:
        print(f"unknown scenarios: {', '.join(unknown)}", file=sys.stderr)
        return 2

    if args.workdir is not None:
        workdir = pathlib.Path(args.workdir)
        workdir.mkdir(parents=True, exist_ok=True)
        cleanup = None
    else:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-bench-")
        workdir = pathlib.Path(cleanup.name)

    try:
        results = []
        profiles: dict[str, pathlib.Path] = {}
        for scenario in scenarios:
            profile_path = None
            if args.profile and scenario not in ("service_warm", "fleet_warm"):
                profile_path = workdir / f"{scenario}.prof"
            result = run_scenario(
                scenario,
                experiment=args.experiment,
                scale=args.scale,
                jobs=args.jobs,
                workdir=workdir,
                profile_path=profile_path,
            )
            if profile_path is not None and profile_path.exists():
                profiles[scenario] = profile_path
            results.append(result)
            store_part = ""
            if result.store_hits is not None:
                store_part = (
                    f", store {result.store_hits} hits"
                    f"/{result.store_misses} misses"
                )
            print(
                f"{result.experiment}/{result.scale}/{result.scenario} "
                f"(jobs={result.jobs}): {result.wall_seconds:.2f}s wall, "
                f"sweep {result.sweep_seconds}s, "
                f"{result.cache_hits}/{result.points} cache hits{store_part}"
            )
        if profiles:
            summary = pathlib.Path(args.output).with_name("bench_profile.txt")
            write_profile_summary(profiles, summary)
            print(f"wrote profile summary to {summary}")
    finally:
        if cleanup is not None:
            cleanup.cleanup()

    if not args.no_append:
        append_results(results, pathlib.Path(args.output))
        print(f"appended {len(results)} entries to {args.output}")

    if args.check:
        failures = check_against_baseline(results, pathlib.Path(args.check))
        for failure in failures:
            print(f"REGRESSION {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"all scenarios within 2x of {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
