"""Benchmark trajectory for the sweep engine (``python -m repro.bench``).

The bench subsystem times the canonical sweep scenarios — serial cold,
parallel cold, cold result cache with a warm artifact store, and fully
warm — in isolated subprocesses with scenario-controlled cache/store
directories, and appends machine-readable entries to ``BENCH_sweep.json``
so performance wins (and regressions) are tracked across commits.  CI
runs the TINY scenarios and fails when the serial wall time regresses
more than 2x against the committed ``benchmarks/bench_baseline.json``.
"""

from .cli import (
    BENCH_SCHEMA_VERSION,
    DEFAULT_OUTPUT,
    SCENARIOS,
    BenchResult,
    append_results,
    check_against_baseline,
    main,
    run_scenario,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchResult",
    "DEFAULT_OUTPUT",
    "SCENARIOS",
    "append_results",
    "check_against_baseline",
    "main",
    "run_scenario",
]
