"""Common infrastructure for baseline SNN accelerator models.

Every baseline is an analytical cycle/energy model at the same abstraction
level as the Phi simulator: it consumes a :class:`ModelWorkload` (binary
spike activation matrices plus weights) and reports cycles, DRAM traffic
and energy.  Operation counts follow the paper's definition — one OP per
'1' element in the bit-sparse activation times the output width — so
throughput and energy efficiency are directly comparable across all
accelerators (Section 5.1).

All baselines implement the shared
:class:`~repro.hw.pipeline.AcceleratorModel` interface: a layer runs
through a two-stage :class:`~repro.hw.pipeline.Pipeline` (compute →
DRAM) producing the same canonical
:class:`~repro.hw.pipeline.LayerResult` / :class:`~repro.hw.pipeline.RunResult`
schema as the cycle-level Phi simulator, with energy accounted at run
level (static power × runtime + dynamic energy per executed
accumulation).  ``AcceleratorReport`` and ``BaselineLayerResult`` are
aliases of the canonical classes, kept for existing callers.
"""

from __future__ import annotations

from abc import abstractmethod

import numpy as np

from ..hw.config import ArchConfig
from ..hw.energy import (
    ACCUMULATE_ENERGY_PJ,
    BUFFER_ENERGY_PER_BYTE_PJ,
    DRAM_ENERGY_PER_BYTE_PJ,
    EnergyBreakdown,
)
from ..hw.pipeline import (
    AcceleratorModel,
    LayerContext,
    LayerResult,
    Pipeline,
    RunResult,
    StageRecord,
)
from ..workloads.workload import LayerWorkload, ModelWorkload

#: Compatibility aliases: baselines report through the canonical pipeline
#: schema (see ``repro.hw.pipeline``).
BaselineLayerResult = LayerResult
AcceleratorReport = RunResult

#: On-chip SRAM bytes touched per executed accumulation: a weight element
#: (2 B), a partial-sum read-modify-write (2 x 2 B) and amortised control /
#: index metadata.  Set so the per-accumulation energy matches the
#: ~10-20 pJ characteristic of 28 nm SNN accelerators.
BUFFER_BYTES_PER_ACCUMULATION = 10.0


def paper_operations(layer: LayerWorkload) -> int:
    """The paper's OP count for one layer: 1-bits times output width."""
    return int(layer.activations.sum()) * layer.n


def dense_activation_bytes(layer: LayerWorkload) -> float:
    """DRAM bytes for the dense (bit-packed) activation matrix."""
    return layer.m * layer.k / 8.0


def weight_bytes(layer: LayerWorkload, config: ArchConfig) -> float:
    """DRAM bytes for the dense weight matrix."""
    return float(layer.k * layer.n * config.weight_bytes)


def output_bytes(layer: LayerWorkload) -> float:
    """DRAM bytes for the binary output spikes."""
    return layer.m * layer.n / 8.0


class BaselineComputeStage:
    """Compute stage of the baseline pipeline.

    Delegates the cycle count to the owning model's
    :meth:`BaselineAccelerator.layer_compute_cycles`, which is where each
    baseline encodes its dataflow (dense execution, load imbalance,
    window batching, ...).
    """

    name = "compute"

    def __init__(self, model: "BaselineAccelerator") -> None:
        self.model = model

    def run(self, ctx: LayerContext) -> StageRecord:
        """Account the layer's compute cycles."""
        compute = self.model.layer_compute_cycles(ctx.layer)
        ctx.scratch["compute_cycles"] = compute
        return StageRecord(name=self.name, cycles=compute)


class BaselineDramStage:
    """DRAM stage of the baseline pipeline; assembles the layer result.

    All baselines stream dense (bit-packed) activations, dense weights
    and binary output spikes; :meth:`BaselineAccelerator.layer_dram_bytes`
    stays overridable for designs with a different traffic mix (such
    models should also override the component fields they change).
    """

    name = "dram"

    def __init__(self, model: "BaselineAccelerator") -> None:
        self.model = model

    def run(self, ctx: LayerContext) -> StageRecord:
        """Account the layer's off-chip traffic and build ``ctx.result``."""
        layer = ctx.layer
        config = self.model.config
        dram = self.model.layer_dram_bytes(layer)
        memory = dram / config.dram_bytes_per_cycle
        ctx.result = LayerResult(
            layer_name=layer.name,
            m=layer.m,
            k=layer.k,
            n=layer.n,
            compute_cycles=ctx.scratch["compute_cycles"],
            memory_cycles=memory,
            operations=paper_operations(layer),
            activation_bytes=dense_activation_bytes(layer),
            weight_bytes=weight_bytes(layer, config),
            output_bytes=output_bytes(layer),
        )
        if ctx.result.dram_bytes != dram:
            # Latency (memory_cycles) and traffic (LayerResult.dram_bytes)
            # must agree; a model with a custom traffic mix has to override
            # the stage (or the component fields), not just the total.
            raise ValueError(
                f"{self.model.name}: layer_dram_bytes() ({dram}) disagrees "
                f"with the traffic component fields "
                f"({ctx.result.dram_bytes}); override BaselineDramStage so "
                "latency and traffic stay consistent"
            )
        return StageRecord(name=self.name, cycles=memory, dram_bytes=dram)


class BaselineAccelerator(AcceleratorModel):
    """Abstract analytical model of an SNN accelerator.

    Parameters
    ----------
    config:
        Shared architectural constants (frequency, DRAM bandwidth, data
        widths).  All baselines run at the same 500 MHz / 28 nm point as
        Phi for a fair comparison (Section 5.1).
    """

    #: Human-readable accelerator name.
    name: str = "baseline"
    #: Die area in mm^2 (Table 2).
    area_mm2: float = 1.0
    #: Static (leakage + clock) core power in mW.
    core_power_mw: float = 300.0
    #: Static on-chip buffer power in mW.
    buffer_power_mw: float = 200.0

    def __init__(self, config: ArchConfig | None = None) -> None:
        self.config = config or ArchConfig()
        self.pipeline = Pipeline(
            (BaselineComputeStage(self), BaselineDramStage(self))
        )

    # ------------------------------------------------------------------ #
    @abstractmethod
    def layer_compute_cycles(self, layer: LayerWorkload) -> float:
        """Compute cycles this accelerator needs for one layer."""

    def layer_executed_accumulations(self, layer: LayerWorkload) -> float:
        """Scalar accumulations this accelerator actually executes.

        The default assumes perfect zero skipping (one accumulation per '1'
        activation element per output column); dense or window-granular
        designs override it.  Dynamic core and buffer energy are charged
        per executed accumulation, which is what makes exploiting sparsity
        pay off in energy and not just latency.
        """
        return float(paper_operations(layer))

    def layer_dram_bytes(self, layer: LayerWorkload) -> float:
        """DRAM traffic of one layer (dense activations + weights + outputs)."""
        return (
            dense_activation_bytes(layer)
            + weight_bytes(layer, self.config)
            + output_bytes(layer)
        )

    # ------------------------------------------------------------------ #
    def simulate_layer(self, layer: LayerWorkload) -> LayerResult:
        """Simulate one layer through the compute → DRAM stage pipeline."""
        return self.pipeline.run_layer(LayerContext(layer=layer))

    def simulate(self, workload: ModelWorkload) -> RunResult:
        """Simulate a complete model workload."""
        result = RunResult(
            accelerator=self.name,
            model_name=workload.model_name,
            dataset_name=workload.dataset_name,
            frequency_hz=self.config.frequency_hz,
            area_mm2=self.area_mm2,
        )
        executed = 0.0
        for layer in workload:
            result.layers.append(self.simulate_layer(layer))
            executed += self.layer_executed_accumulations(layer)
        runtime = result.runtime_seconds
        # Dynamic energy scales with the accumulations actually executed
        # (adder switching plus weight / partial-sum SRAM traffic); static
        # energy scales with runtime.
        dynamic_core = executed * ACCUMULATE_ENERGY_PJ * 1e-12
        dynamic_buffer = (
            executed
            * BUFFER_BYTES_PER_ACCUMULATION
            * BUFFER_ENERGY_PER_BYTE_PJ
            * 1e-12
        )
        result.run_energy = EnergyBreakdown(
            core=self.core_power_mw * 1e-3 * runtime + dynamic_core,
            buffer=self.buffer_power_mw * 1e-3 * runtime + dynamic_buffer,
            dram=result.total_dram_bytes * DRAM_ENERGY_PER_BYTE_PJ * 1e-12,
        )
        return result


def load_imbalance_cycles(
    activations: np.ndarray, lanes: int, rows_per_group: int, work_per_one: float
) -> float:
    """Cycle count of a row-parallel accelerator with load imbalance.

    Rows are processed in groups of ``rows_per_group`` parallel lanes; the
    group finishes when its most spike-heavy row finishes, which is the
    load-imbalance effect unstructured sparsity causes on parallel SNN
    dataflows.
    """
    if lanes < 1 or rows_per_group < 1:
        raise ValueError("lanes and rows_per_group must be >= 1")
    popcounts = np.asarray(activations).sum(axis=1)
    cycles = 0.0
    lanes_per_row = max(lanes // rows_per_group, 1)
    for start in range(0, len(popcounts), rows_per_group):
        group = popcounts[start : start + rows_per_group]
        if group.size == 0:
            continue
        cycles += float(group.max()) * work_per_one / lanes_per_row
    return cycles
