"""Common infrastructure for baseline SNN accelerator models.

Every baseline is an analytical cycle/energy model at the same abstraction
level as the Phi simulator: it consumes a :class:`ModelWorkload` (binary
spike activation matrices plus weights) and reports cycles, DRAM traffic
and energy.  Operation counts follow the paper's definition — one OP per
'1' element in the bit-sparse activation times the output width — so
throughput and energy efficiency are directly comparable across all
accelerators (Section 5.1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from ..hw.config import ArchConfig
from ..hw.energy import (
    ACCUMULATE_ENERGY_PJ,
    BUFFER_ENERGY_PER_BYTE_PJ,
    DRAM_ENERGY_PER_BYTE_PJ,
)
from ..workloads.workload import LayerWorkload, ModelWorkload

#: On-chip SRAM bytes touched per executed accumulation: a weight element
#: (2 B), a partial-sum read-modify-write (2 x 2 B) and amortised control /
#: index metadata.  Set so the per-accumulation energy matches the
#: ~10-20 pJ characteristic of 28 nm SNN accelerators.
BUFFER_BYTES_PER_ACCUMULATION = 10.0


@dataclass
class BaselineLayerResult:
    """Per-layer outcome of a baseline accelerator simulation."""

    layer_name: str
    compute_cycles: float
    memory_cycles: float
    dram_bytes: float
    operations: int

    @property
    def total_cycles(self) -> float:
        """Layer latency (compute overlapped with memory transfers)."""
        return max(self.compute_cycles, self.memory_cycles)


@dataclass
class AcceleratorReport:
    """Aggregate performance / energy report of one accelerator run."""

    accelerator: str
    model_name: str
    dataset_name: str
    frequency_hz: float
    area_mm2: float
    layers: list[BaselineLayerResult] = field(default_factory=list)
    core_energy: float = 0.0
    buffer_energy: float = 0.0
    dram_energy: float = 0.0

    @property
    def total_cycles(self) -> float:
        """End-to-end cycles."""
        return sum(layer.total_cycles for layer in self.layers)

    @property
    def runtime_seconds(self) -> float:
        """Runtime at the accelerator's clock frequency."""
        return self.total_cycles / self.frequency_hz

    @property
    def total_operations(self) -> int:
        """Paper-defined OP count (accumulations of '1' activations x N)."""
        return sum(layer.operations for layer in self.layers)

    @property
    def throughput_gops(self) -> float:
        """Throughput in GOP/s."""
        if self.runtime_seconds == 0:
            return 0.0
        return self.total_operations / self.runtime_seconds / 1e9

    @property
    def energy_joules(self) -> float:
        """Total energy."""
        return self.core_energy + self.buffer_energy + self.dram_energy

    @property
    def energy_efficiency_gops_per_joule(self) -> float:
        """Energy efficiency in GOP/J."""
        if self.energy_joules == 0:
            return 0.0
        return self.total_operations / self.energy_joules / 1e9

    @property
    def area_efficiency_gops_per_mm2(self) -> float:
        """Area efficiency in GOP/s/mm^2."""
        if self.area_mm2 == 0:
            return 0.0
        return self.throughput_gops / self.area_mm2

    @property
    def total_dram_bytes(self) -> float:
        """Total DRAM traffic."""
        return sum(layer.dram_bytes for layer in self.layers)

    def energy_breakdown(self) -> dict[str, float]:
        """Core / buffer / DRAM energy split (Joules)."""
        return {
            "core": self.core_energy,
            "buffer": self.buffer_energy,
            "dram": self.dram_energy,
        }


def paper_operations(layer: LayerWorkload) -> int:
    """The paper's OP count for one layer: 1-bits times output width."""
    return int(layer.activations.sum()) * layer.n


def dense_activation_bytes(layer: LayerWorkload) -> float:
    """DRAM bytes for the dense (bit-packed) activation matrix."""
    return layer.m * layer.k / 8.0


def weight_bytes(layer: LayerWorkload, config: ArchConfig) -> float:
    """DRAM bytes for the dense weight matrix."""
    return float(layer.k * layer.n * config.weight_bytes)


def output_bytes(layer: LayerWorkload) -> float:
    """DRAM bytes for the binary output spikes."""
    return layer.m * layer.n / 8.0


class BaselineAccelerator(ABC):
    """Abstract analytical model of an SNN accelerator.

    Parameters
    ----------
    config:
        Shared architectural constants (frequency, DRAM bandwidth, data
        widths).  All baselines run at the same 500 MHz / 28 nm point as
        Phi for a fair comparison (Section 5.1).
    """

    #: Human-readable accelerator name.
    name: str = "baseline"
    #: Die area in mm^2 (Table 2).
    area_mm2: float = 1.0
    #: Static (leakage + clock) core power in mW.
    core_power_mw: float = 300.0
    #: Static on-chip buffer power in mW.
    buffer_power_mw: float = 200.0

    def __init__(self, config: ArchConfig | None = None) -> None:
        self.config = config or ArchConfig()

    # ------------------------------------------------------------------ #
    @abstractmethod
    def layer_compute_cycles(self, layer: LayerWorkload) -> float:
        """Compute cycles this accelerator needs for one layer."""

    def layer_executed_accumulations(self, layer: LayerWorkload) -> float:
        """Scalar accumulations this accelerator actually executes.

        The default assumes perfect zero skipping (one accumulation per '1'
        activation element per output column); dense or window-granular
        designs override it.  Dynamic core and buffer energy are charged
        per executed accumulation, which is what makes exploiting sparsity
        pay off in energy and not just latency.
        """
        return float(paper_operations(layer))

    def layer_dram_bytes(self, layer: LayerWorkload) -> float:
        """DRAM traffic of one layer (dense activations + weights + outputs)."""
        return (
            dense_activation_bytes(layer)
            + weight_bytes(layer, self.config)
            + output_bytes(layer)
        )

    # ------------------------------------------------------------------ #
    def simulate_layer(self, layer: LayerWorkload) -> BaselineLayerResult:
        """Simulate one layer and return its cycle/traffic accounting."""
        compute = self.layer_compute_cycles(layer)
        dram = self.layer_dram_bytes(layer)
        memory = dram / self.config.dram_bytes_per_cycle
        return BaselineLayerResult(
            layer_name=layer.name,
            compute_cycles=compute,
            memory_cycles=memory,
            dram_bytes=dram,
            operations=paper_operations(layer),
        )

    def simulate(self, workload: ModelWorkload) -> AcceleratorReport:
        """Simulate a complete model workload."""
        report = AcceleratorReport(
            accelerator=self.name,
            model_name=workload.model_name,
            dataset_name=workload.dataset_name,
            frequency_hz=self.config.frequency_hz,
            area_mm2=self.area_mm2,
        )
        executed = 0.0
        for layer in workload:
            report.layers.append(self.simulate_layer(layer))
            executed += self.layer_executed_accumulations(layer)
        runtime = report.runtime_seconds
        # Dynamic energy scales with the accumulations actually executed
        # (adder switching plus weight / partial-sum SRAM traffic); static
        # energy scales with runtime.
        dynamic_core = executed * ACCUMULATE_ENERGY_PJ * 1e-12
        dynamic_buffer = (
            executed
            * BUFFER_BYTES_PER_ACCUMULATION
            * BUFFER_ENERGY_PER_BYTE_PJ
            * 1e-12
        )
        report.core_energy = self.core_power_mw * 1e-3 * runtime + dynamic_core
        report.buffer_energy = self.buffer_power_mw * 1e-3 * runtime + dynamic_buffer
        report.dram_energy = report.total_dram_bytes * DRAM_ENERGY_PER_BYTE_PJ * 1e-12
        return report


def load_imbalance_cycles(
    activations: np.ndarray, lanes: int, rows_per_group: int, work_per_one: float
) -> float:
    """Cycle count of a row-parallel accelerator with load imbalance.

    Rows are processed in groups of ``rows_per_group`` parallel lanes; the
    group finishes when its most spike-heavy row finishes, which is the
    load-imbalance effect unstructured sparsity causes on parallel SNN
    dataflows.
    """
    if lanes < 1 or rows_per_group < 1:
        raise ValueError("lanes and rows_per_group must be >= 1")
    popcounts = np.asarray(activations).sum(axis=1)
    cycles = 0.0
    lanes_per_row = max(lanes // rows_per_group, 1)
    for start in range(0, len(popcounts), rows_per_group):
        group = popcounts[start : start + rows_per_group]
        if group.size == 0:
            continue
        cycles += float(group.max()) * work_per_one / lanes_per_row
    return cycles
