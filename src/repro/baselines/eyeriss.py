"""Spiking Eyeriss: the dense baseline (no sparsity exploitation).

The paper compares against the spiking adaptation of Eyeriss used by
SpinalFlow: a row-stationary dataflow that performs an accumulation for
*every* activation/weight pair, zero or not.  It therefore sets the 1x
reference point of Table 2 and Fig. 8.

Like every baseline, the model plugs its dataflow into the shared
compute → DRAM stage pipeline of :class:`~repro.baselines.base.BaselineAccelerator`
and reports through the canonical :class:`~repro.hw.pipeline.RunResult`
schema.
"""

from __future__ import annotations

from ..workloads.workload import LayerWorkload
from .base import BaselineAccelerator


class SpikingEyeriss(BaselineAccelerator):
    """Dense spiking accelerator (Eyeriss adapted to SNNs)."""

    name = "eyeriss"
    area_mm2 = 1.068  # Table 2
    core_power_mw = 260.0
    buffer_power_mw = 190.0

    #: Parallel scalar accumulators (14x12 PE array equivalent).
    lanes = 256
    #: Average PE-array utilisation of the row-stationary dataflow.
    utilization = 0.85

    def layer_compute_cycles(self, layer: LayerWorkload) -> float:
        """Dense execution: every (M, K, N) accumulation is performed."""
        total_accumulations = layer.m * layer.k * layer.n
        return total_accumulations / (self.lanes * self.utilization)

    def layer_executed_accumulations(self, layer: LayerWorkload) -> float:
        """A dense accelerator executes the full M x K x N accumulation count."""
        return float(layer.m * layer.k * layer.n)
