"""SATO: temporal-oriented dataflow accelerator (DAC 2022).

SATO integrates input spikes in parallel at each time step with a binary
adder-search tree.  It skips zero activations, but distributing rows over
parallel lanes makes it sensitive to load imbalance: a lane group only
finishes when its most spike-heavy row finishes (Section 5.3.1 notes
"some load imbalance issues").  The model captures exactly that effect,
plus the adder-search-tree overhead as a utilisation factor.

The dataflow plugs into the shared compute → DRAM stage pipeline of
:class:`~repro.baselines.base.BaselineAccelerator` and reports through
the canonical :class:`~repro.hw.pipeline.RunResult` schema.
"""

from __future__ import annotations

from ..workloads.workload import LayerWorkload
from .base import BaselineAccelerator, load_imbalance_cycles


class SATO(BaselineAccelerator):
    """Bit-sparse accelerator with row-parallel load imbalance."""

    name = "sato"
    area_mm2 = 1.13  # Table 2
    core_power_mw = 230.0
    buffer_power_mw = 170.0

    #: Parallel scalar accumulators.
    lanes = 256
    #: Rows processed concurrently by separate lane groups.
    rows_per_group = 16
    #: Adder-search-tree and output-spike-generation overhead.
    utilization = 0.45

    def layer_compute_cycles(self, layer: LayerWorkload) -> float:
        """Row-parallel bit-sparse execution with group-level imbalance."""
        cycles = load_imbalance_cycles(
            layer.activations,
            lanes=self.lanes,
            rows_per_group=self.rows_per_group,
            work_per_one=layer.n,
        )
        return cycles / self.utilization
