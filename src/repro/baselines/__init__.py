"""Analytical models of prior SNN accelerators (Table 2 baselines)."""

from .base import (
    AcceleratorReport,
    BaselineAccelerator,
    BaselineLayerResult,
    load_imbalance_cycles,
    paper_operations,
)
from .eyeriss import SpikingEyeriss
from .ptb import PTB
from .registry import (
    BASELINE_CLASSES,
    BASELINE_ORDER,
    PhiAccelerator,
    available_baselines,
    get_baseline,
    simulation_to_report,
)
from .sato import SATO
from .spinalflow import SpinalFlow
from .stellar import Stellar

__all__ = [
    "BaselineAccelerator",
    "BaselineLayerResult",
    "AcceleratorReport",
    "paper_operations",
    "load_imbalance_cycles",
    "SpikingEyeriss",
    "PTB",
    "SATO",
    "SpinalFlow",
    "Stellar",
    "PhiAccelerator",
    "get_baseline",
    "available_baselines",
    "simulation_to_report",
    "BASELINE_CLASSES",
    "BASELINE_ORDER",
]
