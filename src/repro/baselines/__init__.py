"""Analytical models of prior SNN accelerators (Table 2 baselines).

Every baseline implements the unified
:class:`~repro.hw.pipeline.AcceleratorModel` interface and reports
through the canonical :class:`~repro.hw.pipeline.RunResult` schema, so
the sweep engine and the experiment harnesses treat Phi and the
baselines identically.
"""

from .base import (
    AcceleratorReport,
    BaselineAccelerator,
    BaselineLayerResult,
    load_imbalance_cycles,
    paper_operations,
)
from .eyeriss import SpikingEyeriss
from .ptb import PTB
from .registry import (
    BASELINE_CLASSES,
    BASELINE_ORDER,
    PhiAccelerator,
    available_baselines,
    get_accelerator,
    get_baseline,
    simulation_to_report,
)
from .sato import SATO
from .spinalflow import SpinalFlow
from .stellar import Stellar

__all__ = [
    "BaselineAccelerator",
    "BaselineLayerResult",
    "AcceleratorReport",
    "paper_operations",
    "load_imbalance_cycles",
    "SpikingEyeriss",
    "PTB",
    "SATO",
    "SpinalFlow",
    "Stellar",
    "PhiAccelerator",
    "get_accelerator",
    "get_baseline",
    "available_baselines",
    "simulation_to_report",
    "BASELINE_CLASSES",
    "BASELINE_ORDER",
]
