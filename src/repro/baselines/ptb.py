"""PTB: Parallel Time Batching (HPCA 2022).

PTB processes spike inputs in parallel time windows on a systolic array.
Because whole windows are scheduled as a unit, inactive positions inside
an otherwise-active window are still processed, so only part of the bit
sparsity is harvested (Section 2.2 / 5.3.1 of the Phi paper).  The model
reproduces that mechanism at window granularity.

The dataflow plugs into the shared compute → DRAM stage pipeline of
:class:`~repro.baselines.base.BaselineAccelerator` and reports through
the canonical :class:`~repro.hw.pipeline.RunResult` schema.
"""

from __future__ import annotations

import numpy as np

from ..workloads.workload import LayerWorkload
from .base import BaselineAccelerator


class PTB(BaselineAccelerator):
    """Systolic-array accelerator with time-window batching."""

    name = "ptb"
    area_mm2 = 1.0  # not reported in Table 2; assumed comparable to SATO
    core_power_mw = 240.0
    buffer_power_mw = 180.0

    #: Parallel scalar accumulators in the systolic array.
    lanes = 256
    #: Window size: positions grouped into one scheduling unit.
    window = 4
    #: Systolic-array utilisation.
    utilization = 0.70

    def _processed_positions(self, layer: LayerWorkload) -> int:
        """Activation positions scheduled: whole windows with any spike."""
        activations = layer.activations
        k = activations.shape[1]
        processed = 0
        for start in range(0, k, self.window):
            block = activations[:, start : start + self.window]
            active_rows = np.any(block, axis=1)
            processed += int(active_rows.sum()) * block.shape[1]
        return processed

    def layer_compute_cycles(self, layer: LayerWorkload) -> float:
        """Window-granular execution: an active window is fully processed."""
        total_accumulations = self._processed_positions(layer) * layer.n
        return total_accumulations / (self.lanes * self.utilization)

    def layer_executed_accumulations(self, layer: LayerWorkload) -> float:
        """Every position inside an active window is accumulated."""
        return float(self._processed_positions(layer) * layer.n)
