"""Stellar: Few-Spikes co-designed accelerator (HPCA 2024).

Stellar is the strongest prior baseline: it retrains models with
Few-Spikes (FS) neurons to raise activation sparsity and pairs them with a
spatiotemporal dataflow.  The Phi paper uses Stellar's reported numbers;
here we model its dataflow analytically: the FS neuron reduces the number
of spike-triggered accumulations and the dedicated dataflow executes them
at high utilisation, giving it the best baseline throughput, energy and
area efficiency — but still roughly 3.4x short of Phi.

The dataflow plugs into the shared compute → DRAM stage pipeline of
:class:`~repro.baselines.base.BaselineAccelerator` and reports through
the canonical :class:`~repro.hw.pipeline.RunResult` schema.
"""

from __future__ import annotations

import numpy as np

from ..snn.neurons import FewSpikesNeuron
from ..workloads.workload import LayerWorkload
from .base import BaselineAccelerator


class Stellar(BaselineAccelerator):
    """Few-Spikes-driven accelerator with spatiotemporal dataflow."""

    name = "stellar"
    area_mm2 = 0.768  # Table 2
    core_power_mw = 160.0
    buffer_power_mw = 130.0

    #: Parallel scalar accumulators.
    lanes = 256
    #: Dataflow utilisation.
    utilization = 0.72
    #: Fraction of spike accumulations remaining after FS-neuron retraining
    #: (FS coding fires markedly fewer spikes than rate-coded LIF models).
    fs_spike_fraction = 0.92

    def layer_compute_cycles(self, layer: LayerWorkload) -> float:
        """Bit-sparse execution on FS-recoded activations."""
        return self.layer_executed_accumulations(layer) / (self.lanes * self.utilization)

    def layer_executed_accumulations(self, layer: LayerWorkload) -> float:
        """FS recoding removes a fraction of the spike-triggered work."""
        effective_ones = int(layer.activations.sum()) * self.fs_spike_fraction
        return float(effective_ones * layer.n)

    @staticmethod
    def fs_recode(values: np.ndarray, num_steps: int = 4) -> np.ndarray:
        """Re-encode analog values with FS neurons (helper for studies)."""
        neuron = FewSpikesNeuron(num_steps=num_steps)
        return neuron.encode(values)
