"""SpinalFlow: temporally-sorted sparse SNN accelerator (ISCA 2020).

SpinalFlow sorts input spikes chronologically and processes them
sequentially, skipping zeros entirely.  It performs well on bit sparsity
but its dataflow assumes each neuron fires at most once over all time
steps, an assumption that costs accuracy and generality (Section 5.3.1).
Performance-wise the model executes one accumulation per '1' activation
with a sequential-processing efficiency factor.

The dataflow plugs into the shared compute → DRAM stage pipeline of
:class:`~repro.baselines.base.BaselineAccelerator` and reports through
the canonical :class:`~repro.hw.pipeline.RunResult` schema.
"""

from __future__ import annotations

from ..workloads.workload import LayerWorkload
from .base import BaselineAccelerator, paper_operations


class SpinalFlow(BaselineAccelerator):
    """Sequential bit-sparse accelerator."""

    name = "spinalflow"
    area_mm2 = 2.09  # Table 2
    core_power_mw = 330.0
    buffer_power_mw = 260.0

    #: Parallel scalar accumulators (128 PEs x SIMD lanes equivalent).
    lanes = 256
    #: Sorting/sequencing efficiency of the chronological dataflow.
    utilization = 0.67

    def layer_compute_cycles(self, layer: LayerWorkload) -> float:
        """One accumulation per '1' activation, processed sequentially."""
        return paper_operations(layer) / (self.lanes * self.utilization)
