"""Registry of baseline accelerators and the Phi adapter.

The experiments iterate over accelerators by name; :func:`get_baseline`
returns analytical baseline models and :func:`get_accelerator` resolves
*any* accelerator — Phi included — to an
:class:`~repro.hw.pipeline.AcceleratorModel`, so Table 2 / Fig. 8 style
comparisons are one loop over one interface.  Since the unified-pipeline
refactor every model already emits the canonical
:class:`~repro.hw.pipeline.RunResult`; :class:`PhiAccelerator` and
:func:`simulation_to_report` survive as thin compatibility shims.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Type

from ..core.calibration import ModelCalibration
from ..core.config import PhiConfig
from ..hw.config import ArchConfig
from ..hw.pipeline import AcceleratorModel, RunResult
from ..hw.simulator import PhiSimulator
from ..workloads.workload import ModelWorkload
from .base import BaselineAccelerator
from .eyeriss import SpikingEyeriss
from .ptb import PTB
from .sato import SATO
from .spinalflow import SpinalFlow
from .stellar import Stellar

BASELINE_CLASSES: dict[str, Type[BaselineAccelerator]] = {
    "eyeriss": SpikingEyeriss,
    "ptb": PTB,
    "sato": SATO,
    "spinalflow": SpinalFlow,
    "stellar": Stellar,
}

#: Order used when reporting Table 2 / Fig. 8 comparisons.
BASELINE_ORDER = ("eyeriss", "ptb", "sato", "spinalflow", "stellar")


def available_baselines() -> list[str]:
    """Names of all baseline accelerators."""
    return list(BASELINE_ORDER)


def get_baseline(name: str, config: ArchConfig | None = None) -> BaselineAccelerator:
    """Instantiate a baseline accelerator by name."""
    try:
        cls = BASELINE_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown baseline {name!r}; available: {sorted(BASELINE_CLASSES)}"
        ) from None
    return cls(config)


def get_accelerator(
    name: str,
    config: ArchConfig | None = None,
    phi_config: PhiConfig | None = None,
) -> AcceleratorModel:
    """Resolve any accelerator name — ``"phi"`` or a baseline — to a model.

    Parameters
    ----------
    name:
        ``"phi"`` or one of :data:`BASELINE_ORDER`.
    config:
        Architecture configuration shared by every model.
    phi_config:
        Algorithm configuration, used only by the Phi simulator.

    Returns
    -------
    AcceleratorModel
        The model; callers drive it exclusively through the unified
        ``simulate`` / ``simulate_many`` interface.
    """
    if name == "phi":
        return PhiSimulator(config, phi_config)
    return get_baseline(name, config)


class PhiAccelerator:
    """Compatibility adapter for the pre-pipeline baseline interface.

    The Phi simulator now implements
    :class:`~repro.hw.pipeline.AcceleratorModel` directly and returns the
    canonical :class:`~repro.hw.pipeline.RunResult`; this wrapper simply
    delegates and is kept so existing comparison scripts keep working.
    """

    name = PhiSimulator.name
    #: Table 3 total area.
    area_mm2 = PhiSimulator.area_mm2

    def __init__(
        self,
        arch_config: ArchConfig | None = None,
        phi_config: PhiConfig | None = None,
    ) -> None:
        self.config = arch_config or ArchConfig()
        self.simulator = PhiSimulator(self.config, phi_config)

    def simulate(
        self,
        workload: ModelWorkload,
        *,
        calibration: ModelCalibration | None = None,
    ) -> RunResult:
        """Run the Phi simulator; the result is already a canonical report."""
        return self.simulator.run(workload, calibration=calibration)


def simulation_to_report(
    result: RunResult,
    *,
    area_mm2: float = PhiSimulator.area_mm2,
    name: str = "phi",
) -> RunResult:
    """Compatibility shim: a simulation result already is the report.

    Parameters
    ----------
    result:
        A Phi :class:`~repro.hw.pipeline.RunResult`.
    area_mm2, name:
        Overrides applied to the returned copy (historically this
        function re-keyed the record for ablated Phi variants).

    Returns
    -------
    RunResult
        A shallow copy with the requested accelerator name and area; the
        layer list is shared with the input.
    """
    return replace(result, accelerator=name, area_mm2=area_mm2)
