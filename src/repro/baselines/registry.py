"""Registry of baseline accelerators and the Phi adapter.

The experiments iterate over accelerators by name; :func:`get_baseline`
returns analytical baseline models and :class:`PhiAccelerator` wraps the
cycle-level Phi simulator behind the same :class:`AcceleratorReport`
interface so Table 2 / Fig. 8 style comparisons are one loop.
"""

from __future__ import annotations

from typing import Type

from ..core.calibration import ModelCalibration
from ..core.config import PhiConfig
from ..hw.config import ArchConfig
from ..hw.simulator import PhiSimulator, SimulationResult
from ..workloads.workload import ModelWorkload
from .base import AcceleratorReport, BaselineAccelerator, BaselineLayerResult
from .eyeriss import SpikingEyeriss
from .ptb import PTB
from .sato import SATO
from .spinalflow import SpinalFlow
from .stellar import Stellar

BASELINE_CLASSES: dict[str, Type[BaselineAccelerator]] = {
    "eyeriss": SpikingEyeriss,
    "ptb": PTB,
    "sato": SATO,
    "spinalflow": SpinalFlow,
    "stellar": Stellar,
}

#: Order used when reporting Table 2 / Fig. 8 comparisons.
BASELINE_ORDER = ("eyeriss", "ptb", "sato", "spinalflow", "stellar")


def available_baselines() -> list[str]:
    """Names of all baseline accelerators."""
    return list(BASELINE_ORDER)


def get_baseline(name: str, config: ArchConfig | None = None) -> BaselineAccelerator:
    """Instantiate a baseline accelerator by name."""
    try:
        cls = BASELINE_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown baseline {name!r}; available: {sorted(BASELINE_CLASSES)}"
        ) from None
    return cls(config)


class PhiAccelerator:
    """Adapter exposing the Phi simulator through the baseline interface."""

    name = "phi"
    #: Table 3 total area.
    area_mm2 = 0.662

    def __init__(
        self,
        arch_config: ArchConfig | None = None,
        phi_config: PhiConfig | None = None,
    ) -> None:
        self.config = arch_config or ArchConfig()
        self.simulator = PhiSimulator(self.config, phi_config)

    def simulate(
        self,
        workload: ModelWorkload,
        *,
        calibration: ModelCalibration | None = None,
    ) -> AcceleratorReport:
        """Run the Phi simulator and convert its result to a report."""
        result = self.simulator.run(workload, calibration=calibration)
        return simulation_to_report(result, area_mm2=self.area_mm2)


def simulation_to_report(
    result: SimulationResult, *, area_mm2: float = 0.662, name: str = "phi"
) -> AcceleratorReport:
    """Convert a :class:`SimulationResult` into an :class:`AcceleratorReport`."""
    report = AcceleratorReport(
        accelerator=name,
        model_name=result.model_name,
        dataset_name=result.dataset_name,
        frequency_hz=result.config.frequency_hz,
        area_mm2=area_mm2,
    )
    for layer in result.layers:
        report.layers.append(
            BaselineLayerResult(
                layer_name=layer.layer_name,
                compute_cycles=layer.compute_cycles,
                memory_cycles=layer.memory_cycles,
                dram_bytes=layer.dram_bytes,
                operations=layer.operation_counts.bit_sparse_ops * layer.n,
            )
        )
    energy = result.energy
    report.core_energy = energy.core
    report.buffer_energy = energy.buffer
    report.dram_energy = energy.dram
    return report
