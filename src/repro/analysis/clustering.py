"""Quantitative clustering analysis of binary activation rows.

The t-SNE pictures in Fig. 1 and Fig. 9 are qualitative; these metrics
quantify the same phenomena so tests and benchmarks can assert them:

* *pattern concentration* — how much of the activation mass the most
  frequent row patterns cover (SNN rows repeat, random rows do not),
* *clustering score* — mean Hamming distance of rows to their nearest
  k-means centre, normalised by the expected distance of density-matched
  random rows (lower = tighter clusters), and
* *train/test consistency* — how similar two distributions of row
  patterns are (Fig. 9a shows train and test overlap).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..core.config import KMeansConfig
from ..core.kmeans import binary_kmeans, filter_calibration_rows, hamming_distance_matrix


@dataclass(frozen=True)
class ClusterStats:
    """Clustering statistics of a set of binary rows."""

    num_rows: int
    num_unique_rows: int
    top_pattern_coverage: float
    mean_distance_to_center: float
    normalized_cluster_score: float

    @property
    def unique_fraction(self) -> float:
        """Fraction of rows that are distinct."""
        if self.num_rows == 0:
            return 0.0
        return self.num_unique_rows / self.num_rows


def pattern_histogram(rows: np.ndarray) -> Counter:
    """Count how often each exact binary row pattern occurs."""
    rows = np.asarray(rows, dtype=np.uint8)
    if rows.ndim != 2:
        raise ValueError("rows must be 2-D")
    return Counter(row.tobytes() for row in rows)


def top_pattern_coverage(rows: np.ndarray, top_k: int = 128) -> float:
    """Fraction of rows covered by the ``top_k`` most frequent patterns."""
    rows = np.asarray(rows, dtype=np.uint8)
    if rows.shape[0] == 0:
        return 0.0
    histogram = pattern_histogram(rows)
    covered = sum(count for _, count in histogram.most_common(top_k))
    return covered / rows.shape[0]


def expected_random_distance(width: int, density: float, num_clusters: int) -> float:
    """Expected nearest-centre Hamming distance for density-matched random rows.

    For i.i.d. Bernoulli(density) rows and centres the expected distance to
    a *fixed* centre is ``2 * width * density * (1 - density)``; dividing
    measured distances by this value yields a scale-free clustering score
    (1.0 = no better than random structure, << 1 = strongly clustered).
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must be in [0, 1]")
    baseline = 2.0 * width * density * (1.0 - density)
    # The minimum over several clusters is a bit lower than the mean; a
    # first-order correction keeps the score conservative.
    correction = max(1.0 - 0.05 * np.log2(max(num_clusters, 1)), 0.5)
    return max(baseline * correction, 1e-9)


def cluster_stats(
    rows: np.ndarray,
    *,
    num_clusters: int = 16,
    seed: int = 0,
    filter_degenerate: bool = True,
) -> ClusterStats:
    """Compute clustering statistics for a set of binary activation rows."""
    rows = np.asarray(rows, dtype=np.uint8)
    if rows.ndim != 2 or rows.shape[0] == 0:
        raise ValueError("rows must be a non-empty 2-D binary matrix")
    analysed = (
        filter_calibration_rows(rows) if filter_degenerate else rows
    )
    if analysed.shape[0] < max(num_clusters, 2):
        analysed = rows

    unique_rows = np.unique(analysed, axis=0)
    clusters = min(num_clusters, unique_rows.shape[0])
    result = binary_kmeans(analysed, clusters, KMeansConfig(seed=seed))
    distances = hamming_distance_matrix(analysed, result.centers)
    nearest = distances.min(axis=1)
    mean_distance = float(nearest.mean())

    density = float(analysed.mean())
    baseline = expected_random_distance(analysed.shape[1], density, clusters)
    return ClusterStats(
        num_rows=int(rows.shape[0]),
        num_unique_rows=int(np.unique(rows, axis=0).shape[0]),
        top_pattern_coverage=top_pattern_coverage(rows),
        mean_distance_to_center=mean_distance,
        normalized_cluster_score=mean_distance / baseline,
    )


def distribution_overlap(rows_a: np.ndarray, rows_b: np.ndarray) -> float:
    """Overlap (0..1) between two row-pattern distributions (Fig. 9a).

    Computed as the sum over patterns of ``min(p_a, p_b)`` — 1.0 means the
    two sets use exactly the same patterns with the same frequencies.
    """
    rows_a = np.asarray(rows_a, dtype=np.uint8)
    rows_b = np.asarray(rows_b, dtype=np.uint8)
    if rows_a.shape[0] == 0 or rows_b.shape[0] == 0:
        return 0.0
    hist_a = pattern_histogram(rows_a)
    hist_b = pattern_histogram(rows_b)
    total_a = rows_a.shape[0]
    total_b = rows_b.shape[0]
    overlap = 0.0
    for pattern, count_a in hist_a.items():
        count_b = hist_b.get(pattern, 0)
        overlap += min(count_a / total_a, count_b / total_b)
    return overlap
