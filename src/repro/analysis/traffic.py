"""Memory-traffic analysis (Fig. 12 of the paper).

Two comparisons are reported:

* **Activation traffic** (Fig. 12a): dense bit-packed activations (the
  Spiking Eyeriss baseline) vs the Phi representation without the compact
  data structure (full element matrix plus pattern indices) vs the compact
  compressed form that only stores nonzero corrections.
* **Weight traffic** (Fig. 12b): dense weights vs Phi without the PWP
  prefetcher (every calibrated PWP streamed per tile) vs Phi with the
  prefetcher (only the PWPs that the pattern-index matrix actually uses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..hw.simulator import SimulationResult


@dataclass(frozen=True)
class ActivationTraffic:
    """Activation DRAM traffic under the three schemes of Fig. 12a (bytes)."""

    dense: float
    phi_uncompressed: float
    phi_compressed: float

    @property
    def compressed_ratio(self) -> float:
        """Phi compressed traffic normalised by dense traffic."""
        return self.phi_compressed / self.dense if self.dense else 0.0

    @property
    def uncompressed_ratio(self) -> float:
        """Phi uncompressed traffic normalised by dense traffic."""
        return self.phi_uncompressed / self.dense if self.dense else 0.0


@dataclass(frozen=True)
class WeightTraffic:
    """Weight / PWP DRAM traffic under the three schemes of Fig. 12b (bytes)."""

    dense: float
    phi_without_prefetch: float
    phi_with_prefetch: float

    @property
    def with_prefetch_ratio(self) -> float:
        """Phi prefetched traffic normalised by dense weight traffic."""
        return self.phi_with_prefetch / self.dense if self.dense else 0.0

    @property
    def without_prefetch_ratio(self) -> float:
        """Phi unfiltered traffic normalised by dense weight traffic."""
        return self.phi_without_prefetch / self.dense if self.dense else 0.0

    @property
    def prefetch_saving(self) -> float:
        """Fraction of PWP traffic removed by the prefetcher."""
        if self.phi_without_prefetch == 0:
            return 0.0
        return 1.0 - self.phi_with_prefetch / self.phi_without_prefetch


def activation_traffic_from_layers(
    layers: Iterable[Mapping[str, float]],
) -> ActivationTraffic:
    """Fig. 12a comparison from per-layer sweep-engine records."""
    dense = 0.0
    uncompressed = 0.0
    compressed = 0.0
    for layer in layers:
        dense += layer["m"] * layer["k"] / 8.0
        uncompressed += layer["activation_bytes_uncompressed"]
        compressed += layer["activation_bytes"]
    return ActivationTraffic(
        dense=dense, phi_uncompressed=uncompressed, phi_compressed=compressed
    )


def weight_traffic_from_layers(
    layers: Iterable[Mapping[str, float]],
) -> WeightTraffic:
    """Fig. 12b comparison from per-layer sweep-engine records."""
    dense = 0.0
    without_prefetch = 0.0
    with_prefetch = 0.0
    for layer in layers:
        dense += layer["weight_bytes"]
        without_prefetch += layer["weight_bytes"] + layer["pwp_bytes_unfiltered"]
        with_prefetch += layer["weight_bytes"] + layer["pwp_bytes_prefetched"]
    return WeightTraffic(
        dense=dense,
        phi_without_prefetch=without_prefetch,
        phi_with_prefetch=with_prefetch,
    )


def _layer_records(result: SimulationResult) -> list[dict]:
    return [
        {
            "m": layer.m,
            "k": layer.k,
            "activation_bytes": layer.activation_bytes,
            "activation_bytes_uncompressed": layer.activation_bytes_uncompressed,
            "weight_bytes": layer.weight_bytes,
            "pwp_bytes_prefetched": layer.pwp_bytes_prefetched,
            "pwp_bytes_unfiltered": layer.pwp_bytes_unfiltered,
        }
        for layer in result.layers
    ]


def activation_traffic(result: SimulationResult) -> ActivationTraffic:
    """Aggregate Fig. 12a activation-traffic comparison for one model."""
    return activation_traffic_from_layers(_layer_records(result))


def weight_traffic(result: SimulationResult) -> WeightTraffic:
    """Aggregate Fig. 12b weight-traffic comparison for one model."""
    return weight_traffic_from_layers(_layer_records(result))
