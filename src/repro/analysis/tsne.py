"""Minimal t-SNE implementation for activation visualisation (Fig. 1 / 9).

The paper uses t-SNE to show that SNN activation rows form tight clusters
while DNN activations and random data do not.  SciPy does not ship t-SNE,
so this module implements the standard algorithm (Gaussian affinities with
per-point perplexity calibration, Student-t low-dimensional kernel,
gradient descent with momentum and early exaggeration) on NumPy.  It is
meant for the modest row counts of the experiments (a few hundred to a few
thousand rows).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def pairwise_squared_distances(data: np.ndarray) -> np.ndarray:
    """Squared Euclidean distance matrix of the rows of ``data``."""
    data = np.asarray(data, dtype=np.float64)
    norms = (data ** 2).sum(axis=1)
    distances = norms[:, None] + norms[None, :] - 2.0 * data @ data.T
    np.fill_diagonal(distances, 0.0)
    return np.maximum(distances, 0.0)


def _conditional_probabilities(
    distances: np.ndarray, perplexity: float, tolerance: float = 1e-4, max_iter: int = 50
) -> np.ndarray:
    """Row-wise Gaussian affinities whose entropy matches the perplexity."""
    n = distances.shape[0]
    target_entropy = np.log(perplexity)
    probabilities = np.zeros((n, n))
    for i in range(n):
        beta_low, beta_high = 1e-20, 1e20
        beta = 1.0
        row = distances[i].copy()
        row[i] = np.inf
        for _ in range(max_iter):
            exponent = np.exp(-row * beta)
            total = exponent.sum()
            if total <= 0:
                beta /= 2.0
                continue
            p = exponent / total
            nonzero = p > 0
            entropy = -np.sum(p[nonzero] * np.log(p[nonzero]))
            diff = entropy - target_entropy
            if abs(diff) < tolerance:
                break
            if diff > 0:
                beta_low = beta
                beta = beta * 2.0 if beta_high >= 1e19 else (beta + beta_high) / 2.0
            else:
                beta_high = beta
                beta = beta / 2.0 if beta_low <= 1e-19 else (beta + beta_low) / 2.0
        probabilities[i] = exponent / max(total, 1e-12)
        probabilities[i, i] = 0.0
    return probabilities


@dataclass(frozen=True)
class TSNEResult:
    """Output of a t-SNE run."""

    embedding: np.ndarray
    kl_divergence: float
    iterations: int


def tsne(
    data: np.ndarray,
    *,
    num_components: int = 2,
    perplexity: float = 20.0,
    learning_rate: float = 100.0,
    num_iterations: int = 250,
    early_exaggeration: float = 4.0,
    seed: int = 0,
) -> TSNEResult:
    """Project ``data`` rows into ``num_components`` dimensions with t-SNE."""
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError("data must be 2-D")
    n = data.shape[0]
    if n < 5:
        raise ValueError("t-SNE needs at least 5 rows")
    perplexity = min(perplexity, (n - 1) / 3.0)

    distances = pairwise_squared_distances(data)
    conditional = _conditional_probabilities(distances, perplexity)
    joint = (conditional + conditional.T) / (2.0 * n)
    joint = np.maximum(joint, 1e-12)

    rng = np.random.default_rng(seed)
    embedding = rng.normal(0.0, 1e-4, size=(n, num_components))
    velocity = np.zeros_like(embedding)
    momentum = 0.5
    exaggeration_end = num_iterations // 4

    kl = float("inf")
    for iteration in range(num_iterations):
        p = joint * early_exaggeration if iteration < exaggeration_end else joint
        low_dist = pairwise_squared_distances(embedding)
        student = 1.0 / (1.0 + low_dist)
        np.fill_diagonal(student, 0.0)
        q = student / max(student.sum(), 1e-12)
        q = np.maximum(q, 1e-12)

        pq_diff = (p - q) * student
        gradient = 4.0 * (
            np.diag(pq_diff.sum(axis=1)) @ embedding - pq_diff @ embedding
        )
        momentum = 0.5 if iteration < exaggeration_end else 0.8
        velocity = momentum * velocity - learning_rate * gradient
        embedding = embedding + velocity
        embedding = embedding - embedding.mean(axis=0)

        if iteration == num_iterations - 1:
            kl = float(np.sum(joint * np.log(joint / q)))

    return TSNEResult(embedding=embedding, kl_divergence=kl, iterations=num_iterations)
