"""Analysis tools: t-SNE, activation clustering and memory traffic."""

from .clustering import (
    ClusterStats,
    cluster_stats,
    distribution_overlap,
    expected_random_distance,
    pattern_histogram,
    top_pattern_coverage,
)
from .traffic import ActivationTraffic, WeightTraffic, activation_traffic, weight_traffic
from .tsne import TSNEResult, pairwise_squared_distances, tsne

__all__ = [
    "tsne",
    "TSNEResult",
    "pairwise_squared_distances",
    "ClusterStats",
    "cluster_stats",
    "pattern_histogram",
    "top_pattern_coverage",
    "distribution_overlap",
    "expected_random_distance",
    "ActivationTraffic",
    "WeightTraffic",
    "activation_traffic",
    "weight_traffic",
]
