"""Tests for the baseline accelerator models and the Phi adapter."""

import numpy as np
import pytest

from repro.baselines import (
    PTB,
    SATO,
    AcceleratorReport,
    PhiAccelerator,
    SpikingEyeriss,
    SpinalFlow,
    Stellar,
    available_baselines,
    get_baseline,
    load_imbalance_cycles,
    paper_operations,
)
from repro.core import PhiConfig
from repro.workloads import generate_random_workload


@pytest.fixture(scope="module")
def reports(vgg_workload):
    reports = {name: get_baseline(name).simulate(vgg_workload) for name in available_baselines()}
    phi = PhiAccelerator(
        phi_config=PhiConfig(partition_size=16, num_patterns=32, calibration_samples=2000)
    )
    reports["phi"] = phi.simulate(vgg_workload)
    return reports


class TestRegistry:
    def test_available(self):
        assert available_baselines() == ["eyeriss", "ptb", "sato", "spinalflow", "stellar"]

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_baseline("tpu")

    def test_instances(self):
        assert isinstance(get_baseline("eyeriss"), SpikingEyeriss)
        assert isinstance(get_baseline("ptb"), PTB)
        assert isinstance(get_baseline("sato"), SATO)
        assert isinstance(get_baseline("spinalflow"), SpinalFlow)
        assert isinstance(get_baseline("stellar"), Stellar)


class TestHelpers:
    def test_paper_operations(self, vgg_workload):
        layer = vgg_workload[0]
        assert paper_operations(layer) == int(layer.activations.sum()) * layer.n

    def test_load_imbalance_at_least_balanced(self, rng):
        activations = (rng.random((64, 32)) < 0.2).astype(np.uint8)
        imbalanced = load_imbalance_cycles(activations, lanes=64, rows_per_group=8, work_per_one=1)
        balanced = activations.sum() / 64
        assert imbalanced >= balanced

    def test_load_imbalance_invalid(self):
        with pytest.raises(ValueError):
            load_imbalance_cycles(np.zeros((2, 2)), lanes=0, rows_per_group=1, work_per_one=1)


class TestReports:
    def test_all_reports_consistent(self, reports, vgg_workload):
        for name, report in reports.items():
            assert isinstance(report, AcceleratorReport)
            assert report.total_cycles > 0, name
            assert report.total_operations > 0, name
            assert report.energy_joules > 0, name
            assert report.throughput_gops > 0, name
            assert report.area_efficiency_gops_per_mm2 > 0, name

    def test_same_operation_count_across_accelerators(self, reports):
        ops = {name: r.total_operations for name, r in reports.items()}
        assert len(set(ops.values())) == 1  # the OP definition is shared

    def test_energy_breakdown_sums(self, reports):
        for report in reports.values():
            breakdown = report.energy_breakdown()
            assert sum(breakdown.values()) == pytest.approx(report.energy_joules)


class TestOrdering:
    """The qualitative ordering of Table 2 / Fig. 8 must hold."""

    def test_sparse_accelerators_beat_dense(self, reports):
        dense = reports["eyeriss"].throughput_gops
        for name in ("ptb", "sato", "spinalflow", "stellar", "phi"):
            assert reports[name].throughput_gops > dense, name

    def test_phi_has_best_throughput(self, reports):
        phi = reports["phi"].throughput_gops
        for name, report in reports.items():
            if name != "phi":
                assert phi >= report.throughput_gops, name

    def test_phi_beats_dense_energy_substantially(self, reports):
        assert (
            reports["phi"].energy_efficiency_gops_per_joule
            > 3.0 * reports["eyeriss"].energy_efficiency_gops_per_joule
        )

    def test_phi_has_best_area_efficiency(self, reports):
        phi = reports["phi"].area_efficiency_gops_per_mm2
        for name, report in reports.items():
            if name != "phi":
                assert phi > report.area_efficiency_gops_per_mm2, name

    def test_stellar_is_best_baseline(self, reports):
        stellar = reports["stellar"].throughput_gops
        for name in ("eyeriss", "ptb", "sato", "spinalflow"):
            assert stellar >= reports[name].throughput_gops


class TestCycleModels:
    def test_eyeriss_ignores_sparsity(self):
        sparse = generate_random_workload(density=0.05, m=128, k=64, n=32, seed=0)
        dense = generate_random_workload(density=0.50, m=128, k=64, n=32, seed=0)
        eyeriss = SpikingEyeriss()
        assert eyeriss.simulate(sparse).total_cycles == pytest.approx(
            eyeriss.simulate(dense).total_cycles
        )

    def test_spinalflow_scales_with_density(self):
        sparse = generate_random_workload(density=0.05, m=128, k=64, n=32, seed=0)
        dense = generate_random_workload(density=0.50, m=128, k=64, n=32, seed=0)
        spinalflow = SpinalFlow()
        assert (
            spinalflow.simulate(dense).total_cycles
            > spinalflow.simulate(sparse).total_cycles
        )

    def test_ptb_processes_whole_windows(self):
        workload = generate_random_workload(density=0.3, m=64, k=32, n=8, seed=2)
        ptb = PTB()
        layer = workload[0]
        assert ptb.layer_executed_accumulations(layer) >= paper_operations(layer)

    def test_sato_load_imbalance_visible(self):
        workload = generate_random_workload(density=0.2, m=128, k=64, n=16, seed=3)
        layer = workload[0]
        sato = SATO()
        spinalflow = SpinalFlow()
        # Per executed accumulation, SATO needs at least as many cycles as
        # the sequential bit-sparse design because of group imbalance.
        sato_cycles_per_op = sato.layer_compute_cycles(layer) / paper_operations(layer)
        spinal_cycles_per_op = spinalflow.layer_compute_cycles(layer) / paper_operations(layer)
        assert sato_cycles_per_op > spinal_cycles_per_op * 0.5

    def test_stellar_fs_recode(self):
        spikes = Stellar.fs_recode(np.array([0.25, 0.75]), num_steps=4)
        assert spikes.shape == (4, 2)
        assert set(np.unique(spikes)) <= {0.0, 1.0}
