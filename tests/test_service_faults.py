"""Fault-injection suite: the service under hostile and unlucky clients.

Each test injects one concrete failure mode from the hardening contract
(DESIGN.md, "Service architecture") and asserts the exactly-once and
byte-identical-records guarantees hold through it:

* a slow-loris client trickling bytes cannot pin a handler thread,
* a half-written request body is a clean 400, never a hang,
* a client that vanishes mid-response kills only its own connection,
* a full result cache (ENOSPC) degrades to compute-without-persist
  with identical payloads and no torn cache files,
* a SIGKILL during drain loses no committed state: the restarted
  service serves the same bytes, the cache validates, the audit log
  parses, and
* a connection reset after ``POST /jobs`` succeeded server-side is
  absorbed by retry + in-flight dedup without a second simulation.
"""

from __future__ import annotations

import errno
import json
import os
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
import warnings
from contextlib import contextmanager
from pathlib import Path

import pytest

import repro
import repro.runner.engine as engine_module
from repro.experiments.common import TINY
from repro.experiments.fig7 import run_fig7
from repro.experiments.registry import get_experiment
from repro.runner import ArtifactStore, ResultCache, SweepEngine
from repro.service import (
    DONE,
    AuditLog,
    JobService,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    serve,
)

FAST_RETRY = RetryPolicy(attempts=4, base_delay=0.01, max_delay=0.05, jitter=0.0)


@contextmanager
def served(tmp_path, *, cache=None, name="svc", request_timeout=60.0, audit=None):
    """A live in-process service, optionally over an injected cache."""
    engine = SweepEngine(
        cache=ResultCache(tmp_path / f"{name}-cache") if cache is None else cache,
        store=ArtifactStore(tmp_path / f"{name}-store"),
    )
    service = JobService(engine, workers=2, audit=audit)
    server = serve(service, request_timeout=request_timeout)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield ServiceClient(server.url, retry=FAST_RETRY), service, server
    finally:
        service.drain()
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def canonical(records: dict[str, dict]) -> dict[str, bytes]:
    """Records as canonical JSON bytes, for byte-identity comparisons."""
    return {
        key: json.dumps(record, sort_keys=True).encode()
        for key, record in records.items()
    }


def no_tmp_files(root: Path) -> bool:
    """Whether ``root`` holds no half-written ``*.tmp*`` cache files."""
    return not [p for p in root.rglob("*") if ".tmp" in p.name]


class TestSlowLoris:
    def test_trickling_client_is_cut_off_and_others_unaffected(self, tmp_path):
        with served(tmp_path, request_timeout=1.0) as (client, service, server):
            loris = socket.create_connection(("127.0.0.1", server.port), timeout=30)
            try:
                # Trickle an eternally unfinished request: headers never
                # complete, then silence.  Without the per-connection
                # timeout this pins a handler thread forever.
                loris.sendall(b"POST /jobs HTTP/1.1\r\nHost: x\r\nConte")
                # While the loris stalls, normal clients are served.
                for _ in range(3):
                    assert client.health()["status"] == "ok"
                # The server cuts the connection once the socket timeout
                # elapses: our read sees EOF (or a reset), not a hang.
                loris.settimeout(10)
                try:
                    leftover = loris.recv(4096)
                except ConnectionResetError:
                    leftover = b""  # an RST closes the connection too
                except TimeoutError:
                    pytest.fail("server never cut off the slow-loris client")
                assert leftover == b"" or b"HTTP/1.1" in leftover
            finally:
                loris.close()
            # The handler thread is free again and the service healthy.
            assert client.health()["status"] == "ok"

    def test_slow_body_trickle_is_bounded_too(self, tmp_path):
        with served(tmp_path, request_timeout=1.0) as (client, service, server):
            loris = socket.create_connection(("127.0.0.1", server.port), timeout=30)
            try:
                loris.sendall(
                    b"POST /jobs HTTP/1.1\r\nHost: x\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: 1000\r\n\r\n"
                )
                loris.sendall(b'{"experiment"')  # then stall mid-body
                start = time.monotonic()
                loris.settimeout(15)
                chunks = b""
                try:
                    while True:
                        chunk = loris.recv(4096)
                        if not chunk:
                            break
                        chunks += chunk
                except (ConnectionResetError, TimeoutError):
                    pass
                # Cut off within a couple of timeout windows, not 1000
                # bytes' worth of patience.
                assert time.monotonic() - start < 10
            finally:
                loris.close()
            assert client.health()["status"] == "ok"
            assert service.counts()["queued"] + service.counts()["running"] == 0


class TestHalfWrittenBody:
    def test_truncated_body_is_a_400_mentioning_the_byte_counts(self, tmp_path):
        with served(tmp_path) as (client, service, server):
            raw = socket.create_connection(("127.0.0.1", server.port), timeout=30)
            try:
                raw.sendall(
                    b"POST /jobs HTTP/1.1\r\nHost: x\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: 50\r\n\r\n"
                    b'{"experime'  # 10 of the promised 50 bytes
                )
                raw.shutdown(socket.SHUT_WR)  # client gave up mid-body
                raw.settimeout(15)
                response = b""
                while True:
                    chunk = raw.recv(4096)
                    if not chunk:
                        break
                    response += chunk
            finally:
                raw.close()
            head, _, body = response.partition(b"\r\n\r\n")
            assert b" 400 " in head.split(b"\r\n")[0]
            decoded = json.loads(body)
            assert "truncated" in decoded["error"]
            assert "50" in decoded["error"] and "10" in decoded["error"]
            # The desynced connection was closed, no job was accepted,
            # and the handler thread survived to serve real requests.
            assert service.counts()["queued"] + service.counts()["running"] == 0
            assert client.health()["status"] == "ok"


class TestMidResponseDrop:
    def test_vanishing_clients_never_kill_the_server(self, tmp_path):
        with served(tmp_path) as (client, service, server):
            for _ in range(5):
                rude = socket.create_connection(
                    ("127.0.0.1", server.port), timeout=30
                )
                rude.sendall(b"GET /experiments HTTP/1.1\r\nHost: x\r\n\r\n")
                # Vanish without reading the (large) response: the
                # server's write hits a dead socket sooner or later.
                rude.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    struct.pack("ii", 1, 0),  # RST instead of FIN on close
                )
                rude.close()
            # Every drop closed only its own connection.
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if client.health()["status"] == "ok":
                    break
            job = client.run("fig12", scale="tiny", timeout=600)
            assert job["status"] == DONE


class FullCache(ResultCache):
    """A result cache whose writes fail like a full disk (ENOSPC)."""

    def __init__(self, root):
        super().__init__(root)
        self.full = True

    def put(self, key, record):
        if self.full:
            raise OSError(errno.ENOSPC, "No space left on device (injected)")
        return super().put(key, record)


class TestStoreFull:
    def test_engine_warns_once_and_still_computes(self, tmp_path):
        cache = FullCache(tmp_path / "full-cache")
        spec = get_experiment("fig12")
        with SweepEngine(
            cache=cache, store=ArtifactStore(tmp_path / "store")
        ) as engine:
            with pytest.warns(RuntimeWarning, match="unwritable"):
                result = spec.run("tiny", engine=engine)
            assert result is not None
            # Warned exactly once per engine, not once per point.
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                spec.run("tiny", engine=engine)
            assert not [
                w for w in caught if "unwritable" in str(w.message)
            ]
        assert len(cache) == 0
        assert no_tmp_files(tmp_path / "full-cache")

    # The dispatcher thread's one-time warning cannot be caught from
    # the test thread; it is asserted separately in the engine test.
    @pytest.mark.filterwarnings("ignore:result cache")
    def test_job_completes_with_identical_payload_and_heals(self, tmp_path):
        cache = FullCache(tmp_path / "full-cache")
        with served(tmp_path, cache=cache, name="full") as (client, service, server):
            starved = client.run("fig12", scale="tiny", timeout=600)
            assert starved["status"] == DONE
            assert starved["progress"]["executed"] == starved["progress"]["points"]
            # Nothing persisted, nothing torn.
            assert len(cache) == 0
            assert no_tmp_files(tmp_path / "full-cache")
            # Records cannot be served while the disk is full...
            with pytest.raises(ServiceError) as err:
                client.records_for(starved)
            assert err.value.status == 404

            # ...but the computed payload is byte-identical to a healthy
            # service's: persistence failures never change results.
            with served(tmp_path, name="healthy") as (healthy_client, _, _):
                healthy = healthy_client.run("fig12", scale="tiny", timeout=600)
            assert json.dumps(starved["payload"], sort_keys=True) == json.dumps(
                healthy["payload"], sort_keys=True
            )

            # The disk frees up: the same service persists and serves
            # records again without a restart.
            cache.full = False
            healed = client.run("fig12", scale="tiny", timeout=600)
            assert healed["status"] == DONE
            assert len(cache) == healed["progress"]["points"]
            records = client.records_for(healed)
            assert set(records) == set(healed["record_keys"])
            assert no_tmp_files(tmp_path / "full-cache")


class TestDedupUnderRetry:
    def test_connection_reset_after_accepted_submit_never_runs_twice(
        self, tmp_path, monkeypatch
    ):
        """The POST /jobs retry contract: a submission whose *response*
        is lost lands on the same job when replayed, because the service
        deduplicates identical in-flight requests — asserted the hard
        way, by counting real ``simulate_point`` calls."""
        calls: list[str] = []
        lock = threading.Lock()
        real_simulate = engine_module.simulate_point

        def counting_simulate(point):
            with lock:
                calls.append(point.cache_key())
            return real_simulate(point)

        monkeypatch.setattr(engine_module, "simulate_point", counting_simulate)

        class FlakyClient(ServiceClient):
            """Drops the connection after the first POST /jobs commits."""

            dropped = False

            def _open(self, request, timeout):
                response = super()._open(request, timeout)
                if (
                    request.get_method() == "POST"
                    and request.selector == "/jobs"
                    and not FlakyClient.dropped
                ):
                    FlakyClient.dropped = True
                    # The server accepted the job; the response dies on
                    # the wire before the client can read it.
                    response.read()
                    response.close()
                    raise ConnectionResetError("injected: response lost")
                return response

        audit = AuditLog(tmp_path / "audit.jsonl")
        with served(tmp_path, audit=audit) as (_, service, server):
            flaky = FlakyClient(server.url, retry=FAST_RETRY)
            job = flaky.run("fig7", scale="tiny", timeout=600)
            assert FlakyClient.dropped, "fault was never injected"
            assert job["status"] == DONE
            # Exactly one job exists and the retry deduplicated onto it.
            assert len(service.jobs()) == 1
            # Exactly-once simulation: every point key is unique.
            assert len(calls) == len(set(calls))
            assert len(calls) == job["progress"]["executed"]

        events = [entry["event"] for entry in audit.entries()]
        assert events.count("job.submitted") == 1
        assert events.count("job.deduplicated") == 1
        assert events.count("job.done") == 1


@pytest.mark.slow
class TestKillDuringDrain:
    """SIGKILL a draining service; restart must lose nothing committed."""

    def _spawn(self, cache_dir, store_dir, audit_log, tmp_path):
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.service",
                "serve",
                "--port",
                "0",
                "--jobs",
                "1",
                "--cache-dir",
                str(cache_dir),
                "--store-dir",
                str(store_dir),
                "--audit-log",
                str(audit_log),
                "--quiet",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            cwd=str(tmp_path),
            env={
                **os.environ,
                "PYTHONUNBUFFERED": "1",
                # The suite's PYTHONPATH may be relative to the repo
                # root; the subprocess runs from tmp_path.
                "PYTHONPATH": str(Path(repro.__file__).resolve().parents[1]),
            },
        )
        try:
            for line in process.stdout:
                if line.startswith("serving on "):
                    return process, line.split()[-1]
            raise AssertionError(
                f"service never reported its URL (rc={process.poll()})"
            )
        except BaseException:
            process.kill()
            process.wait()
            raise

    def test_restart_after_kill_preserves_committed_state(self, tmp_path):
        cache_dir = tmp_path / "cache"
        store_dir = tmp_path / "store"
        audit_log = tmp_path / "audit.jsonl"

        process, url = self._spawn(cache_dir, store_dir, audit_log, tmp_path)
        try:
            client = ServiceClient(url, retry=FAST_RETRY)
            done = client.run("fig12", scale="tiny", timeout=600)
            assert done["status"] == DONE
            # Leave a bigger job mid-flight, start a graceful drain,
            # then murder the process mid-drain.
            client.submit("fig7", scale="tiny")
            client.shutdown()
            time.sleep(0.3)
        finally:
            process.kill()
            process.wait(timeout=30)

        # Whatever the kill interrupted, nothing committed is torn.
        assert no_tmp_files(cache_dir)
        for entry in AuditLog(audit_log).entries():
            assert "event" in entry  # every surviving line parses

        process, url = self._spawn(cache_dir, store_dir, audit_log, tmp_path)
        try:
            client = ServiceClient(url, retry=FAST_RETRY)
            # The finished job's points replay entirely from cache.
            again = client.run("fig12", scale="tiny", timeout=600)
            assert again["status"] == DONE
            assert again["progress"]["executed"] == 0
            assert again["progress"]["cache_hits"] == again["progress"]["points"]
            # The interrupted fig7 completes, and its records are
            # byte-identical to a from-scratch serial run's.
            fig7 = client.run("fig7", scale="tiny", timeout=600)
            assert fig7["status"] == DONE
            records = canonical(client.records_for(fig7))
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=60)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=30)

        serial_cache = ResultCache(tmp_path / "serial-cache")
        with SweepEngine(
            cache=serial_cache, store=ArtifactStore(tmp_path / "serial-store")
        ) as serial_engine:
            run_fig7(TINY, engine=serial_engine)
        serial = canonical(serial_cache.snapshot())
        assert records == {key: serial[key] for key in records}
        assert set(records) == set(serial)

        # The surviving cache passes the schema audit wholesale.
        audit_cmd = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.runner",
                "validate-cache",
                "--cache-dir",
                str(cache_dir),
            ],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert audit_cmd.returncode == 0, audit_cmd.stdout + audit_cmd.stderr

        # The audit trail across both lives replays the whole story.
        events = [entry["event"] for entry in AuditLog(audit_log).entries()]
        assert events.count("service.draining") >= 1
        assert "job.submitted" in events and "job.done" in events


class TestWorkerVanishesMidLease:
    """A fleet worker leases a unit and silently dies (in-process).

    The fast counterpart of the subprocess ``kill -9`` test in
    ``test_fabric.py``: the lease must expire at TTL, and with the fleet
    then empty the unit falls back to local simulation — the job
    completes as if the worker had never existed.
    """

    def test_job_completes_via_local_fallback(self, tmp_path):
        engine = SweepEngine(
            cache=ResultCache(tmp_path / "cache"),
            store=ArtifactStore(tmp_path / "store"),
        )
        service = JobService(engine, workers=2, lease_ttl=0.4)
        server = serve(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(server.url, retry=FAST_RETRY)
            worker_id = client.register_worker()["worker_id"]
            submitted = client.submit("fig12", scale="tiny")

            # Steal a lease for the job's first unit, then vanish: no
            # heartbeat, no ingest, no failure report.
            grant = None
            deadline = time.monotonic() + 30
            while grant is None and time.monotonic() < deadline:
                grant = client.lease(worker_id)
                if grant is None:
                    time.sleep(0.02)
            assert grant is not None, "the worker never got a lease"

            job = client.wait_for(submitted["id"], timeout=300)
            assert job["status"] == DONE
            assert job["record_keys"]
            # Nothing was ever ingested: every record ran locally.
            assert engine.stats.remote_hits == 0
            counts = service.fleet.counts()
            assert counts["leases_expired"] >= 1
            assert counts["units_completed"] == 0
        finally:
            service.drain()
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
