"""End-to-end integration tests across the whole stack.

These tests exercise the complete pipeline the README advertises:
train/record a spiking model -> calibrate patterns -> decompose -> verify
losslessness -> simulate the accelerator -> compare against a baseline.
"""

import numpy as np
import pytest

from repro.baselines import PhiAccelerator, get_baseline
from repro.core import ActivationAligner, PhiCalibrator, PhiConfig
from repro.datasets import make_dataset
from repro.hw import ArchConfig, PhiSimulator
from repro.snn import build_model
from repro.workloads import extract_workload


@pytest.fixture(scope="module")
def phi_config():
    return PhiConfig(partition_size=16, num_patterns=16, calibration_samples=2000)


class TestEndToEndPipeline:
    def test_model_to_simulation(self, vgg_workload, phi_config):
        # Calibrate on the recorded activations.
        calibrator = PhiCalibrator(phi_config)
        calibration = calibrator.calibrate_model(vgg_workload.activation_matrices())

        # Every layer's Phi-decomposed GEMM matches the exact output.
        for layer in vgg_workload:
            decomposition = calibration[layer.name].decompose(layer.activations)
            assert np.allclose(
                decomposition.compute_output(layer.weights), layer.reference_output()
            )

        # Accelerator simulation with the same calibration.
        simulator = PhiSimulator(ArchConfig(), phi_config)
        result = simulator.run(vgg_workload, calibration=calibration)
        assert result.total_cycles > 0

        # Phi outperforms the dense baseline on the same workload.
        eyeriss = get_baseline("eyeriss").simulate(vgg_workload)
        phi = PhiAccelerator(phi_config=phi_config).simulate(
            vgg_workload, calibration=calibration
        )
        assert phi.throughput_gops > eyeriss.throughput_gops

    def test_train_calibration_generalises_to_test(self, phi_config):
        """Patterns calibrated on training data stay effective on test data."""
        dataset = make_dataset("cifar10", num_train=16, num_test=16)
        network = build_model(
            "vgg16", num_classes=dataset.num_classes, in_channels=3,
            image_size=dataset.input_shape[-1], num_steps=2,
        )
        train_workload = extract_workload(
            network, dataset.train_data[:4], dataset_name="cifar10-train"
        )
        test_workload = extract_workload(
            network, dataset.test_data[:4], dataset_name="cifar10-test"
        )
        calibrator = PhiCalibrator(phi_config)
        calibration = calibrator.calibrate_model(train_workload.activation_matrices())

        for layer in test_workload:
            if layer.name not in calibration:
                continue
            decomposition = calibration[layer.name].decompose(layer.activations)
            # Lossless on unseen data ...
            assert np.array_equal(
                decomposition.reconstruct(), layer.activations.astype(np.int8)
            )
            # ... and still sparser than plain bit sparsity.
            assert decomposition.level2_density <= layer.bit_density + 1e-9

    def test_paft_alignment_improves_simulated_speed(self, vgg_workload, phi_config):
        calibrator = PhiCalibrator(phi_config)
        calibration = calibrator.calibrate_model(vgg_workload.activation_matrices())
        aligner = ActivationAligner(alignment_strength=0.8, seed=0)

        simulator = PhiSimulator(ArchConfig(), phi_config)
        before = simulator.run(vgg_workload, calibration=calibration)

        from repro.workloads import LayerWorkload, ModelWorkload

        aligned = ModelWorkload(model_name="vgg16", dataset_name="cifar10-paft")
        for layer in vgg_workload:
            aligned.add(
                LayerWorkload(
                    name=layer.name,
                    activations=aligner.align_layer(
                        layer.activations, calibration[layer.name]
                    ),
                    weights=layer.weights,
                )
            )
        after = simulator.run(aligned, calibration=calibration)
        assert after.total_cycles <= before.total_cycles * 1.02

    def test_text_model_end_to_end(self, phi_config):
        workload_model = build_model(
            "spikebert", num_classes=2, vocab_size=64, seq_len=8, embed_dim=16,
            depth=1, num_steps=2,
        )
        dataset = make_dataset("sst2", num_train=8, num_test=8, seq_len=8, vocab_size=64)
        workload = extract_workload(
            workload_model, dataset.test_data[:4], dataset_name="sst2"
        )
        assert len(workload) > 0
        result = PhiSimulator(ArchConfig(), phi_config).run(workload)
        assert result.total_operations > 0
