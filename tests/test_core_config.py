"""Unit tests for repro.core.config."""

import pytest

from repro.core.config import PAPER_CONFIG, KMeansConfig, PhiConfig


class TestKMeansConfig:
    def test_defaults(self):
        config = KMeansConfig()
        assert config.max_iterations == 25
        assert config.empty_cluster_strategy == "reseed"

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            KMeansConfig(max_iterations=0)

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            KMeansConfig(tolerance=1.5)

    def test_invalid_strategy(self):
        with pytest.raises(ValueError):
            KMeansConfig(empty_cluster_strategy="explode")


class TestPhiConfig:
    def test_paper_defaults(self):
        assert PAPER_CONFIG.partition_size == 16
        assert PAPER_CONFIG.num_patterns == 128

    def test_invalid_partition(self):
        with pytest.raises(ValueError):
            PhiConfig(partition_size=0)

    def test_invalid_pattern_count(self):
        with pytest.raises(ValueError):
            PhiConfig(num_patterns=0)

    def test_pattern_count_exceeds_space(self):
        with pytest.raises(ValueError):
            PhiConfig(partition_size=2, num_patterns=5)

    def test_invalid_calibration_samples(self):
        with pytest.raises(ValueError):
            PhiConfig(calibration_samples=0)

    def test_with_overrides(self):
        config = PhiConfig()
        smaller = config.with_overrides(num_patterns=32)
        assert smaller.num_patterns == 32
        assert smaller.partition_size == config.partition_size
        assert config.num_patterns == 128  # original unchanged

    def test_round_trip_serialisation(self):
        config = PhiConfig(partition_size=8, num_patterns=32, calibration_samples=123)
        restored = PhiConfig.from_dict(config.to_dict())
        assert restored == config

    def test_from_dict_defaults(self):
        config = PhiConfig.from_dict({})
        assert config.partition_size == 16
        assert config.num_patterns == 128

    def test_frozen(self):
        config = PhiConfig()
        with pytest.raises(AttributeError):
            config.partition_size = 8
