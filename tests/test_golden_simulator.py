"""Golden regression suite for the cycle-level simulator.

Each golden case re-runs the simulator end to end (workload generation,
calibration, simulation) for a fixed-seed workload and configuration and
compares every recorded cycle, traffic and energy figure against the
frozen JSON under ``tests/golden/``.  The refactors this suite guards
(vectorized hot paths, decomposition reuse, the sweep engine) are all
equivalence-preserving, so the comparison is exact for integral values and
tighter than 1e-12 relative for floats (the only slack allowed is
floating-point summation-order noise across NumPy versions).

Regenerate after an intentional model change with::

    PYTHONPATH=src python tests/golden/regen.py
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

_REGEN_PATH = pathlib.Path(__file__).resolve().parent / "golden" / "regen.py"
_spec = importlib.util.spec_from_file_location("golden_regen", _REGEN_PATH)
regen = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(regen)


def _assert_matches(actual, expected, path=""):
    """Recursively compare a summary against its golden counterpart."""
    if isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: expected mapping"
        assert set(actual) == set(expected), f"{path}: key mismatch"
        for key in expected:
            _assert_matches(actual[key], expected[key], f"{path}/{key}")
    elif isinstance(expected, list):
        assert isinstance(actual, list), f"{path}: expected list"
        assert len(actual) == len(expected), f"{path}: length mismatch"
        for i, (a, e) in enumerate(zip(actual, expected)):
            _assert_matches(a, e, f"{path}[{i}]")
    elif isinstance(expected, float):
        assert actual == pytest.approx(expected, rel=1e-12, abs=0.0), (
            f"{path}: {actual!r} != {expected!r}"
        )
    else:
        assert actual == expected, f"{path}: {actual!r} != {expected!r}"


@pytest.fixture(scope="module")
def golden_summaries():
    """Simulate every golden workload/config pair once per test session."""
    summaries = {}
    for case_name, workload_spec, config_name in regen.GOLDEN_CASES:
        summaries[case_name] = regen.run_case(workload_spec, config_name)
    return summaries


@pytest.mark.parametrize(
    "case_name", [case[0] for case in regen.GOLDEN_CASES], ids=str
)
def test_simulator_matches_golden(case_name, golden_summaries):
    golden_file = regen.golden_path(case_name)
    assert golden_file.exists(), (
        f"missing golden file {golden_file}; run tests/golden/regen.py"
    )
    expected = json.loads(golden_file.read_text())
    _assert_matches(golden_summaries[case_name], expected, path=case_name)


@pytest.mark.parametrize(
    "case_name,baseline_name,workload_spec",
    list(regen.GOLDEN_BASELINE_CASES),
    ids=[case[0] for case in regen.GOLDEN_BASELINE_CASES],
)
def test_baseline_matches_golden(case_name, baseline_name, workload_spec):
    """Baseline accelerators must stay bit-exact against their goldens.

    The baseline golden files were frozen from the pre-pipeline report
    classes, so they also pin the port onto ``repro.hw.pipeline``.
    """
    golden_file = regen.golden_path(case_name)
    assert golden_file.exists(), (
        f"missing golden file {golden_file}; run tests/golden/regen.py"
    )
    expected = json.loads(golden_file.read_text())
    actual = regen.run_baseline_case(baseline_name, workload_spec)
    _assert_matches(actual, expected, path=case_name)


def test_golden_files_cover_all_cases():
    """Every declared case has a frozen file and vice versa."""
    declared = {case[0] for case in regen.GOLDEN_CASES}
    declared |= {case[0] for case in regen.GOLDEN_BASELINE_CASES}
    on_disk = {p.stem for p in regen.GOLDEN_DIR.glob("*.json")}
    assert on_disk == declared
