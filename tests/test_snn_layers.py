"""Unit tests for the spiking network layers (forward and backward)."""

import numpy as np
import pytest

from repro.snn.layers import (
    AvgPool2d,
    BatchNorm,
    Conv2d,
    Flatten,
    LIFLayer,
    Linear,
    MaxPool2d,
    col2im,
    im2col,
)


def numeric_gradient(fn, x, eps=1e-5):
    """Central-difference gradient of a scalar function of ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(8, 4)
        out = layer.forward(np.ones((3, 8)))
        assert out.shape == (3, 4)

    def test_forward_1d_promoted(self):
        layer = Linear(8, 4)
        assert layer.forward(np.ones(8)).shape == (1, 4)

    def test_backward_input_gradient(self, rng):
        layer = Linear(5, 3, rng=rng)
        x = rng.standard_normal((4, 5))
        out = layer.forward(x)
        grad_out = rng.standard_normal(out.shape)
        grad_in = layer.backward(grad_out)

        def loss(x_):
            return float((layer.forward(x_) * grad_out).sum())

        numeric = numeric_gradient(loss, x.copy())
        assert np.allclose(grad_in, numeric, atol=1e-4)

    def test_backward_weight_gradient(self, rng):
        layer = Linear(5, 3, rng=rng)
        x = rng.standard_normal((4, 5))
        grad_out = rng.standard_normal((4, 3))
        layer.forward(x)
        layer.backward(grad_out)
        assert np.allclose(layer.weight_grad, x.T @ grad_out)
        assert np.allclose(layer.bias_grad, grad_out.sum(axis=0))

    def test_zero_gradients(self, rng):
        layer = Linear(5, 3, rng=rng)
        layer.forward(rng.standard_normal((2, 5)))
        layer.backward(np.ones((2, 3)))
        layer.zero_gradients()
        assert np.all(layer.weight_grad == 0)

    def test_input_matrix_recorded(self, rng):
        layer = Linear(5, 3, rng=rng)
        x = rng.standard_normal((2, 5))
        layer.forward(x)
        assert np.array_equal(layer.input_matrix(), x)
        assert layer.weight_matrix().shape == (5, 3)
        assert layer.output_width == 3

    def test_input_matrix_before_forward(self):
        with pytest.raises(RuntimeError):
            Linear(2, 2).input_matrix()

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            Linear(2, 2).backward(np.ones((1, 2)))

    def test_no_bias(self):
        layer = Linear(3, 2, bias=False)
        assert "bias" not in layer.parameters()

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3)


class TestIm2col:
    def test_shapes(self, rng):
        x = rng.standard_normal((2, 3, 8, 8))
        cols, oh, ow = im2col(x, kernel=3, stride=1, padding=1)
        assert (oh, ow) == (8, 8)
        assert cols.shape == (2 * 64, 3 * 9)

    def test_matches_direct_convolution(self, rng):
        x = rng.standard_normal((1, 2, 6, 6))
        weight = rng.standard_normal((2 * 3 * 3, 4))
        cols, oh, ow = im2col(x, 3, 1, 1)
        out = (cols @ weight).reshape(1, oh, ow, 4).transpose(0, 3, 1, 2)
        # Direct convolution at a single output position for verification.
        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        patch = padded[0, :, 2:5, 3:6].reshape(-1)
        expected = patch @ weight
        assert np.allclose(out[0, :, 2, 3], expected)

    def test_col2im_adjoint(self, rng):
        # col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>.
        x = rng.standard_normal((1, 2, 6, 6))
        cols, _, _ = im2col(x, 3, 1, 1)
        y = rng.standard_normal(cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, 3, 1, 1)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            im2col(np.zeros((1, 1, 2, 2)), kernel=5, stride=1, padding=0)


class TestConv2d:
    def test_forward_shape(self, rng):
        layer = Conv2d(3, 8, 3, rng=rng)
        out = layer.forward(rng.standard_normal((2, 3, 8, 8)))
        assert out.shape == (2, 8, 8, 8)

    def test_stride_and_padding(self, rng):
        layer = Conv2d(3, 4, 4, stride=4, padding=0, rng=rng)
        out = layer.forward(rng.standard_normal((1, 3, 16, 16)))
        assert out.shape == (1, 4, 4, 4)

    def test_backward_input_gradient(self, rng):
        layer = Conv2d(2, 3, 3, rng=rng)
        x = rng.standard_normal((1, 2, 5, 5))
        out = layer.forward(x)
        grad_out = rng.standard_normal(out.shape)
        grad_in = layer.backward(grad_out)

        def loss(x_):
            return float((layer.forward(x_) * grad_out).sum())

        numeric = numeric_gradient(loss, x.copy())
        assert np.allclose(grad_in, numeric, atol=1e-4)

    def test_input_matrix_is_im2col(self, rng):
        layer = Conv2d(2, 3, 3, rng=rng)
        x = rng.standard_normal((1, 2, 5, 5))
        layer.forward(x)
        assert layer.input_matrix().shape == (25, 18)

    def test_project_input_matrix_gradient_shape(self, rng):
        layer = Conv2d(2, 3, 3, rng=rng)
        x = rng.standard_normal((1, 2, 5, 5))
        layer.forward(x)
        grad = layer.project_input_matrix_gradient(np.ones((25, 18)))
        assert grad.shape == x.shape

    def test_rejects_wrong_rank(self, rng):
        layer = Conv2d(2, 3, 3, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((2, 5, 5)))


class TestPooling:
    def test_avg_pool_forward(self):
        layer = AvgPool2d(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        assert out.shape == (1, 1, 2, 2)
        assert out[0, 0, 0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_avg_pool_backward(self):
        layer = AvgPool2d(2)
        x = np.ones((1, 1, 4, 4))
        layer.forward(x)
        grad = layer.backward(np.ones((1, 1, 2, 2)))
        assert grad.shape == x.shape
        assert np.allclose(grad, 0.25)

    def test_max_pool_preserves_binary(self, rng):
        layer = MaxPool2d(2)
        x = (rng.random((2, 3, 8, 8)) < 0.3).astype(float)
        out = layer.forward(x)
        assert set(np.unique(out)) <= {0.0, 1.0}

    def test_max_pool_backward_routes_to_max(self):
        layer = MaxPool2d(2)
        x = np.array([[[[1.0, 0.0], [0.0, 0.0]]]])
        layer.forward(x)
        grad = layer.backward(np.array([[[[5.0]]]]))
        assert grad[0, 0, 0, 0] == pytest.approx(5.0)
        assert grad[0, 0, 1, 1] == 0.0

    def test_pool_rejects_indivisible(self):
        with pytest.raises(ValueError):
            AvgPool2d(3).forward(np.zeros((1, 1, 4, 4)))
        with pytest.raises(ValueError):
            MaxPool2d(3).forward(np.zeros((1, 1, 4, 4)))


class TestFlattenAndBatchNorm:
    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.standard_normal((2, 3, 4, 4))
        out = layer.forward(x)
        assert out.shape == (2, 48)
        assert layer.backward(out).shape == x.shape

    def test_batchnorm_normalises(self, rng):
        layer = BatchNorm(4)
        x = rng.standard_normal((32, 4)) * 3.0 + 2.0
        out = layer.forward(x)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_batchnorm_conv_shape(self, rng):
        layer = BatchNorm(3)
        x = rng.standard_normal((2, 3, 4, 4))
        assert layer.forward(x).shape == x.shape

    def test_batchnorm_eval_uses_running_stats(self, rng):
        layer = BatchNorm(4)
        for _ in range(20):
            layer.forward(rng.standard_normal((16, 4)) + 5.0)
        layer.training = False
        out = layer.forward(np.full((2, 4), 5.0))
        assert np.all(np.abs(out) < 2.0)

    def test_batchnorm_backward_shape(self, rng):
        layer = BatchNorm(4)
        x = rng.standard_normal((8, 4))
        layer.forward(x)
        grad = layer.backward(np.ones((8, 4)))
        assert grad.shape == x.shape


class TestLIFLayer:
    def test_binary_output_and_record(self, rng):
        layer = LIFLayer()
        out = layer.forward(rng.standard_normal((4, 8)) * 2)
        assert set(np.unique(out)) <= {0.0, 1.0}
        assert layer.record.total_elements == 32

    def test_backward_uses_surrogate(self, rng):
        layer = LIFLayer()
        layer.forward(rng.standard_normal((2, 4)))
        grad = layer.backward(np.ones((2, 4)))
        assert grad.shape == (2, 4)
        assert np.all(grad >= 0)

    def test_inject_gradient(self, rng):
        layer = LIFLayer()
        layer.forward(rng.standard_normal((2, 4)))
        base = layer.backward(np.ones((2, 4)))
        layer.forward(rng.standard_normal((2, 4)))
        layer.inject_gradient(np.ones((2, 4)) * 10)
        boosted = layer.backward(np.ones((2, 4)))
        assert boosted.sum() != pytest.approx(base.sum())

    def test_reset_record(self, rng):
        layer = LIFLayer()
        layer.forward(rng.standard_normal((2, 4)))
        layer.reset_record()
        assert layer.record.total_elements == 0
        assert layer.record.firing_rate == 0.0
